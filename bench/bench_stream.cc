// Streaming benchmark: what does continuous release cost per epoch, and
// does delta-aware recounting actually pay? Two acceptance bars, enforced
// by the exit code so run_benches.sh can refuse to refresh the record
// from a regressed build:
//
//   1. Delta recount >= 3x faster than a full recount on a 1%-changed
//      epoch. The window is large (window_batches * batch records) so the
//      counting pass dominates; the delta path folds only the ~2% of
//      records that entered or left, so the honest ratio is far above the
//      bar — 3x leaves room for noisy CI machines.
//   2. Rollover stall bounded: the registry hot-swap (the only step that
//      can block readers) stays under 50 ms per epoch, and the full
//      durable rollover under 5 s. Generous on purpose — these catch a
//      lost order of magnitude, not jitter.
//
// Flags: --window_batches=100 --batch=4000 --iters=8 --epochs=6
//        --out=BENCH_stream.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "data/window.h"
#include "serve/synopsis_registry.h"
#include "store/synopsis_store.h"
#include "stream/delta_counter.h"
#include "stream/stream_publisher.h"
#include "table/attr_set.h"

using namespace priview;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<uint64_t> RandomBatch(Rng* rng, int d, size_t n) {
  const uint64_t universe =
      d >= 64 ? ~uint64_t{0} : (uint64_t{1} << d) - 1;
  std::vector<uint64_t> records(n);
  for (uint64_t& record : records) record = rng->NextUint64() & universe;
  return records;
}

std::vector<AttrSet> BenchViews() {
  return {AttrSet::FromIndices({0, 1, 2}),  AttrSet::FromIndices({2, 3, 4}),
          AttrSet::FromIndices({4, 5, 6}),  AttrSet::FromIndices({7, 8, 9}),
          AttrSet::FromIndices({10, 11, 12}),
          AttrSet::FromIndices({13, 14, 15})};
}

}  // namespace

int main(int argc, char** argv) {
  const int window_batches = FlagInt(argc, argv, "window_batches", 100);
  const int batch = FlagInt(argc, argv, "batch", 4000);
  const int iters = FlagInt(argc, argv, "iters", 8);
  const int publish_epochs = FlagInt(argc, argv, "epochs", 6);
  std::string out_path = "BENCH_stream.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }

  PrintHeader("Stream: delta recount vs full republish, epoch rollover");

  constexpr int kD = 16;
  const std::vector<AttrSet> views = BenchViews();
  Rng rng(42);

  // --- 1. Delta recount vs full recount on a 1%-changed epoch. ---------
  // A sliding window of `window_batches` batches: each epoch, one batch
  // (1/window_batches of the window) enters and one leaves. The full path
  // recounts every record in the window; the delta path folds only the
  // entering and leaving records into the running counts.
  WindowBuffer window(kD, WindowMode::kSliding, window_batches);
  StatusOr<stream::DeltaViewCounter> counter =
      stream::DeltaViewCounter::Create(kD, views);
  if (!counter.ok()) {
    std::fprintf(stderr, "counter create failed\n");
    return 1;
  }
  // Warm the window to full depth.
  for (int i = 0; i < window_batches; ++i) {
    if (!window.Ingest(RandomBatch(&rng, kD, size_t(batch))).ok()) return 1;
    counter.value().ApplyDelta(window.AdvanceEpoch());
  }
  const size_t window_records = window.window_size();

  double delta_s = 0.0;
  double full_s = 0.0;
  size_t delta_records = 0;
  for (int i = 0; i < iters; ++i) {
    if (!window.Ingest(RandomBatch(&rng, kD, size_t(batch))).ok()) return 1;
    const EpochDelta delta = window.AdvanceEpoch();
    delta_records = delta.added.size() + delta.removed.size();

    const double t0 = NowSeconds();
    counter.value().ApplyDelta(delta);
    delta_s += NowSeconds() - t0;

    // The full-republish reference: materialize the window and run the
    // same fused counting pass the one-shot pipeline uses.
    const double t1 = NowSeconds();
    const std::vector<MarginalTable> full =
        window.WindowDataset().CountMarginals(views);
    full_s += NowSeconds() - t1;

    // Keep the comparison honest: the two paths must agree bit-for-bit
    // (the differential test in stream_test pins this; here it guards
    // against benchmarking two different computations).
    for (size_t v = 0; v < views.size(); ++v) {
      if (counter.value().counts()[v].cells() != full[v].cells()) {
        std::fprintf(stderr, "delta/full divergence at view %zu\n", v);
        return 1;
      }
    }
  }
  const double delta_us = delta_s / iters * 1e6;
  const double full_us = full_s / iters * 1e6;
  const double speedup = delta_us > 0.0 ? full_us / delta_us : 0.0;
  const bool recount_pass = speedup >= 3.0;

  std::printf("window                %12zu records (%d batches x %d)\n",
              window_records, window_batches, batch);
  std::printf("epoch delta           %12zu records (%.2f%% of window)\n",
              delta_records,
              100.0 * double(delta_records) / double(window_records));
  std::printf("full recount          %12.1f us/epoch\n", full_us);
  std::printf("delta recount         %12.1f us/epoch\n", delta_us);
  std::printf("speedup               %12.2f x  (bar: >= 3x)  %s\n", speedup,
              recount_pass ? "PASS" : "FAIL");

  // --- 2. End-to-end epoch rollover through store + registry. ----------
  const std::string dir =
      (std::filesystem::temp_directory_path() / "priview_bench_stream")
          .string();
  std::filesystem::remove_all(dir);
  store::StoreOptions store_options;
  store_options.dir = dir;
  store_options.retention_depth = 3;
  store::SynopsisStore store(store_options);
  if (!store.Open().ok()) return 1;
  serve::SynopsisRegistry registry;
  registry.set_history_depth(3);

  stream::StreamOptions stream_options;
  stream_options.name = "bench";
  stream_options.d = kD;
  stream_options.mode = WindowMode::kSliding;
  stream_options.window_batches = 4;
  stream_options.views = views;
  stream_options.total_epsilon = 10.0;
  stream_options.epoch_epsilon = 0.5;
  Rng publish_rng(7);
  StatusOr<stream::StreamPublisher> publisher = stream::StreamPublisher::Create(
      stream_options, &store, &registry, &publish_rng);
  if (!publisher.ok()) return 1;

  double rollover_sum_us = 0.0;
  uint64_t rollover_max_us = 0;
  uint64_t swap_max_us = 0;
  for (int epoch = 0; epoch < publish_epochs; ++epoch) {
    if (!publisher.value()
             .Ingest(RandomBatch(&publish_rng, kD, size_t(batch)))
             .ok()) {
      return 1;
    }
    StatusOr<stream::EpochReport> report = publisher.value().PublishEpoch();
    if (!report.ok()) {
      std::fprintf(stderr, "publish failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    rollover_sum_us += double(report.value().rollover_us);
    rollover_max_us = std::max(rollover_max_us, report.value().rollover_us);
    swap_max_us = std::max(swap_max_us, report.value().install_us);
  }
  const double rollover_mean_us = rollover_sum_us / publish_epochs;
  // The swap is the only step readers can observe as a stall; the
  // end-to-end bound catches a pathological build/persist regression.
  const bool stall_pass =
      swap_max_us < 50'000 && rollover_max_us < 5'000'000;

  std::printf("rollover              %12.1f us/epoch mean, %llu max (%d epochs)\n",
              rollover_mean_us,
              static_cast<unsigned long long>(rollover_max_us),
              publish_epochs);
  std::printf("hot-swap stall max    %12llu us  (bar: < 50ms)  %s\n",
              static_cast<unsigned long long>(swap_max_us),
              stall_pass ? "PASS" : "FAIL");

  const bool pass = recount_pass && stall_pass;
  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"stream\",\n"
        "  \"workload\": \"sliding-window continuous release: delta-aware "
        "recount vs full recount on a %.2f%%-changed epoch, plus durable "
        "epoch rollover through store + registry\",\n"
        "  \"window_records\": %zu,\n"
        "  \"delta_records\": %zu,\n"
        "  \"views\": %zu,\n"
        "  \"full_recount_us_per_epoch\": %.1f,\n"
        "  \"delta_recount_us_per_epoch\": %.1f,\n"
        "  \"recount_speedup\": %.2f,\n"
        "  \"recount_threshold\": 3.0,\n"
        "  \"rollover_mean_us\": %.1f,\n"
        "  \"rollover_max_us\": %llu,\n"
        "  \"hot_swap_stall_max_us\": %llu,\n"
        "  \"stall_threshold_us\": 50000,\n"
        "  \"pass\": %s\n"
        "}\n",
        100.0 * double(delta_records) / double(window_records),
        window_records, delta_records, views.size(), full_us, delta_us,
        speedup, rollover_mean_us,
        static_cast<unsigned long long>(rollover_max_us),
        static_cast<unsigned long long>(swap_max_us),
        pass ? "true" : "false");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::filesystem::remove_all(dir);
  return pass ? 0 : 1;
}
