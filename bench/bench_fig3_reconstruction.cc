// Figure 3: comparing reconstruction methods at eps = 1.0 —
//   CME  : consistency + max entropy (the paper's choice)
//   LP   : linear programming on raw (inconsistent) noisy views
//   CLP  : consistency preprocessing + linear programming
//   CLN  : consistency + least-norm (least squares)
//   CME* : max entropy on noise-free views (reference)
// on Kosarak-like with C3(8, ~106) and AOL-like with C2(8, ~42).
//
// Flags: --queries=60 --runs=5 --quick=1
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "design/covering_design.h"

using namespace priview;

namespace {

struct Variant {
  std::string label;
  bool consistency;
  bool add_noise;
  ReconstructionMethod method;
};

void RunDataset(const Dataset& data, const std::string& name,
                const CoveringDesign& design, int num_queries, int runs) {
  const std::vector<Variant> variants = {
      {"CME", true, true, ReconstructionMethod::kMaxEntropy},
      {"LP", false, true, ReconstructionMethod::kLinearProgram},
      {"CLP", true, true, ReconstructionMethod::kLinearProgram},
      {"CLN", true, true, ReconstructionMethod::kLeastNorm},
      {"CME*", true, false, ReconstructionMethod::kMaxEntropy},
  };

  for (int k : {4, 6, 8}) {
    PrintHeader("Figure 3: " + name + " " + design.Name() +
                ", eps=1.0, k=" + std::to_string(k));
    Rng qrng(600 + k);
    const auto queries = SampleQuerySets(data.d(), k, num_queries, &qrng);

    for (const Variant& variant : variants) {
      std::unique_ptr<PriViewSynopsis> synopsis;
      const WorkloadErrors errors = EvaluateWorkload(
          data, queries, variant.add_noise ? runs : 1,
          [&](int run) {
            Rng build_rng(7000 + run);
            PriViewOptions options;
            options.epsilon = 1.0;
            options.run_consistency = variant.consistency;
            // The raw-LP variant also skips non-negativity: it sees the
            // unprocessed noisy views, as in §4.3.
            if (!variant.consistency) {
              options.nonneg = NonNegMethod::kNone;
            }
            options.add_noise = variant.add_noise;
            synopsis = std::make_unique<PriViewSynopsis>(
                PriViewSynopsis::Build(data, design.blocks, options,
                                       &build_rng));
          },
          [&](AttrSet q) { return synopsis->Query(q, variant.method); });
      PrintCandlestickRow(variant.label, SummarizeErrors(errors));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int num_queries = FlagInt(argc, argv, "queries", 60);
  const int runs = FlagInt(argc, argv, "runs", 5);
  const bool quick = FlagBool(argc, argv, "quick", false);

  Rng design_rng(31);
  {
    Rng rng(821);
    const Dataset kosarak = MakeKosarakLike(&rng, quick ? 60000 : 912627);
    const CoveringDesign c3 = MakeCoveringDesign(32, 8, 3, &design_rng);
    RunDataset(kosarak, "Kosarak-like d=32", c3, num_queries, runs);
  }
  {
    Rng rng(822);
    const Dataset aol = MakeAolLike(&rng, quick ? 60000 : 647377);
    const CoveringDesign c2 = MakeCoveringDesign(45, 8, 2, &design_rng);
    RunDataset(aol, "AOL-like d=45", c2, num_queries, runs);
  }
  return 0;
}
