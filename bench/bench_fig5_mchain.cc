// Figure 5: L2 error on i'th-order Markov-chain datasets (d = 64), using
// the pair covering C2(8, ~72) and consecutive-attribute queries (which
// exhibit all of the chain's inter-attribute dependence). The paper's
// shape: order 3 is the hardest; lower orders are covered by pairs, and
// higher orders diffuse the dependence.
//
// Flags: --runs=5 --n=200000 --quick=1
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "core/synopsis.h"
#include "data/mchain.h"
#include "design/covering_design.h"

using namespace priview;

int main(int argc, char** argv) {
  const int runs = FlagInt(argc, argv, "runs", 5);
  const bool quick = FlagBool(argc, argv, "quick", false);
  const size_t n = static_cast<size_t>(
      FlagInt(argc, argv, "n", quick ? 50000 : 1000000));
  const int d = 64;

  Rng design_rng(41);
  const CoveringDesign design = MakeCoveringDesign(d, 8, 2, &design_rng);
  std::printf("views: %s (paper uses C2(8,72))\n", design.Name().c_str());

  for (int k : {4, 6, 8}) {
    PrintHeader("Figure 5: MCHAIN d=64, eps=1.0, k=" + std::to_string(k) +
                ", consecutive queries");
    const auto queries = ConsecutiveQuerySets(d, k);
    for (int order = 1; order <= 7; ++order) {
      Rng data_rng(1300 + order);
      const Dataset data = MakeMchainDataset(order, d, n, &data_rng);
      for (const bool add_noise : {true, false}) {
        std::unique_ptr<PriViewSynopsis> synopsis;
        const WorkloadErrors errors = EvaluateWorkload(
            data, queries, add_noise ? runs : 1,
            [&](int run) {
              Rng build_rng(9000 + 10 * order + run);
              PriViewOptions options;
              options.epsilon = 1.0;
              options.add_noise = add_noise;
              synopsis = std::make_unique<PriViewSynopsis>(
                  PriViewSynopsis::Build(data, design.blocks, options,
                                         &build_rng));
            },
            [&](AttrSet q) { return synopsis->Query(q); });
        // The noise-free row isolates the coverage error — the component
        // that produces the paper's order-3 peak.
        PrintCandlestickRow(
            "mc_" + std::to_string(order) + (add_noise ? "" : " (no noise)"),
            SummarizeErrors(errors));
      }
    }
  }
  return 0;
}
