// Figure 2: PriView vs Flat (analytic, capped at 1), Direct, Fourier and
// Uniform on the Kosarak-like (d = 32) and AOL-like (d = 45) datasets.
// Reports both normalized L2 and Jensen-Shannon candlesticks, for
// eps in {1.0, 0.1} and k in {4, 6, 8}. Also runs the noise-free PriView
// reference C*_t(l, w).
//
// Flags: --queries=200 --runs=5 --quick=1 (shrinks N for smoke runs)
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/direct.h"
#include "baselines/fourier.h"
#include "baselines/uniform.h"
#include "bench_util/harness.h"
#include "common/rng.h"
#include "core/error_model.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "design/covering_design.h"

using namespace priview;

namespace {

void RunPriView(const Dataset& data, const std::vector<AttrSet>& queries,
                int runs, double epsilon, const CoveringDesign& design,
                bool add_noise, const std::string& label) {
  std::unique_ptr<PriViewSynopsis> synopsis;
  const WorkloadErrors errors = EvaluateWorkload(
      data, queries, add_noise ? runs : 1,
      [&](int run) {
        Rng build_rng(5000 + run);
        PriViewOptions options;
        options.epsilon = epsilon;
        options.add_noise = add_noise;
        synopsis = std::make_unique<PriViewSynopsis>(
            PriViewSynopsis::Build(data, design.blocks, options, &build_rng));
      },
      [&](AttrSet q) { return synopsis->Query(q); });
  PrintCandlestickRow(label, SummarizeErrors(errors), /*print_js=*/true);
}

void RunBaseline(const Dataset& data, const std::vector<AttrSet>& queries,
                 int runs, double epsilon, int k,
                 MarginalMechanism* mechanism, uint64_t seed) {
  Rng rng(seed);
  const WorkloadErrors errors = EvaluateWorkload(
      data, queries, runs,
      [&](int) { mechanism->Fit(data, epsilon, k, &rng); },
      [&](AttrSet q) { return mechanism->Query(q); });
  PrintCandlestickRow(mechanism->Name(), SummarizeErrors(errors),
                      /*print_js=*/true);
}

void RunDataset(const Dataset& data, const std::string& name, int num_queries,
                int runs) {
  const int d = data.d();
  const double n = static_cast<double>(data.size());
  Rng design_rng(17);
  const CoveringDesign c2 = MakeCoveringDesign(d, 8, 2, &design_rng);
  const CoveringDesign c3 = MakeCoveringDesign(d, 8, 3, &design_rng);

  for (double epsilon : {1.0, 0.1}) {
    for (int k : {4, 6, 8}) {
      PrintHeader("Figure 2: " + name + ", eps=" + std::to_string(epsilon) +
                  ", k=" + std::to_string(k));
      Rng qrng(400 + k);
      const auto queries = SampleQuerySets(d, k, num_queries, &qrng);

      RunPriView(data, queries, runs, epsilon, c2, true,
                 "PriView " + c2.Name());
      RunPriView(data, queries, runs, epsilon, c3, true,
                 "PriView " + c3.Name());
      RunPriView(data, queries, runs, epsilon, c2, false,
                 "PriView C*" + c2.Name().substr(1));

      DirectMechanism direct;
      RunBaseline(data, queries, runs, epsilon, k, &direct, 21);
      FourierMechanism fourier;
      RunBaseline(data, queries, runs, epsilon, k, &fourier, 22);
      UniformMechanism uniform;
      RunBaseline(data, queries, 1, epsilon, k, &uniform, 23);

      // Flat is unfeasible at this d: analytic expectation, capped at 1
      // to reflect the non-negativity cleanup (as the paper does).
      const double flat_expected = std::min(
          1.0, ExpectedNormalizedL2(FlatEse(d, epsilon), n));
      std::printf("%-28s L2  expected=%.3e (analytic, capped at 1)\n",
                  "Flat(analytic)", flat_expected);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int num_queries = FlagInt(argc, argv, "queries", 200);
  const int runs = FlagInt(argc, argv, "runs", 5);
  const bool quick = FlagBool(argc, argv, "quick", false);

  {
    Rng rng(811);
    const Dataset kosarak =
        MakeKosarakLike(&rng, quick ? 60000 : 912627);
    RunDataset(kosarak, "Kosarak-like d=32", num_queries, runs);
  }
  {
    Rng rng(812);
    const Dataset aol = MakeAolLike(&rng, quick ? 60000 : 647377);
    RunDataset(aol, "AOL-like d=45", num_queries, runs);
  }
  return 0;
}
