// Figure 4: non-negativity strategies at eps = 1.0 —
//   None     : keep negative values
//   Simple   : clamp negatives to zero
//   Global   : clamp, subtract uniformly from positives to keep the total
//   Ripple_1 : Consistency + (Ripple + Consistency) x 1  (the default)
//   Ripple_3 : Consistency + (Ripple + Consistency) x 3
// on Kosarak-like with C3(8, ~106) and AOL-like with C2(8, ~42).
//
// Flags: --queries=100 --runs=5 --quick=1
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "design/covering_design.h"

using namespace priview;

namespace {

struct Variant {
  std::string label;
  NonNegMethod method;
  int rounds;
};

void RunDataset(const Dataset& data, const std::string& name,
                const CoveringDesign& design, int num_queries, int runs) {
  const std::vector<Variant> variants = {
      {"None", NonNegMethod::kNone, 1},
      {"Simple", NonNegMethod::kSimple, 1},
      {"Global", NonNegMethod::kGlobal, 1},
      {"Ripple_1", NonNegMethod::kRipple, 1},
      {"Ripple_3", NonNegMethod::kRipple, 3},
  };

  for (int k : {4, 6, 8}) {
    PrintHeader("Figure 4: " + name + " " + design.Name() +
                ", eps=1.0, k=" + std::to_string(k));
    Rng qrng(900 + k);
    const auto queries = SampleQuerySets(data.d(), k, num_queries, &qrng);

    for (const Variant& variant : variants) {
      std::unique_ptr<PriViewSynopsis> synopsis;
      const WorkloadErrors errors = EvaluateWorkload(
          data, queries, runs,
          [&](int run) {
            Rng build_rng(8000 + run);
            PriViewOptions options;
            options.epsilon = 1.0;
            options.nonneg = variant.method;
            options.nonneg_rounds = variant.rounds;
            synopsis = std::make_unique<PriViewSynopsis>(
                PriViewSynopsis::Build(data, design.blocks, options,
                                       &build_rng));
          },
          [&](AttrSet q) { return synopsis->Query(q); });
      PrintCandlestickRow(variant.label, SummarizeErrors(errors));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int num_queries = FlagInt(argc, argv, "queries", 100);
  const int runs = FlagInt(argc, argv, "runs", 5);
  const bool quick = FlagBool(argc, argv, "quick", false);

  Rng design_rng(32);
  {
    Rng rng(831);
    const Dataset kosarak = MakeKosarakLike(&rng, quick ? 60000 : 912627);
    const CoveringDesign c3 = MakeCoveringDesign(32, 8, 3, &design_rng);
    RunDataset(kosarak, "Kosarak-like d=32", c3, num_queries, runs);
  }
  {
    Rng rng(832);
    const Dataset aol = MakeAolLike(&rng, quick ? 60000 : 647377);
    const CoveringDesign c2 = MakeCoveringDesign(45, 8, 2, &design_rng);
    RunDataset(aol, "AOL-like d=45", c2, num_queries, runs);
  }
  return 0;
}
