// Serving benchmark: throughput and client-observed p50/p99 latency of the
// src/serve stack (epoll supervisor -> broker -> engine) at 1, 8 and 64
// concurrent clients, with coalescing on and off, plus an overloaded
// regime (tiny admission queue, heavy solver work) where backpressure must
// reject rather than collapse. Writes a machine-readable perf record
// (BENCH_serve.json).
//
// Two transport-hardening sections exercise the connection supervisor at
// scale and gate the exit code (the regression bar run_benches.sh
// enforces):
//   soak        5000+ concurrent connections (mostly half-open, 10%
//               slowloris) held against one event loop while healthy
//               clients keep querying: every adversary must be evicted by
//               cause, every healthy request must complete, and the loop
//               must have admitted the full fleet.
//   adversarial slowloris churn (evict -> reconnect -> evict) sustained
//               for a whole healthy workload: eviction throughput and the
//               healthy-client p99 under attack.
//
// The hosted engine runs with its read-side cache *disabled* so every
// full-tier request costs a real reconstruction — that is the regime where
// batch coalescing (duplicate / sub-marginal requests sharing one solve)
// is load-bearing, and what the on/off comparison measures. Production
// servers run with the cache on and do strictly better.
//
// Usage: bench_serve [--quick] [--out=PATH.json]
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "serve/client.h"
#include "serve/server.h"

using namespace priview;
using Clock = std::chrono::steady_clock;

namespace {

PriViewSynopsis MakeServingSynopsis(bool quick) {
  // AOL-like d=45 with 8-attribute released views: uncovered targets that
  // span several views cost real solver time (constraint assembly + IPF
  // over up to 2^8 cells), so a shared reconstruction is a visible win.
  Rng rng(41);
  Dataset data = MakeAolLike(&rng, quick ? 20000 : 100000);
  std::vector<AttrSet> views;
  for (int start = 0; start + 8 <= 44; start += 6) {
    std::vector<int> attrs;
    for (int a = start; a < start + 8; ++a) attrs.push_back(a);
    views.push_back(AttrSet::FromIndices(attrs));
  }
  PriViewOptions options;
  options.epsilon = 1.0;
  return PriViewSynopsis::Build(data, views, options, &rng);
}

// A pool with deliberate overlap: duplicates and sub-marginals of the
// same scopes recur across clients, which is what coalescing exploits.
// The wide scopes span multiple released views, so they are uncovered and
// need the solver chain.
std::vector<AttrSet> WorkloadScopes() {
  return {
      // 13 attributes across 3 views: ~0.3 ms of solver per request.
      AttrSet::FromIndices({0, 1, 2, 3, 4, 8, 9, 10, 11, 16, 17, 18, 19}),
      AttrSet::FromIndices({0, 1, 2, 3, 8, 9, 10, 11, 16, 17}),  // sub of [0]
      AttrSet::FromIndices({4, 8, 9, 16, 17, 18, 19}),           // sub of [0]
      // 14 attributes across 4 views: ~0.6 ms.
      AttrSet::FromIndices(
          {0, 1, 2, 3, 8, 9, 10, 11, 16, 17, 18, 19, 24, 25}),
      AttrSet::FromIndices({8, 9, 10, 11, 24, 25}),              // sub of [3]
      // 12 attributes across 3 views.
      AttrSet::FromIndices({24, 25, 26, 27, 32, 33, 34, 35, 40, 41, 42, 43}),
      AttrSet::FromIndices({24, 25, 32, 33, 40, 41}),            // sub of [5]
      AttrSet::FromIndices({0, 1, 2, 3}),                        // covered
  };
}

struct ConfigResult {
  int clients = 0;
  bool coalesce = true;
  uint64_t served = 0;
  uint64_t rejected = 0;
  uint64_t other_errors = 0;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double coalescing_hit_rate = 0.0;
};

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0.0;
  std::sort(sorted_ms->begin(), sorted_ms->end());
  const size_t idx = std::min(
      sorted_ms->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms->size())));
  return (*sorted_ms)[idx];
}

ConfigResult RunConfig(const PriViewSynopsis& synopsis, int clients,
                       bool coalesce, size_t queue_capacity,
                       int requests_per_client, int config_index) {
  ConfigResult result;
  result.clients = clients;
  result.coalesce = coalesce;

  serve::ServerOptions options;
  options.socket_path = "/tmp/priview_bench_serve_" +
                        std::to_string(::getpid()) + "_" +
                        std::to_string(config_index) + ".sock";
  options.broker.coalesce = coalesce;
  options.broker.queue_capacity = queue_capacity;
  options.broker.default_deadline = std::chrono::milliseconds(30000);
  serve::PriViewServer server(options);
  QueryEngineOptions engine_options;
  engine_options.cache_capacity = 0;  // every full answer is a real solve
  if (!server.registry().Install("bench", synopsis, engine_options).ok() ||
      !server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return result;
  }

  const std::vector<AttrSet> scopes = WorkloadScopes();
  std::vector<std::vector<double>> latencies_ms(clients);
  std::atomic<uint64_t> served{0}, rejected{0}, other_errors{0};

  const Clock::time_point wall_start = Clock::now();
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      StatusOr<serve::PriViewClient> client =
          serve::PriViewClient::Connect(options.socket_path);
      if (!client.ok()) {
        other_errors.fetch_add(requests_per_client);
        return;
      }
      latencies_ms[c].reserve(requests_per_client);
      for (int i = 0; i < requests_per_client; ++i) {
        const AttrSet& scope = scopes[(c + i) % scopes.size()];
        const Clock::time_point start = Clock::now();
        StatusOr<serve::ClientTable> answer =
            client.value().Marginal("bench", scope);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
        if (answer.ok()) {
          served.fetch_add(1);
          latencies_ms[c].push_back(ms);
        } else if (answer.status().code() == StatusCode::kResourceExhausted) {
          rejected.fetch_add(1);
        } else {
          other_errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                             wall_start)
                       .count();

  const serve::ServerMetrics::Snapshot snapshot =
      server.metrics().TakeSnapshot();
  result.coalescing_hit_rate = snapshot.CoalescingHitRate();
  server.Stop();

  std::vector<double> all_ms;
  for (const std::vector<double>& per_client : latencies_ms) {
    all_ms.insert(all_ms.end(), per_client.begin(), per_client.end());
  }
  result.served = served.load();
  result.rejected = rejected.load();
  result.other_errors = other_errors.load();
  result.throughput_rps =
      result.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(result.served) / result.wall_ms
          : 0.0;
  result.p99_ms = Percentile(&all_ms, 0.99);
  result.p50_ms = Percentile(&all_ms, 0.50);
  return result;
}

int RawConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

struct SoakResult {
  size_t target_conns = 0;
  size_t peak_open = 0;
  uint64_t frame_stall_evictions = 0;
  uint64_t idle_evictions = 0;
  uint64_t served = 0;
  uint64_t errors = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double wall_ms = 0.0;
  double evictions_per_sec = 0.0;
};

// 5000+ concurrent connections against one supervisor: 10% slowloris (a
// torn header then silence, evicted on the frame deadline), the rest
// half-open (never a byte, evicted on the idle deadline), and
// `client_threads` healthy clients querying the whole time. The healthy
// fleet must see zero failures while the event loop admits, polices and
// reaps the adversaries.
SoakResult RunSoak(const PriViewSynopsis& synopsis, size_t total_conns,
                   int client_threads, int requests_per_client,
                   int config_index) {
  SoakResult result;
  result.target_conns = total_conns;
  const size_t slowloris = total_conns / 10;
  const size_t half_open = total_conns - slowloris;

  serve::ServerOptions options;
  options.socket_path = "/tmp/priview_bench_soak_" +
                        std::to_string(::getpid()) + "_" +
                        std::to_string(config_index) + ".sock";
  options.io_timeout_ms = 2000;
  options.supervisor.idle_timeout_ms = 4000;
  options.supervisor.max_connections = total_conns + 256;
  options.broker.default_deadline = std::chrono::milliseconds(30000);
  serve::PriViewServer server(options);
  if (!server.registry().Install("bench", synopsis).ok() ||
      !server.Start().ok()) {
    std::fprintf(stderr, "soak server start failed\n");
    result.errors = 1;
    return result;
  }

  const Clock::time_point wall_start = Clock::now();
  std::vector<int> fds;
  fds.reserve(total_conns);
  for (size_t i = 0; i < total_conns; ++i) {
    const int fd = RawConnect(options.socket_path);
    if (fd < 0) {
      ++result.errors;
      continue;
    }
    if (i < slowloris) {
      const uint8_t partial[2] = {1, 1};
      (void)::write(fd, partial, sizeof(partial));
    }
    fds.push_back(fd);
  }
  // The whole fleet must be admitted concurrently before the deadlines
  // start reaping it.
  WaitUntil(
      [&] { return server.supervisor()->open_connections() >= fds.size(); },
      10000);
  result.peak_open = server.supervisor()->open_connections();

  const std::vector<AttrSet> scopes = WorkloadScopes();
  std::vector<std::vector<double>> latencies_ms(client_threads);
  std::atomic<uint64_t> served{0}, errors{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < client_threads; ++c) {
    workers.emplace_back([&, c] {
      StatusOr<serve::PriViewClient> client =
          serve::PriViewClient::Connect(options.socket_path);
      if (!client.ok()) {
        errors.fetch_add(requests_per_client);
        return;
      }
      latencies_ms[c].reserve(requests_per_client);
      for (int i = 0; i < requests_per_client; ++i) {
        const Clock::time_point start = Clock::now();
        if (client.value()
                .Marginal("bench", scopes[(c + i) % scopes.size()])
                .ok()) {
          served.fetch_add(1);
          latencies_ms[c].push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count());
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  // Every adversary must be reaped: slowloris on the 2s frame deadline,
  // half-open on the 4s idle deadline.
  WaitUntil(
      [&] {
        const serve::ServerMetrics::Snapshot s = server.metrics().TakeSnapshot();
        return s.evictions[int(serve::EvictionCause::kFrameStall)] >=
                   slowloris &&
               s.evictions[int(serve::EvictionCause::kIdle)] >= half_open;
      },
      30000);
  result.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - wall_start)
          .count();

  const serve::ServerMetrics::Snapshot snapshot =
      server.metrics().TakeSnapshot();
  result.frame_stall_evictions =
      snapshot.evictions[int(serve::EvictionCause::kFrameStall)];
  result.idle_evictions = snapshot.evictions[int(serve::EvictionCause::kIdle)];
  result.evictions_per_sec =
      result.wall_ms > 0.0
          ? 1000.0 *
                static_cast<double>(snapshot.TotalEvictions()) /
                result.wall_ms
          : 0.0;
  server.Stop();
  for (int fd : fds) ::close(fd);

  std::vector<double> all_ms;
  for (const std::vector<double>& per_client : latencies_ms) {
    all_ms.insert(all_ms.end(), per_client.begin(), per_client.end());
  }
  result.served = served.load();
  result.errors += errors.load();
  result.p50_ms = Percentile(&all_ms, 0.50);
  result.p99_ms = Percentile(&all_ms, 0.99);
  return result;
}

struct AdversarialResult {
  uint64_t served = 0;
  uint64_t errors = 0;
  uint64_t evictions = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double throughput_rps = 0.0;
};

// Slowloris churn sustained through a healthy workload: `attackers`
// threads loop connect -> torn header -> wait-for-eviction -> reconnect
// while `client_threads` healthy clients run the standard workload. What
// the record captures is the healthy fleet's latency under active attack
// and the supervisor's eviction throughput.
AdversarialResult RunAdversarial(const PriViewSynopsis& synopsis,
                                 int attackers, int client_threads,
                                 int requests_per_client, int config_index) {
  AdversarialResult result;
  serve::ServerOptions options;
  options.socket_path = "/tmp/priview_bench_adv_" +
                        std::to_string(::getpid()) + "_" +
                        std::to_string(config_index) + ".sock";
  options.io_timeout_ms = 250;  // fast frame deadline: high eviction churn
  options.broker.default_deadline = std::chrono::milliseconds(30000);
  serve::PriViewServer server(options);
  if (!server.registry().Install("bench", synopsis).ok() ||
      !server.Start().ok()) {
    std::fprintf(stderr, "adversarial server start failed\n");
    result.errors = 1;
    return result;
  }

  std::atomic<bool> attack_on{true};
  std::vector<std::thread> attack_threads;
  for (int a = 0; a < attackers; ++a) {
    attack_threads.emplace_back([&] {
      while (attack_on.load()) {
        const int fd = RawConnect(options.socket_path);
        if (fd < 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        }
        const uint8_t partial[3] = {9, 9, 9};
        (void)::write(fd, partial, sizeof(partial));
        // Wait for the frame-deadline eviction (EOF), then go again.
        char buf[64];
        ssize_t n;
        do {
          n = ::recv(fd, buf, sizeof(buf), 0);
        } while (n > 0);
        ::close(fd);
      }
    });
  }

  const std::vector<AttrSet> scopes = WorkloadScopes();
  std::vector<std::vector<double>> latencies_ms(client_threads);
  std::atomic<uint64_t> served{0}, errors{0};
  const Clock::time_point wall_start = Clock::now();
  std::vector<std::thread> workers;
  for (int c = 0; c < client_threads; ++c) {
    workers.emplace_back([&, c] {
      StatusOr<serve::PriViewClient> client =
          serve::PriViewClient::Connect(options.socket_path);
      if (!client.ok()) {
        errors.fetch_add(requests_per_client);
        return;
      }
      latencies_ms[c].reserve(requests_per_client);
      for (int i = 0; i < requests_per_client; ++i) {
        const Clock::time_point start = Clock::now();
        if (client.value()
                .Marginal("bench", scopes[(c + i) % scopes.size()])
                .ok()) {
          served.fetch_add(1);
          latencies_ms[c].push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count());
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - wall_start)
          .count();
  attack_on.store(false);
  for (std::thread& t : attack_threads) t.join();

  const serve::ServerMetrics::Snapshot snapshot =
      server.metrics().TakeSnapshot();
  result.evictions =
      snapshot.evictions[int(serve::EvictionCause::kFrameStall)];
  server.Stop();

  std::vector<double> all_ms;
  for (const std::vector<double>& per_client : latencies_ms) {
    all_ms.insert(all_ms.end(), per_client.begin(), per_client.end());
  }
  result.served = served.load();
  result.errors += errors.load();
  result.p50_ms = Percentile(&all_ms, 0.50);
  result.p99_ms = Percentile(&all_ms, 0.99);
  result.throughput_rps =
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(result.served) / wall_ms
                    : 0.0;
  return result;
}

void PrintResult(const char* label, const ConfigResult& r) {
  std::printf(
      "%-10s clients=%-3d coalesce=%-3s served=%-6llu rejected=%-5llu "
      "%.0f req/s  p50 %.3f ms  p99 %.3f ms  coalesce-rate %.3f\n",
      label, r.clients, r.coalesce ? "on" : "off",
      static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.rejected), r.throughput_rps, r.p50_ms,
      r.p99_ms, r.coalescing_hit_rate);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    // Ignore unknown flags so run_benches.sh can pass figure knobs through.
  }
  const int requests_per_client = quick ? 25 : 100;

  const PriViewSynopsis synopsis = MakeServingSynopsis(quick);
  std::printf("serving benchmark: aol-like d=45, %zu released 8-attr views, "
              "engine cache off, %d requests/client\n\n",
              synopsis.views().size(), requests_per_client);

  // --- concurrency sweep, coalescing on vs off -----------------------------
  std::vector<ConfigResult> sweep;
  int config_index = 0;
  for (int clients : {1, 8, 64}) {
    for (bool coalesce : {true, false}) {
      sweep.push_back(RunConfig(synopsis, clients, coalesce,
                                /*queue_capacity=*/4096, requests_per_client,
                                config_index++));
      PrintResult("sweep", sweep.back());
    }
  }

  // --- overloaded regime ----------------------------------------------------
  // Queue capacity 2 with 64 hammering clients: admission must reject
  // (backpressure), and the requests that do get in must still see a
  // bounded p99 — the queue never grows, so queueing delay cannot.
  const ConfigResult overload = RunConfig(
      synopsis, /*clients=*/64, /*coalesce=*/true, /*queue_capacity=*/2,
      requests_per_client, config_index++);
  PrintResult("overload", overload);
  if (overload.rejected == 0) {
    std::printf("note: overloaded regime produced no rejections on this "
                "host (solver outpaced 64 clients)\n");
  }

  // --- transport soak -------------------------------------------------------
  // A 5000+ connection fleet (10% slowloris, 90% half-open) held against
  // the event loop while healthy clients query. --quick scales the fleet
  // down but keeps every assertion.
  const size_t soak_conns = quick ? 600 : 5200;
  const SoakResult soak =
      RunSoak(synopsis, soak_conns, /*client_threads=*/8,
              /*requests_per_client=*/quick ? 8 : 24, config_index++);
  std::printf(
      "soak       conns=%-5zu peak_open=%-5zu stall-evict=%llu "
      "idle-evict=%llu  healthy served=%llu errors=%llu  p50 %.3f ms  "
      "p99 %.3f ms  %.0f evictions/s\n",
      soak.target_conns, soak.peak_open,
      static_cast<unsigned long long>(soak.frame_stall_evictions),
      static_cast<unsigned long long>(soak.idle_evictions),
      static_cast<unsigned long long>(soak.served),
      static_cast<unsigned long long>(soak.errors), soak.p50_ms, soak.p99_ms,
      soak.evictions_per_sec);

  // --- adversarial churn ----------------------------------------------------
  // Slowloris attackers that reconnect the instant they are evicted,
  // sustained through a full healthy workload.
  const AdversarialResult adversarial =
      RunAdversarial(synopsis, /*attackers=*/quick ? 8 : 32,
                     /*client_threads=*/8,
                     /*requests_per_client=*/quick ? 8 : 24, config_index++);
  std::printf(
      "adversarial evictions=%llu  healthy served=%llu errors=%llu  "
      "%.0f req/s  p50 %.3f ms  p99 %.3f ms\n",
      static_cast<unsigned long long>(adversarial.evictions),
      static_cast<unsigned long long>(adversarial.served),
      static_cast<unsigned long long>(adversarial.errors),
      adversarial.throughput_rps, adversarial.p50_ms, adversarial.p99_ms);

  double best_hit_rate = 0.0;
  for (const ConfigResult& r : sweep) {
    best_hit_rate = std::max(best_hit_rate, r.coalescing_hit_rate);
  }

  // The regression bar run_benches.sh enforces via the exit code: the
  // fleet must be admitted in full, every adversary evicted by the right
  // cause, and the healthy workload must never see a failure.
  int bar_failures = 0;
  const size_t soak_slowloris = soak.target_conns / 10;
  const size_t soak_half_open = soak.target_conns - soak_slowloris;
  if (soak.peak_open < soak.target_conns) {
    std::fprintf(stderr,
                 "BAR: soak peak_open %zu < target %zu (fleet not admitted)\n",
                 soak.peak_open, soak.target_conns);
    ++bar_failures;
  }
  if (soak.frame_stall_evictions < soak_slowloris) {
    std::fprintf(stderr,
                 "BAR: soak frame-stall evictions %llu < %zu slowloris peers\n",
                 static_cast<unsigned long long>(soak.frame_stall_evictions),
                 soak_slowloris);
    ++bar_failures;
  }
  if (soak.idle_evictions < soak_half_open) {
    std::fprintf(stderr,
                 "BAR: soak idle evictions %llu < %zu half-open peers\n",
                 static_cast<unsigned long long>(soak.idle_evictions),
                 soak_half_open);
    ++bar_failures;
  }
  if (soak.errors != 0) {
    std::fprintf(stderr, "BAR: soak healthy clients saw %llu errors\n",
                 static_cast<unsigned long long>(soak.errors));
    ++bar_failures;
  }
  if (adversarial.errors != 0) {
    std::fprintf(stderr, "BAR: adversarial healthy clients saw %llu errors\n",
                 static_cast<unsigned long long>(adversarial.errors));
    ++bar_failures;
  }
  if (adversarial.evictions == 0) {
    std::fprintf(stderr, "BAR: adversarial churn produced no evictions\n");
    ++bar_failures;
  }

  if (!out_path.empty()) {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"bench_serve\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"requests_per_client\": %d,\n", requests_per_client);
    for (const ConfigResult& r : sweep) {
      char prefix[64];
      std::snprintf(prefix, sizeof(prefix), "c%d_%s", r.clients,
                    r.coalesce ? "coalesce" : "solo");
      std::fprintf(f, "  \"%s_throughput_rps\": %.1f,\n", prefix,
                   r.throughput_rps);
      std::fprintf(f, "  \"%s_p50_ms\": %.4f,\n", prefix, r.p50_ms);
      std::fprintf(f, "  \"%s_p99_ms\": %.4f,\n", prefix, r.p99_ms);
      std::fprintf(f, "  \"%s_hit_rate\": %.4f,\n", prefix,
                   r.coalescing_hit_rate);
      std::fprintf(f, "  \"%s_errors\": %llu,\n", prefix,
                   static_cast<unsigned long long>(r.other_errors));
    }
    std::fprintf(f, "  \"coalescing_hit_rate\": %.4f,\n", best_hit_rate);
    std::fprintf(f, "  \"overload_served\": %llu,\n",
                 static_cast<unsigned long long>(overload.served));
    std::fprintf(f, "  \"overload_rejected\": %llu,\n",
                 static_cast<unsigned long long>(overload.rejected));
    std::fprintf(f, "  \"overload_p50_ms\": %.4f,\n", overload.p50_ms);
    std::fprintf(f, "  \"overload_p99_ms\": %.4f,\n", overload.p99_ms);
    std::fprintf(f, "  \"soak_connections\": %zu,\n", soak.target_conns);
    std::fprintf(f, "  \"soak_peak_open\": %zu,\n", soak.peak_open);
    std::fprintf(f, "  \"soak_frame_stall_evictions\": %llu,\n",
                 static_cast<unsigned long long>(soak.frame_stall_evictions));
    std::fprintf(f, "  \"soak_idle_evictions\": %llu,\n",
                 static_cast<unsigned long long>(soak.idle_evictions));
    std::fprintf(f, "  \"soak_evictions_per_sec\": %.1f,\n",
                 soak.evictions_per_sec);
    std::fprintf(f, "  \"soak_healthy_served\": %llu,\n",
                 static_cast<unsigned long long>(soak.served));
    std::fprintf(f, "  \"soak_healthy_errors\": %llu,\n",
                 static_cast<unsigned long long>(soak.errors));
    std::fprintf(f, "  \"soak_p50_ms\": %.4f,\n", soak.p50_ms);
    std::fprintf(f, "  \"soak_p99_ms\": %.4f,\n", soak.p99_ms);
    std::fprintf(f, "  \"adversarial_evictions\": %llu,\n",
                 static_cast<unsigned long long>(adversarial.evictions));
    std::fprintf(f, "  \"adversarial_healthy_served\": %llu,\n",
                 static_cast<unsigned long long>(adversarial.served));
    std::fprintf(f, "  \"adversarial_healthy_errors\": %llu,\n",
                 static_cast<unsigned long long>(adversarial.errors));
    std::fprintf(f, "  \"adversarial_throughput_rps\": %.1f,\n",
                 adversarial.throughput_rps);
    std::fprintf(f, "  \"adversarial_p50_ms\": %.4f,\n", adversarial.p50_ms);
    std::fprintf(f, "  \"adversarial_p99_ms\": %.4f,\n", adversarial.p99_ms);
    std::fprintf(f, "  \"transport_bar_failures\": %d\n", bar_failures);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (bar_failures > 0) {
    std::fprintf(stderr, "transport regression bar: %d failure(s)\n",
                 bar_failures);
    return 1;
  }
  return 0;
}
