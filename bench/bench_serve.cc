// Serving benchmark: throughput and client-observed p50/p99 latency of the
// src/serve stack (Unix-socket server -> broker -> engine) at 1, 8 and 64
// concurrent clients, with coalescing on and off, plus an overloaded
// regime (tiny admission queue, heavy solver work) where backpressure must
// reject rather than collapse. Writes a machine-readable perf record
// (BENCH_serve.json).
//
// The hosted engine runs with its read-side cache *disabled* so every
// full-tier request costs a real reconstruction — that is the regime where
// batch coalescing (duplicate / sub-marginal requests sharing one solve)
// is load-bearing, and what the on/off comparison measures. Production
// servers run with the cache on and do strictly better.
//
// Usage: bench_serve [--quick] [--out=PATH.json]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "serve/client.h"
#include "serve/server.h"

using namespace priview;
using Clock = std::chrono::steady_clock;

namespace {

PriViewSynopsis MakeServingSynopsis(bool quick) {
  // AOL-like d=45 with 8-attribute released views: uncovered targets that
  // span several views cost real solver time (constraint assembly + IPF
  // over up to 2^8 cells), so a shared reconstruction is a visible win.
  Rng rng(41);
  Dataset data = MakeAolLike(&rng, quick ? 20000 : 100000);
  std::vector<AttrSet> views;
  for (int start = 0; start + 8 <= 44; start += 6) {
    std::vector<int> attrs;
    for (int a = start; a < start + 8; ++a) attrs.push_back(a);
    views.push_back(AttrSet::FromIndices(attrs));
  }
  PriViewOptions options;
  options.epsilon = 1.0;
  return PriViewSynopsis::Build(data, views, options, &rng);
}

// A pool with deliberate overlap: duplicates and sub-marginals of the
// same scopes recur across clients, which is what coalescing exploits.
// The wide scopes span multiple released views, so they are uncovered and
// need the solver chain.
std::vector<AttrSet> WorkloadScopes() {
  return {
      // 13 attributes across 3 views: ~0.3 ms of solver per request.
      AttrSet::FromIndices({0, 1, 2, 3, 4, 8, 9, 10, 11, 16, 17, 18, 19}),
      AttrSet::FromIndices({0, 1, 2, 3, 8, 9, 10, 11, 16, 17}),  // sub of [0]
      AttrSet::FromIndices({4, 8, 9, 16, 17, 18, 19}),           // sub of [0]
      // 14 attributes across 4 views: ~0.6 ms.
      AttrSet::FromIndices(
          {0, 1, 2, 3, 8, 9, 10, 11, 16, 17, 18, 19, 24, 25}),
      AttrSet::FromIndices({8, 9, 10, 11, 24, 25}),              // sub of [3]
      // 12 attributes across 3 views.
      AttrSet::FromIndices({24, 25, 26, 27, 32, 33, 34, 35, 40, 41, 42, 43}),
      AttrSet::FromIndices({24, 25, 32, 33, 40, 41}),            // sub of [5]
      AttrSet::FromIndices({0, 1, 2, 3}),                        // covered
  };
}

struct ConfigResult {
  int clients = 0;
  bool coalesce = true;
  uint64_t served = 0;
  uint64_t rejected = 0;
  uint64_t other_errors = 0;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double coalescing_hit_rate = 0.0;
};

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0.0;
  std::sort(sorted_ms->begin(), sorted_ms->end());
  const size_t idx = std::min(
      sorted_ms->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms->size())));
  return (*sorted_ms)[idx];
}

ConfigResult RunConfig(const PriViewSynopsis& synopsis, int clients,
                       bool coalesce, size_t queue_capacity,
                       int requests_per_client, int config_index) {
  ConfigResult result;
  result.clients = clients;
  result.coalesce = coalesce;

  serve::ServerOptions options;
  options.socket_path = "/tmp/priview_bench_serve_" +
                        std::to_string(::getpid()) + "_" +
                        std::to_string(config_index) + ".sock";
  options.broker.coalesce = coalesce;
  options.broker.queue_capacity = queue_capacity;
  options.broker.default_deadline = std::chrono::milliseconds(30000);
  serve::PriViewServer server(options);
  QueryEngineOptions engine_options;
  engine_options.cache_capacity = 0;  // every full answer is a real solve
  if (!server.registry().Install("bench", synopsis, engine_options).ok() ||
      !server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return result;
  }

  const std::vector<AttrSet> scopes = WorkloadScopes();
  std::vector<std::vector<double>> latencies_ms(clients);
  std::atomic<uint64_t> served{0}, rejected{0}, other_errors{0};

  const Clock::time_point wall_start = Clock::now();
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      StatusOr<serve::PriViewClient> client =
          serve::PriViewClient::Connect(options.socket_path);
      if (!client.ok()) {
        other_errors.fetch_add(requests_per_client);
        return;
      }
      latencies_ms[c].reserve(requests_per_client);
      for (int i = 0; i < requests_per_client; ++i) {
        const AttrSet& scope = scopes[(c + i) % scopes.size()];
        const Clock::time_point start = Clock::now();
        StatusOr<serve::ClientTable> answer =
            client.value().Marginal("bench", scope);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
        if (answer.ok()) {
          served.fetch_add(1);
          latencies_ms[c].push_back(ms);
        } else if (answer.status().code() == StatusCode::kResourceExhausted) {
          rejected.fetch_add(1);
        } else {
          other_errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                             wall_start)
                       .count();

  const serve::ServerMetrics::Snapshot snapshot =
      server.metrics().TakeSnapshot();
  result.coalescing_hit_rate = snapshot.CoalescingHitRate();
  server.Stop();

  std::vector<double> all_ms;
  for (const std::vector<double>& per_client : latencies_ms) {
    all_ms.insert(all_ms.end(), per_client.begin(), per_client.end());
  }
  result.served = served.load();
  result.rejected = rejected.load();
  result.other_errors = other_errors.load();
  result.throughput_rps =
      result.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(result.served) / result.wall_ms
          : 0.0;
  result.p99_ms = Percentile(&all_ms, 0.99);
  result.p50_ms = Percentile(&all_ms, 0.50);
  return result;
}

void PrintResult(const char* label, const ConfigResult& r) {
  std::printf(
      "%-10s clients=%-3d coalesce=%-3s served=%-6llu rejected=%-5llu "
      "%.0f req/s  p50 %.3f ms  p99 %.3f ms  coalesce-rate %.3f\n",
      label, r.clients, r.coalesce ? "on" : "off",
      static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.rejected), r.throughput_rps, r.p50_ms,
      r.p99_ms, r.coalescing_hit_rate);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    // Ignore unknown flags so run_benches.sh can pass figure knobs through.
  }
  const int requests_per_client = quick ? 25 : 100;

  const PriViewSynopsis synopsis = MakeServingSynopsis(quick);
  std::printf("serving benchmark: aol-like d=45, %zu released 8-attr views, "
              "engine cache off, %d requests/client\n\n",
              synopsis.views().size(), requests_per_client);

  // --- concurrency sweep, coalescing on vs off -----------------------------
  std::vector<ConfigResult> sweep;
  int config_index = 0;
  for (int clients : {1, 8, 64}) {
    for (bool coalesce : {true, false}) {
      sweep.push_back(RunConfig(synopsis, clients, coalesce,
                                /*queue_capacity=*/4096, requests_per_client,
                                config_index++));
      PrintResult("sweep", sweep.back());
    }
  }

  // --- overloaded regime ----------------------------------------------------
  // Queue capacity 2 with 64 hammering clients: admission must reject
  // (backpressure), and the requests that do get in must still see a
  // bounded p99 — the queue never grows, so queueing delay cannot.
  const ConfigResult overload = RunConfig(
      synopsis, /*clients=*/64, /*coalesce=*/true, /*queue_capacity=*/2,
      requests_per_client, config_index++);
  PrintResult("overload", overload);
  if (overload.rejected == 0) {
    std::printf("note: overloaded regime produced no rejections on this "
                "host (solver outpaced 64 clients)\n");
  }

  double best_hit_rate = 0.0;
  for (const ConfigResult& r : sweep) {
    best_hit_rate = std::max(best_hit_rate, r.coalescing_hit_rate);
  }

  if (!out_path.empty()) {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"bench_serve\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"requests_per_client\": %d,\n", requests_per_client);
    for (const ConfigResult& r : sweep) {
      char prefix[64];
      std::snprintf(prefix, sizeof(prefix), "c%d_%s", r.clients,
                    r.coalesce ? "coalesce" : "solo");
      std::fprintf(f, "  \"%s_throughput_rps\": %.1f,\n", prefix,
                   r.throughput_rps);
      std::fprintf(f, "  \"%s_p50_ms\": %.4f,\n", prefix, r.p50_ms);
      std::fprintf(f, "  \"%s_p99_ms\": %.4f,\n", prefix, r.p99_ms);
      std::fprintf(f, "  \"%s_hit_rate\": %.4f,\n", prefix,
                   r.coalescing_hit_rate);
      std::fprintf(f, "  \"%s_errors\": %llu,\n", prefix,
                   static_cast<unsigned long long>(r.other_errors));
    }
    std::fprintf(f, "  \"coalescing_hit_rate\": %.4f,\n", best_hit_rate);
    std::fprintf(f, "  \"overload_served\": %llu,\n",
                 static_cast<unsigned long long>(overload.served));
    std::fprintf(f, "  \"overload_rejected\": %llu,\n",
                 static_cast<unsigned long long>(overload.rejected));
    std::fprintf(f, "  \"overload_p50_ms\": %.4f,\n", overload.p50_ms);
    std::fprintf(f, "  \"overload_p99_ms\": %.4f\n", overload.p99_ms);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
