// Parallel-execution benchmark: quantifies the three wins of the parallel
// layer and writes them to a JSON perf record (BENCH_perf.json).
//
//   1. Fused multi-view counting — one cache-blocked pass over the records
//      for all w views vs the legacy per-view scans, serial and threaded.
//   2. Threaded synopsis publication (P in the paper's §4.6 table) at 1
//      and 8 threads — bit-identical outputs by the determinism contract.
//   3. The read-side marginal cache — cold vs cached Q6 latency and the
//      hit rate over a repeating analyst workload, plus AnswerBatch.
//
// Speedups on a multi-core host come from the thread pool; on a 1-core
// host only the fused-kernel win (an algorithmic one) shows, which is why
// the record includes hardware_threads.
//
// Usage: bench_parallel [--quick] [--out=PATH.json]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "design/covering_design.h"
#include "metrics/metrics.h"

using namespace priview;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

template <typename Fn>
double TimeMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return MillisSince(start);
}

volatile double g_sink = 0.0;

void Consume(const std::vector<MarginalTable>& tables) {
  double s = 0.0;
  for (const MarginalTable& t : tables) s += t.cells().empty() ? 0.0 : t.cells()[0];
  g_sink = s;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    // Ignore unknown flags so run_benches.sh can pass figure knobs through.
  }

  // AOL-like d=45 with a C3(8, w) design — the paper's heaviest timing
  // setting; --quick shrinks N for CI-speed smoke runs.
  const size_t n = quick ? 50000 : 647377;
  Rng data_rng(862);
  const Dataset data = MakeAolLike(&data_rng, n);
  Rng design_rng(900 + 45 + 3);
  const CoveringDesign design = MakeCoveringDesign(data.d(), 8, 3, &design_rng);
  const std::vector<AttrSet>& views = design.blocks;
  std::printf("dataset: aol-like d=%d N=%zu, design %s (w=%d)\n", data.d(), n,
              design.Name().c_str(), design.w());

  // --- 1. Counting kernels -------------------------------------------------
  const double legacy_ms = TimeMs([&] {
    std::vector<MarginalTable> tables;
    tables.reserve(views.size());
    for (const AttrSet& view : views) tables.push_back(data.CountMarginal(view));
    Consume(tables);
  });
  parallel::SetThreadCount(1);
  const double fused_serial_ms =
      TimeMs([&] { Consume(data.CountMarginals(views)); });
  std::printf("count: legacy per-view %.1f ms, fused serial %.1f ms (%.2fx)\n",
              legacy_ms, fused_serial_ms, legacy_ms / fused_serial_ms);
  std::vector<std::pair<int, double>> fused_threaded;
  for (int threads : {2, 4, 8}) {
    parallel::SetThreadCount(threads);
    fused_threaded.emplace_back(
        threads, TimeMs([&] { Consume(data.CountMarginals(views)); }));
    std::printf("count: fused %d threads %.1f ms (%.2fx vs serial)\n", threads,
                fused_threaded.back().second,
                fused_serial_ms / fused_threaded.back().second);
  }

  // --- 2. Publication (P) --------------------------------------------------
  PriViewOptions options;
  options.epsilon = 1.0;
  parallel::SetThreadCount(1);
  double publish_serial_ms;
  {
    Rng rng(1);
    publish_serial_ms = TimeMs(
        [&] { PriViewSynopsis::Build(data, views, options, &rng); });
  }
  parallel::SetThreadCount(8);
  double publish_8t_ms;
  {
    Rng rng(1);
    publish_8t_ms = TimeMs(
        [&] { PriViewSynopsis::Build(data, views, options, &rng); });
  }
  std::printf("publish: serial %.1f ms, 8 threads %.1f ms (%.2fx)\n",
              publish_serial_ms, publish_8t_ms,
              publish_serial_ms / publish_8t_ms);

  // --- 3. Query serving ----------------------------------------------------
  parallel::SetThreadCount(0);
  Rng build_rng(7);
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, views, options, &build_rng);
  const QueryEngine engine(&synopsis);
  Rng qrng(8);
  const std::vector<AttrSet> q6 = SampleQuerySets(data.d(), 6, 8, &qrng);
  const std::vector<AttrSet> q8 = SampleQuerySets(data.d(), 8, 8, &qrng);

  double q6_cold_ms = 0.0, q8_cold_ms = 0.0;
  for (const AttrSet& q : q6) {
    q6_cold_ms += TimeMs([&] { (void)engine.TryQueryWithDiagnostics(q); });
  }
  q6_cold_ms /= static_cast<double>(q6.size());
  for (const AttrSet& q : q8) {
    q8_cold_ms += TimeMs([&] { (void)engine.TryQueryWithDiagnostics(q); });
  }
  q8_cold_ms /= static_cast<double>(q8.size());

  // Warm the cache, then measure the cached path on the same queries.
  for (const AttrSet& q : q6) (void)engine.TryMarginal(q);
  double q6_cached_ms = 0.0;
  const int kCachedReps = 50;
  for (int rep = 0; rep < kCachedReps; ++rep) {
    for (const AttrSet& q : q6) {
      q6_cached_ms += TimeMs([&] { (void)engine.TryMarginal(q); });
    }
  }
  q6_cached_ms /= static_cast<double>(q6.size() * kCachedReps);
  std::printf("query: Q6 cold %.3f ms, Q8 cold %.3f ms, Q6 cached %.4f ms "
              "(%.0fx faster than cold)\n",
              q6_cold_ms, q8_cold_ms, q6_cached_ms, q6_cold_ms / q6_cached_ms);

  // Analyst workload with repetition: every query asked 4 times, plus
  // sub-marginals of cached answers — the hit rate the cache earns.
  const QueryEngine workload_engine(&synopsis);
  std::vector<AttrSet> workload;
  for (int round = 0; round < 4; ++round) {
    for (const AttrSet& q : q6) workload.push_back(q);
  }
  for (const AttrSet& q : q6) {
    const std::vector<int> attrs = q.ToIndices();
    workload.push_back(AttrSet::FromIndices({attrs[0], attrs[1], attrs[2]}));
  }
  const double workload_ms = TimeMs([&] {
    for (const AttrSet& q : workload) (void)workload_engine.TryMarginal(q);
  });
  const MarginalCache::Stats stats = workload_engine.cache_stats();
  std::printf("workload: %zu queries in %.1f ms, hit rate %.3f "
              "(%llu exact, %llu rollup, %llu miss)\n",
              workload.size(), workload_ms, stats.HitRate(),
              static_cast<unsigned long long>(stats.exact_hits),
              static_cast<unsigned long long>(stats.rollup_hits),
              static_cast<unsigned long long>(stats.misses));

  // Batch answering of the distinct Q6 targets on a cold engine.
  const QueryEngine batch_engine(&synopsis);
  const double batch_ms =
      TimeMs([&] { (void)batch_engine.AnswerBatch(q6); });
  std::printf("batch: %zu distinct Q6 in %.1f ms\n", q6.size(), batch_ms);

  if (!out_path.empty()) {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"bench_parallel\",\n");
    std::fprintf(f, "  \"dataset\": \"aol-like\",\n");
    std::fprintf(f, "  \"d\": %d,\n  \"n\": %zu,\n", data.d(), n);
    std::fprintf(f, "  \"design\": \"%s\",\n  \"w\": %d,\n",
                 design.Name().c_str(), design.w());
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"hardware_threads\": %d,\n",
                 parallel::ThreadCount());
    std::fprintf(f, "  \"count_legacy_per_view_ms\": %.3f,\n", legacy_ms);
    std::fprintf(f, "  \"count_fused_serial_ms\": %.3f,\n", fused_serial_ms);
    std::fprintf(f, "  \"count_fused_vs_legacy_speedup\": %.3f,\n",
                 legacy_ms / fused_serial_ms);
    for (const auto& [threads, ms] : fused_threaded) {
      std::fprintf(f, "  \"count_fused_%dt_ms\": %.3f,\n", threads, ms);
    }
    std::fprintf(f, "  \"publish_serial_ms\": %.3f,\n", publish_serial_ms);
    std::fprintf(f, "  \"publish_8t_ms\": %.3f,\n", publish_8t_ms);
    std::fprintf(f, "  \"publish_speedup_8t\": %.3f,\n",
                 publish_serial_ms / publish_8t_ms);
    std::fprintf(f, "  \"q6_cold_ms\": %.4f,\n", q6_cold_ms);
    std::fprintf(f, "  \"q8_cold_ms\": %.4f,\n", q8_cold_ms);
    std::fprintf(f, "  \"q6_cached_ms\": %.5f,\n", q6_cached_ms);
    std::fprintf(f, "  \"cached_vs_cold_speedup\": %.1f,\n",
                 q6_cold_ms / q6_cached_ms);
    std::fprintf(f, "  \"workload_queries\": %zu,\n", workload.size());
    std::fprintf(f, "  \"workload_ms\": %.3f,\n", workload_ms);
    std::fprintf(f, "  \"cache_hit_rate\": %.4f,\n", stats.HitRate());
    std::fprintf(f, "  \"batch_q6_ms\": %.3f\n", batch_ms);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
