// Parallel-execution benchmark: quantifies the three wins of the parallel
// layer and writes them to a JSON perf record (BENCH_perf.json).
//
//   1. Fused multi-view counting — one cache-blocked pass over the records
//      for all w views vs the legacy per-view scans, serial and threaded.
//   2. Threaded synopsis publication (P in the paper's §4.6 table) across
//      a 1/2/4/8/16-thread matrix under the work-stealing overlapped
//      scheduler — bit-identical outputs at every pool size by the
//      determinism contract (checked here, cell for cell), with the
//      multicore publish bar: at least 1.8x over serial at 4 threads,
//      applied only when the host has >= 4 hardware threads.
//   3. The read-side marginal cache — cold vs cached Q6 latency and the
//      hit rate over a repeating analyst workload, plus AnswerBatch.
//   4. The arena-backed solver core — cold Q8 reconstruction latency vs
//      the pre-arena baseline, and an AnswerBatch thread matrix. This
//      section carries the perf regression bar: the process exits
//      non-zero when cold Q8 is not at least 3x faster than the pre-port
//      baseline (run_benches.sh treats that as fatal), so the record can
//      never be refreshed from a run that regressed the solver.
//
// Speedups on a multi-core host come from the thread pool; on a 1-core
// host only the fused-kernel win (an algorithmic one) shows, which is why
// the record includes hardware_threads and the multicore scaling bars are
// gated on it. Matrix entries where the pool is oversubscribed
// (threads > hardware_threads) still *run* — the determinism cross-check
// wants the interleavings — but their timings are recorded as JSON null:
// an oversubscribed measurement captures contention, not scaling, and
// must never be mistaken for a real datapoint.
//
// Usage: bench_parallel [--quick] [--out=PATH.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "design/covering_design.h"
#include "metrics/metrics.h"

using namespace priview;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

template <typename Fn>
double TimeMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return MillisSince(start);
}

volatile double g_sink = 0.0;

void Consume(const std::vector<MarginalTable>& tables) {
  double s = 0.0;
  for (const MarginalTable& t : tables) s += t.cells().empty() ? 0.0 : t.cells()[0];
  g_sink = s;
}

bool BitIdentical(const PriViewSynopsis& a, const PriViewSynopsis& b) {
  if (a.total() != b.total()) return false;
  if (a.views().size() != b.views().size()) return false;
  for (size_t v = 0; v < a.views().size(); ++v) {
    if (a.views()[v].attrs().mask() != b.views()[v].attrs().mask()) return false;
    if (a.views()[v].cells() != b.views()[v].cells()) return false;
  }
  return true;
}

// Emits `"key": <value>,` with the given printf format, or `"key": null,`
// when the measurement is invalid (oversubscribed pool, bar not applied).
void WriteNumOrNull(FILE* f, const char* key, const char* fmt, double value,
                    bool valid) {
  if (valid) {
    std::fprintf(f, "  \"%s\": ", key);
    std::fprintf(f, fmt, value);
    std::fprintf(f, ",\n");
  } else {
    std::fprintf(f, "  \"%s\": null,\n", key);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    // Ignore unknown flags so run_benches.sh can pass figure knobs through.
  }

  // AOL-like d=45 with a C3(8, w) design — the paper's heaviest timing
  // setting; --quick shrinks N for CI-speed smoke runs.
  const size_t n = quick ? 50000 : 647377;
  Rng data_rng(862);
  const Dataset data = MakeAolLike(&data_rng, n);
  Rng design_rng(900 + 45 + 3);
  const CoveringDesign design = MakeCoveringDesign(data.d(), 8, 3, &design_rng);
  const std::vector<AttrSet>& views = design.blocks;
  const int hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  std::printf("dataset: aol-like d=%d N=%zu, design %s (w=%d), host threads %d\n",
              data.d(), n, design.Name().c_str(), design.w(),
              hardware_threads);

  // --- 1. Counting kernels -------------------------------------------------
  const double legacy_ms = TimeMs([&] {
    std::vector<MarginalTable> tables;
    tables.reserve(views.size());
    for (const AttrSet& view : views) tables.push_back(data.CountMarginal(view));
    Consume(tables);
  });
  parallel::SetThreadCount(1);
  const double fused_serial_ms =
      TimeMs([&] { Consume(data.CountMarginals(views)); });
  std::printf("count: legacy per-view %.1f ms, fused serial %.1f ms (%.2fx)\n",
              legacy_ms, fused_serial_ms, legacy_ms / fused_serial_ms);
  std::vector<std::pair<int, double>> fused_threaded;
  for (int threads : {2, 4, 8}) {
    parallel::SetThreadCount(threads);
    fused_threaded.emplace_back(
        threads, TimeMs([&] { Consume(data.CountMarginals(views)); }));
    std::printf("count: fused %d threads %.1f ms (%.2fx vs serial)%s\n",
                threads, fused_threaded.back().second,
                fused_serial_ms / fused_threaded.back().second,
                threads <= hardware_threads ? "" : " [oversubscribed]");
  }

  // --- 2. Publication (P) --------------------------------------------------
  // The publish thread matrix: one full noisy Build per pool size from a
  // fresh, identically-seeded RNG. Stealing and phase overlap may permute
  // which worker executes a chunk, never the result — every run is
  // compared cell for cell against the 1-thread reference. Oversubscribed
  // pool sizes still run (the determinism cross-check wants those
  // interleavings) but their timings are nulled in the JSON record.
  PriViewOptions options;
  options.epsilon = 1.0;
  const std::vector<int> publish_thread_matrix = {1, 2, 4, 8, 16};
  std::vector<double> publish_ms;
  std::optional<PriViewSynopsis> publish_ref;
  bool publish_bit_identical = true;
  const uint64_t steals_before = parallel::StealCount();
  const uint64_t steal_failures_before = parallel::StealFailureCount();
  const uint64_t overflows_before = parallel::OverflowCount();
  for (int threads : publish_thread_matrix) {
    parallel::SetThreadCount(threads);
    Rng rng(1);
    std::optional<PriViewSynopsis> built;
    publish_ms.push_back(TimeMs(
        [&] { built.emplace(PriViewSynopsis::Build(data, views, options, &rng)); }));
    if (!publish_ref.has_value()) {
      publish_ref = std::move(built);
    } else if (!BitIdentical(*built, *publish_ref)) {
      publish_bit_identical = false;
    }
    std::printf("publish: %2dt %.1f ms (%.2fx vs 1t)%s\n", threads,
                publish_ms.back(), publish_ms.front() / publish_ms.back(),
                threads <= hardware_threads ? "" : " [oversubscribed]");
  }
  const uint64_t publish_steals = parallel::StealCount() - steals_before;
  const uint64_t publish_steal_failures =
      parallel::StealFailureCount() - steal_failures_before;
  const uint64_t publish_overflows =
      parallel::OverflowCount() - overflows_before;
  std::printf("publish: bit-identical across matrix: %s; steals %llu "
              "(failed probes %llu), overflows %llu\n",
              publish_bit_identical ? "yes" : "NO",
              static_cast<unsigned long long>(publish_steals),
              static_cast<unsigned long long>(publish_steal_failures),
              static_cast<unsigned long long>(publish_overflows));

  // --- 3. Query serving ----------------------------------------------------
  parallel::SetThreadCount(0);
  Rng build_rng(7);
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, views, options, &build_rng);
  const QueryEngine engine(&synopsis);
  Rng qrng(8);
  const std::vector<AttrSet> q6 = SampleQuerySets(data.d(), 6, 8, &qrng);
  const std::vector<AttrSet> q8 = SampleQuerySets(data.d(), 8, 8, &qrng);

  double q6_cold_ms = 0.0, q8_cold_ms = 0.0;
  for (const AttrSet& q : q6) {
    q6_cold_ms += TimeMs([&] { (void)engine.TryQueryWithDiagnostics(q); });
  }
  q6_cold_ms /= static_cast<double>(q6.size());
  for (const AttrSet& q : q8) {
    q8_cold_ms += TimeMs([&] { (void)engine.TryQueryWithDiagnostics(q); });
  }
  q8_cold_ms /= static_cast<double>(q8.size());

  // Warm the cache, then measure the cached path on the same queries.
  for (const AttrSet& q : q6) (void)engine.TryMarginal(q);
  double q6_cached_ms = 0.0;
  const int kCachedReps = 50;
  for (int rep = 0; rep < kCachedReps; ++rep) {
    for (const AttrSet& q : q6) {
      q6_cached_ms += TimeMs([&] { (void)engine.TryMarginal(q); });
    }
  }
  q6_cached_ms /= static_cast<double>(q6.size() * kCachedReps);
  std::printf("query: Q6 cold %.3f ms, Q8 cold %.3f ms, Q6 cached %.4f ms "
              "(%.0fx faster than cold)\n",
              q6_cold_ms, q8_cold_ms, q6_cached_ms, q6_cold_ms / q6_cached_ms);

  // Analyst workload with repetition: every query asked 4 times, plus
  // sub-marginals of cached answers — the hit rate the cache earns.
  const QueryEngine workload_engine(&synopsis);
  std::vector<AttrSet> workload;
  for (int round = 0; round < 4; ++round) {
    for (const AttrSet& q : q6) workload.push_back(q);
  }
  for (const AttrSet& q : q6) {
    const std::vector<int> attrs = q.ToIndices();
    workload.push_back(AttrSet::FromIndices({attrs[0], attrs[1], attrs[2]}));
  }
  const double workload_ms = TimeMs([&] {
    for (const AttrSet& q : workload) (void)workload_engine.TryMarginal(q);
  });
  const MarginalCache::Stats stats = workload_engine.cache_stats();
  std::printf("workload: %zu queries in %.1f ms, hit rate %.3f "
              "(%llu exact, %llu rollup, %llu miss)\n",
              workload.size(), workload_ms, stats.HitRate(),
              static_cast<unsigned long long>(stats.exact_hits),
              static_cast<unsigned long long>(stats.rollup_hits),
              static_cast<unsigned long long>(stats.misses));

  // Batch answering of the distinct Q6 targets on a cold engine.
  const QueryEngine batch_engine(&synopsis);
  const double batch_ms =
      TimeMs([&] { (void)batch_engine.AnswerBatch(q6); });
  std::printf("batch: %zu distinct Q6 in %.1f ms\n", q6.size(), batch_ms);

  // --- 4. Arena solver core ------------------------------------------------
  // Cold Q8 through the arena-backed reconstruction chain: per query, the
  // minimum over several fresh-engine repetitions (every solve a true
  // cache miss), then the mean across queries. Min-of-reps is the robust
  // estimator on shared hosts — hypervisor steal inflates individual reps
  // by integer milliseconds without showing up in load average, and the
  // minimum converges on the true cost while the mean tracks the noise.
  // The baseline constant is q8_cold_ms from the BENCH_perf.json captured
  // immediately before the arena/SIMD port (same estimator: that run was
  // noise-free, where min and mean agree).
  constexpr double kQ8ColdBaselineMs = 9.0730;
  parallel::SetThreadCount(0);
  const int solver_reps = quick ? 4 : 8;
  std::vector<double> q8_best(q8.size(),
                              std::numeric_limits<double>::infinity());
  for (int rep = 0; rep < solver_reps; ++rep) {
    const QueryEngine cold_engine(&synopsis);
    for (size_t qi = 0; qi < q8.size(); ++qi) {
      q8_best[qi] = std::min(
          q8_best[qi],
          TimeMs([&] { (void)cold_engine.TryQueryWithDiagnostics(q8[qi]); }));
    }
  }
  double q8_cold_arena_ms = 0.0;
  for (const double best : q8_best) q8_cold_arena_ms += best;
  q8_cold_arena_ms /= static_cast<double>(q8.size());
  std::printf("solver: Q8 cold %.4f ms vs pre-arena baseline %.4f ms "
              "(%.2fx faster)\n",
              q8_cold_arena_ms, kQ8ColdBaselineMs,
              kQ8ColdBaselineMs / q8_cold_arena_ms);

  // Thread matrix: the distinct Q8 targets answered as one batch at fixed
  // pool sizes (each lane solving on its own thread-local arena).
  std::vector<std::pair<int, double>> solver_batch;
  for (int threads : {1, 2, 4, 8}) {
    parallel::SetThreadCount(threads);
    const QueryEngine matrix_engine(&synopsis);
    solver_batch.emplace_back(
        threads, TimeMs([&] { (void)matrix_engine.AnswerBatch(q8); }));
    std::printf("solver: batch Q8 %dt %.1f ms%s\n", threads,
                solver_batch.back().second,
                threads <= hardware_threads ? "" : " [oversubscribed]");
  }
  parallel::SetThreadCount(0);

  // Regression bars. Determinism and the solver bar hold on any host (the
  // solve is single-threaded per query); the multicore publish bar and the
  // batch-scaling bar only on hosts with the cores to show them —
  // oversubscribed timings measure contention, so holding them to a
  // scaling bar would make the record unrefreshable on small CI hosts.
  constexpr double kPublishSpeedupBar4t = 1.8;
  const bool multicore_bar_applies = hardware_threads >= 4;
  int bar_failures = 0;
  if (!publish_bit_identical) {
    std::fprintf(stderr,
                 "PERF BAR FAILED: publish output not bit-identical across "
                 "the thread matrix — determinism contract broken\n");
    ++bar_failures;
  }
  if (multicore_bar_applies) {
    const double publish_speedup_4t = publish_ms[0] / publish_ms[2];
    if (publish_speedup_4t < kPublishSpeedupBar4t) {
      std::fprintf(stderr,
                   "PERF BAR FAILED: publish speedup at 4 threads %.2fx "
                   "below the %.1fx bar (1t %.1f ms, 4t %.1f ms) on a "
                   "%d-thread host\n",
                   publish_speedup_4t, kPublishSpeedupBar4t, publish_ms[0],
                   publish_ms[2], hardware_threads);
      ++bar_failures;
    }
  } else {
    std::printf("publish: multicore bar skipped (host has %d hardware "
                "threads, bar needs >= 4)\n",
                hardware_threads);
  }
  if (q8_cold_arena_ms > kQ8ColdBaselineMs / 3.0) {
    std::fprintf(stderr,
                 "PERF BAR FAILED: q8_cold_arena_ms %.4f exceeds a third of "
                 "the pre-arena baseline %.4f\n",
                 q8_cold_arena_ms, kQ8ColdBaselineMs);
    ++bar_failures;
  }
  if (hardware_threads >= 4) {
    const double batch_1t = solver_batch[0].second;
    const double batch_4t = solver_batch[2].second;
    if (batch_4t > batch_1t) {
      std::fprintf(stderr,
                   "PERF BAR FAILED: batch Q8 at 4 threads (%.1f ms) slower "
                   "than 1 thread (%.1f ms) on a %d-thread host\n",
                   batch_4t, batch_1t, hardware_threads);
      ++bar_failures;
    }
  }

  if (!out_path.empty()) {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"bench_parallel\",\n");
    std::fprintf(f, "  \"dataset\": \"aol-like\",\n");
    std::fprintf(f, "  \"d\": %d,\n  \"n\": %zu,\n", data.d(), n);
    std::fprintf(f, "  \"design\": \"%s\",\n  \"w\": %d,\n",
                 design.Name().c_str(), design.w());
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"hardware_threads\": %d,\n", hardware_threads);
    std::fprintf(f, "  \"count_legacy_per_view_ms\": %.3f,\n", legacy_ms);
    std::fprintf(f, "  \"count_fused_serial_ms\": %.3f,\n", fused_serial_ms);
    std::fprintf(f, "  \"count_fused_vs_legacy_speedup\": %.3f,\n",
                 legacy_ms / fused_serial_ms);
    for (const auto& [threads, ms] : fused_threaded) {
      char key[64];
      std::snprintf(key, sizeof(key), "count_fused_%dt_ms", threads);
      WriteNumOrNull(f, key, "%.3f", ms, threads <= hardware_threads);
    }
    // Publish thread matrix. Oversubscribed entries are null (satellite
    // rule: a 1-core host must not publish 8-thread "speedups"); the 1t
    // serial time is always real. Speedup fields exist only at pool sizes
    // the host can actually run.
    for (size_t i = 0; i < publish_thread_matrix.size(); ++i) {
      const int threads = publish_thread_matrix[i];
      char key[64];
      std::snprintf(key, sizeof(key), "publish_%dt_ms", threads);
      WriteNumOrNull(f, key, "%.3f", publish_ms[i],
                     threads <= hardware_threads);
      if (threads > 1) {
        std::snprintf(key, sizeof(key), "publish_speedup_%dt", threads);
        WriteNumOrNull(f, key, "%.3f", publish_ms[0] / publish_ms[i],
                       threads <= hardware_threads);
      }
    }
    std::fprintf(f, "  \"publish_bit_identical\": %s,\n",
                 publish_bit_identical ? "true" : "false");
    std::fprintf(f, "  \"publish_multicore_bar_4t\": %.1f,\n",
                 kPublishSpeedupBar4t);
    std::fprintf(f, "  \"publish_multicore_bar_applied\": %s,\n",
                 multicore_bar_applies ? "true" : "false");
    std::fprintf(f, "  \"publish_steals\": %llu,\n",
                 static_cast<unsigned long long>(publish_steals));
    std::fprintf(f, "  \"publish_steal_failures\": %llu,\n",
                 static_cast<unsigned long long>(publish_steal_failures));
    std::fprintf(f, "  \"publish_overflows\": %llu,\n",
                 static_cast<unsigned long long>(publish_overflows));
    std::fprintf(f, "  \"q6_cold_ms\": %.4f,\n", q6_cold_ms);
    std::fprintf(f, "  \"q8_cold_ms\": %.4f,\n", q8_cold_ms);
    std::fprintf(f, "  \"q6_cached_ms\": %.5f,\n", q6_cached_ms);
    std::fprintf(f, "  \"cached_vs_cold_speedup\": %.1f,\n",
                 q6_cold_ms / q6_cached_ms);
    std::fprintf(f, "  \"workload_queries\": %zu,\n", workload.size());
    std::fprintf(f, "  \"workload_ms\": %.3f,\n", workload_ms);
    std::fprintf(f, "  \"cache_hit_rate\": %.4f,\n", stats.HitRate());
    std::fprintf(f, "  \"batch_q6_ms\": %.3f,\n", batch_ms);
    std::fprintf(f, "  \"q8_cold_arena_ms\": %.4f,\n", q8_cold_arena_ms);
    std::fprintf(f, "  \"q8_cold_baseline_ms\": %.4f,\n", kQ8ColdBaselineMs);
    std::fprintf(f, "  \"q8_arena_speedup\": %.2f,\n",
                 kQ8ColdBaselineMs / q8_cold_arena_ms);
    for (const auto& [threads, ms] : solver_batch) {
      char key[64];
      std::snprintf(key, sizeof(key), "solver_batch_q8_%dt_ms", threads);
      WriteNumOrNull(f, key, "%.3f", ms, threads <= hardware_threads);
    }
    std::fprintf(f, "  \"perf_bar_failures\": %d\n", bar_failures);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return bar_failures == 0 ? 0 : 2;
}
