// Property tests for the consistency machinery over random view systems:
// the §4.4 guarantees must hold for any views, not just the hand-picked
// ones in consistency_test.cc.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/consistency.h"
#include "dp/mechanisms.h"
#include "table/dataset.h"

namespace priview {
namespace {

struct RandomSystem {
  Dataset data;
  std::vector<MarginalTable> views;
};

RandomSystem MakeRandomNoisySystem(int seed, int d, int num_views,
                                   int view_size) {
  Rng rng(seed);
  Dataset data(d);
  const uint64_t mask = (d == 64) ? ~0ULL : ((1ULL << d) - 1);
  for (int i = 0; i < 2000; ++i) data.Add(rng.NextUint64() & mask);
  std::vector<MarginalTable> views;
  for (int v = 0; v < num_views; ++v) {
    const AttrSet scope =
        AttrSet::FromIndices(rng.SampleWithoutReplacement(d, view_size));
    MarginalTable t = data.CountMarginal(scope);
    AddLaplaceNoise(&t, static_cast<double>(num_views), 1.0, &rng);
    views.push_back(std::move(t));
  }
  return {std::move(data), std::move(views)};
}

class ConsistencyProperties : public ::testing::TestWithParam<int> {};

TEST_P(ConsistencyProperties, MakeConsistentReachesExactAgreement) {
  RandomSystem sys = MakeRandomNoisySystem(1000 + GetParam(), 12, 6, 5);
  MakeConsistent(&sys.views);
  EXPECT_LT(MaxInconsistency(sys.views), 1e-7);
}

TEST_P(ConsistencyProperties, ConsistencyIsIdempotent) {
  RandomSystem sys = MakeRandomNoisySystem(2000 + GetParam(), 10, 5, 4);
  MakeConsistent(&sys.views);
  const std::vector<MarginalTable> once = sys.views;
  MakeConsistent(&sys.views);
  for (size_t v = 0; v < once.size(); ++v) {
    for (size_t i = 0; i < once[v].size(); ++i) {
      EXPECT_NEAR(sys.views[v].At(i), once[v].At(i), 1e-7);
    }
  }
}

TEST_P(ConsistencyProperties, TotalsEqualTheMeanOfInputTotals) {
  RandomSystem sys = MakeRandomNoisySystem(3000 + GetParam(), 10, 4, 4);
  double mean_total = 0.0;
  for (const MarginalTable& v : sys.views) mean_total += v.Total();
  mean_total /= static_cast<double>(sys.views.size());
  MakeConsistent(&sys.views);
  for (const MarginalTable& v : sys.views) {
    EXPECT_NEAR(v.Total(), mean_total, 1e-7);
  }
}

TEST_P(ConsistencyProperties, Lemma1HoldsForRandomMutualSteps) {
  // A mutual-consistency step on `common` must not change any view's
  // projection onto attributes disjoint from `common`.
  Rng rng(4000 + GetParam());
  RandomSystem sys = MakeRandomNoisySystem(5000 + GetParam(), 12, 4, 5);
  // Find two views with a nonempty intersection.
  for (size_t i = 0; i < sys.views.size(); ++i) {
    for (size_t j = i + 1; j < sys.views.size(); ++j) {
      const AttrSet common =
          sys.views[i].attrs().Intersect(sys.views[j].attrs());
      if (common.empty()) continue;
      // Lemma 1's precondition: the views must already be consistent on a
      // subset of `common` — here the empty set (equal totals), which is
      // always the first step of the paper's topological schedule.
      MutualConsistencyStep(&sys.views, AttrSet(),
                            {static_cast<int>(i), static_cast<int>(j)});
      const AttrSet outside_i = sys.views[i].attrs().Minus(common);
      const AttrSet outside_j = sys.views[j].attrs().Minus(common);
      const MarginalTable before_i = sys.views[i].Project(outside_i);
      const MarginalTable before_j = sys.views[j].Project(outside_j);
      MutualConsistencyStep(&sys.views, common,
                            {static_cast<int>(i), static_cast<int>(j)});
      const MarginalTable after_i = sys.views[i].Project(outside_i);
      const MarginalTable after_j = sys.views[j].Project(outside_j);
      for (size_t c = 0; c < before_i.size(); ++c) {
        EXPECT_NEAR(after_i.At(c), before_i.At(c), 1e-8);
      }
      for (size_t c = 0; c < before_j.size(); ++c) {
        EXPECT_NEAR(after_j.At(c), before_j.At(c), 1e-8);
      }
      // Agreement achieved on `common`.
      EXPECT_LT(sys.views[i].Project(common).LinfDistanceTo(
                    sys.views[j].Project(common)),
                1e-8);
    }
  }
}

TEST_P(ConsistencyProperties, MutualStepMatchesMinimumVarianceAverage) {
  // The post-step shared marginal equals the arithmetic mean of the
  // pre-step projections (the minimum-variance combination for equal
  // budgets, §4.4).
  RandomSystem sys = MakeRandomNoisySystem(6000 + GetParam(), 10, 3, 4);
  const AttrSet common =
      sys.views[0].attrs().Intersect(sys.views[1].attrs());
  if (common.empty()) return;
  const MarginalTable p0 = sys.views[0].Project(common);
  const MarginalTable p1 = sys.views[1].Project(common);
  MutualConsistencyStep(&sys.views, common, {0, 1});
  const MarginalTable after = sys.views[0].Project(common);
  for (size_t c = 0; c < after.size(); ++c) {
    EXPECT_NEAR(after.At(c), 0.5 * (p0.At(c) + p1.At(c)), 1e-9);
  }
}

TEST_P(ConsistencyProperties, PlanReuseMatchesFreshConsistency) {
  // Applying a cached ConsistencyPlan must equal a fresh MakeConsistent.
  RandomSystem a = MakeRandomNoisySystem(7000 + GetParam(), 10, 5, 4);
  RandomSystem b = a;
  std::vector<AttrSet> scopes;
  for (const MarginalTable& v : a.views) scopes.push_back(v.attrs());
  const ConsistencyPlan plan(scopes);
  plan.Apply(&a.views);
  MakeConsistent(&b.views);
  for (size_t v = 0; v < a.views.size(); ++v) {
    for (size_t i = 0; i < a.views[v].size(); ++i) {
      EXPECT_DOUBLE_EQ(a.views[v].At(i), b.views[v].At(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConsistencyProperties,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace priview
