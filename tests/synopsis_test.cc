#include "core/synopsis.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/consistency.h"
#include "data/synthetic.h"
#include "design/covering_design.h"
#include "design/view_selection.h"
#include "metrics/metrics.h"

namespace priview {
namespace {

TEST(SynopsisTest, BuildsConsistentViews) {
  Rng rng(1);
  Dataset data = MakeMsnbcLike(&rng, 50000);
  const CoveringDesign design = MakeCoveringDesign(9, 6, 2, &rng);
  PriViewOptions options;
  options.epsilon = 1.0;
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, design.blocks, options, &rng);
  EXPECT_EQ(synopsis.views().size(), 3u);
  EXPECT_LT(MaxInconsistency(synopsis.views()), 1e-6);
  EXPECT_NEAR(synopsis.total(), 50000.0, 5000.0);
}

TEST(SynopsisTest, NoNoiseReproducesExactCoveredMarginals) {
  Rng rng(2);
  Dataset data = MakeMsnbcLike(&rng, 20000);
  const CoveringDesign design = MakeCoveringDesign(9, 6, 2, &rng);
  PriViewOptions options;
  options.add_noise = false;
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, design.blocks, options, &rng);
  const AttrSet covered = AttrSet::FromIndices({0, 1, 5});
  const MarginalTable answer = synopsis.Query(covered);
  const MarginalTable truth = data.CountMarginal(covered);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(answer.At(i), truth.At(i), 1e-6);
  }
}

TEST(SynopsisTest, NoisyAnswersTrackTruth) {
  Rng rng(3);
  Dataset data = MakeMsnbcLike(&rng, 200000);
  const CoveringDesign design = MakeCoveringDesign(9, 6, 2, &rng);
  PriViewOptions options;
  options.epsilon = 1.0;
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, design.blocks, options, &rng);
  const double n = static_cast<double>(data.size());
  // Covered pair: error should be far below the uniform baseline.
  const AttrSet pair = AttrSet::FromIndices({2, 7});
  const MarginalTable truth = data.CountMarginal(pair);
  const MarginalTable answer = synopsis.Query(pair);
  const MarginalTable uniform(pair, n / 4.0);
  EXPECT_LT(answer.L2DistanceTo(truth), uniform.L2DistanceTo(truth));
}

TEST(SynopsisTest, QueryWorksForUncoveredScopes) {
  Rng rng(4);
  Dataset data = MakeMsnbcLike(&rng, 100000);
  const CoveringDesign design = MakeCoveringDesign(9, 6, 2, &rng);
  PriViewOptions options;
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, design.blocks, options, &rng);
  // 4-way scope not inside any block of C2(6,3): e.g. {0, 3, 6, 8} spans
  // all three blocks.
  const AttrSet target = AttrSet::FromIndices({0, 3, 6, 8});
  for (auto method :
       {ReconstructionMethod::kMaxEntropy, ReconstructionMethod::kLeastNorm,
        ReconstructionMethod::kLinearProgram}) {
    const MarginalTable answer = synopsis.Query(target, method);
    EXPECT_EQ(answer.attrs(), target);
    EXPECT_GE(answer.MinCell(), -1e-6);
    EXPECT_NEAR(answer.Total(), synopsis.total(),
                0.05 * synopsis.total());
  }
}

TEST(SynopsisTest, RippleRemovesDeepNegatives) {
  Rng rng(5);
  Dataset data = MakeMsnbcLike(&rng, 1000);  // tiny N, eps makes noise huge
  const CoveringDesign design = MakeCoveringDesign(9, 6, 2, &rng);
  PriViewOptions options;
  options.epsilon = 0.5;
  options.ripple.theta = 1.0;
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, design.blocks, options, &rng);
  // After C + Ripple + C, residual negatives should be small relative to
  // the noise scale w/eps = 6 (the paper: "they tend to be very small").
  for (const MarginalTable& view : synopsis.views()) {
    EXPECT_GT(view.MinCell(), -15.0);
  }
}

TEST(SynopsisTest, NonNegRoundsMatchRippleIterations) {
  Rng rng(6);
  Dataset data = MakeMsnbcLike(&rng, 5000);
  const CoveringDesign design = MakeCoveringDesign(9, 6, 2, &rng);
  PriViewOptions r1;
  r1.nonneg_rounds = 1;
  PriViewOptions r3;
  r3.nonneg_rounds = 3;
  Rng rng1(77), rng3(77);
  const PriViewSynopsis s1 =
      PriViewSynopsis::Build(data, design.blocks, r1, &rng1);
  const PriViewSynopsis s3 =
      PriViewSynopsis::Build(data, design.blocks, r3, &rng3);
  // Same noise seed: Ripple_3 should produce (weakly) fewer negatives.
  double min1 = 0.0, min3 = 0.0;
  for (const MarginalTable& v : s1.views()) min1 = std::min(min1, v.MinCell());
  for (const MarginalTable& v : s3.views()) min3 = std::min(min3, v.MinCell());
  EXPECT_LE(min3, 0.0);
  EXPECT_GE(min3, min1 - 1e-9);
}

TEST(SynopsisTest, EndToEndWithViewSelection) {
  Rng rng(7);
  Dataset data = MakeKosarakLike(&rng, 30000);
  const ViewSelection sel = SelectViews(32, 30000.0, 1.0, &rng);
  PriViewOptions options;
  options.epsilon = 1.0;
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, sel.design.blocks, options, &rng);
  Rng qrng(8);
  const std::vector<AttrSet> queries = SampleQuerySets(32, 4, 10, &qrng);
  const double n = static_cast<double>(data.size());
  double priview_error = 0.0, uniform_error = 0.0;
  for (AttrSet q : queries) {
    const MarginalTable truth = data.CountMarginal(q);
    priview_error += synopsis.Query(q).L2DistanceTo(truth) / n;
    uniform_error += MarginalTable(q, n / 16.0).L2DistanceTo(truth) / n;
  }
  EXPECT_LT(priview_error, uniform_error);
}

}  // namespace
}  // namespace priview
