#include "opt/max_ent_dual.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "opt/ipf.h"

namespace priview {
namespace {

MarginalConstraint Make(std::vector<int> attrs, std::vector<double> cells) {
  const AttrSet scope = AttrSet::FromIndices(attrs);
  return {scope, MarginalTable(scope, std::move(cells))};
}

TEST(MaxEntDualTest, IndependentProduct) {
  std::vector<MarginalConstraint> cs;
  cs.push_back(Make({0}, {20.0, 80.0}));
  cs.push_back(Make({1}, {50.0, 50.0}));
  const MaxEntDualResult r =
      MaxEntropyDual(AttrSet::FromIndices({0, 1}), 100.0, std::move(cs));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.table.At(0b00), 10.0, 1e-5);
  EXPECT_NEAR(r.table.At(0b11), 40.0, 1e-5);
}

TEST(MaxEntDualTest, NoConstraintsUniform) {
  const MaxEntDualResult r =
      MaxEntropyDual(AttrSet::FromIndices({0, 1, 2}), 80.0,
                     std::span<const MarginalConstraint>{});
  EXPECT_TRUE(r.converged);
  for (size_t i = 0; i < r.table.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.table.At(i), 10.0);
  }
}

// The two independently implemented max-entropy solvers must agree on
// random consistent instances — the strongest correctness check we have
// for the paper's CME step.
class SolverAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreementTest, IpfAndDualAgree) {
  Rng rng(1000 + GetParam());
  MarginalTable joint(AttrSet::Full(6));
  for (double& c : joint.cells()) c = 0.5 + rng.UniformDouble() * 9.5;
  const double total = joint.Total();

  // Random overlapping scopes.
  std::vector<MarginalConstraint> cs;
  for (int i = 0; i < 3; ++i) {
    const AttrSet scope =
        AttrSet::FromIndices(rng.SampleWithoutReplacement(6, 3));
    cs.push_back({scope, joint.Project(scope)});
  }

  const IpfResult ipf = MaxEntropyIpf(joint.attrs(), total, cs);
  const MaxEntDualResult dual = MaxEntropyDual(joint.attrs(), total, cs);
  ASSERT_TRUE(ipf.converged);
  ASSERT_TRUE(dual.converged);
  for (size_t i = 0; i < ipf.table.size(); ++i) {
    EXPECT_NEAR(ipf.table.At(i), dual.table.At(i), 1e-3)
        << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SolverAgreementTest,
                         ::testing::Range(0, 10));

TEST(MaxEntDualTest, ZeroTargetForcesZeroSlice) {
  std::vector<MarginalConstraint> cs;
  cs.push_back(Make({0}, {0.0, 100.0}));
  const MaxEntDualResult r =
      MaxEntropyDual(AttrSet::FromIndices({0, 1}), 100.0, std::move(cs));
  EXPECT_NEAR(r.table.At(0b00) + r.table.At(0b10), 0.0, 1e-6);
}

}  // namespace
}  // namespace priview
