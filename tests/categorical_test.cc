#include "categorical/cat_priview.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "categorical/cat_table.h"

namespace priview {
namespace {

CatDataset MakeCorrelatedSurvey(const CatDomain& domain, size_t n, Rng* rng) {
  // Attribute 0 drawn from a skewed distribution; each later attribute
  // copies (attr 0 mod its cardinality) with probability 0.6.
  CatDataset data(domain);
  std::vector<int> record(domain.d());
  for (size_t i = 0; i < n; ++i) {
    record[0] = static_cast<int>(rng->UniformInt(domain.Cardinality(0)));
    if (rng->Bernoulli(0.5)) record[0] = 0;  // skew
    for (int a = 1; a < domain.d(); ++a) {
      if (rng->Bernoulli(0.6)) {
        record[a] = record[0] % domain.Cardinality(a);
      } else {
        record[a] = static_cast<int>(rng->UniformInt(domain.Cardinality(a)));
      }
    }
    data.Add(record);
  }
  return data;
}

TEST(CatTableTest, MixedRadixIndexRoundTrip) {
  const CatDomain domain({3, 2, 4, 5});
  CatTable t(domain, AttrSet::FromIndices({0, 2, 3}));
  EXPECT_EQ(t.size(), 3u * 4 * 5);
  for (size_t cell = 0; cell < t.size(); ++cell) {
    EXPECT_EQ(t.IndexOf(t.ValuesOf(cell)), cell);
  }
}

TEST(CatTableTest, CountAndProjectMatch) {
  Rng rng(1);
  const CatDomain domain({3, 4, 2});
  CatDataset data(domain);
  for (int i = 0; i < 3000; ++i) {
    data.Add({static_cast<int>(rng.UniformInt(3)),
              static_cast<int>(rng.UniformInt(4)),
              static_cast<int>(rng.UniformInt(2))});
  }
  const AttrSet wide = AttrSet::FromIndices({0, 1});
  const AttrSet narrow = AttrSet::FromIndices({1});
  const CatTable direct = data.CountMarginal(narrow);
  const CatTable projected =
      data.CountMarginal(wide).Project(domain, narrow);
  ASSERT_EQ(direct.size(), projected.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct.At(i), projected.At(i));
  }
}

TEST(CatRippleTest, PreservesTotalAndClearsDeepNegatives) {
  Rng rng(2);
  const CatDomain domain({3, 3});
  CatTable t(domain, AttrSet::FromIndices({0, 1}));
  for (double& c : t.cells()) c = rng.Laplace(10.0) + 4.0;
  const double before = t.Total();
  CatRippleNonNegativity(&t, 1.0);
  EXPECT_NEAR(t.Total(), before, 1e-8);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.At(i), -1.0 - 1e-9);
  }
}

TEST(CatRippleTest, NeighborsAreSingleValueChanges) {
  const CatDomain domain({3, 2});
  CatTable t(domain, AttrSet::FromIndices({0, 1}));
  // Layout (attr0 fast): idx = v0 + 3*v1.
  t.At(0) = -6.0;
  for (size_t i = 1; i < t.size(); ++i) t.At(i) = 10.0;
  CatRippleNonNegativity(&t, 0.5);
  // Neighbors of (0,0): (1,0), (2,0), (0,1) -> each got -6/3 = -2.
  EXPECT_DOUBLE_EQ(t.At(0), 0.0);
  EXPECT_DOUBLE_EQ(t.At(1), 8.0);
  EXPECT_DOUBLE_EQ(t.At(2), 8.0);
  EXPECT_DOUBLE_EQ(t.At(3), 8.0);
  EXPECT_DOUBLE_EQ(t.At(4), 10.0);  // (1,1) unchanged: differs in 2 attrs
  EXPECT_DOUBLE_EQ(t.At(5), 10.0);
}

TEST(CatConsistencyTest, ViewsAgreeAfterConsistency) {
  Rng rng(3);
  const CatDomain domain({3, 2, 4, 3});
  CatDataset data = MakeCorrelatedSurvey(domain, 4000, &rng);
  std::vector<CatTable> views;
  for (AttrSet scope : {AttrSet::FromIndices({0, 1, 2}),
                        AttrSet::FromIndices({1, 2, 3}),
                        AttrSet::FromIndices({0, 3})}) {
    CatTable t = data.CountMarginal(scope);
    for (double& c : t.cells()) c += rng.Laplace(3.0);
    views.push_back(std::move(t));
  }
  CatMakeConsistent(domain, &views);
  // Check pairwise agreement on intersections.
  for (size_t i = 0; i < views.size(); ++i) {
    for (size_t j = i + 1; j < views.size(); ++j) {
      const AttrSet common = views[i].scope().Intersect(views[j].scope());
      if (common.empty()) {
        EXPECT_NEAR(views[i].Total(), views[j].Total(), 1e-7);
        continue;
      }
      const CatTable pi = views[i].Project(domain, common);
      const CatTable pj = views[j].Project(domain, common);
      for (size_t a = 0; a < pi.size(); ++a) {
        EXPECT_NEAR(pi.At(a), pj.At(a), 1e-7);
      }
    }
  }
}

TEST(CatReconstructTest, CoveredScopeExact) {
  Rng rng(4);
  const CatDomain domain({3, 2, 4});
  CatDataset data = MakeCorrelatedSurvey(domain, 2000, &rng);
  std::vector<CatTable> views = {
      data.CountMarginal(AttrSet::FromIndices({0, 1})),
      data.CountMarginal(AttrSet::FromIndices({1, 2}))};
  const CatTable answer = CatReconstructMarginal(
      domain, views, AttrSet::FromIndices({0, 1}), 2000.0);
  const CatTable truth = data.CountMarginal(AttrSet::FromIndices({0, 1}));
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(answer.At(i), truth.At(i), 1e-9);
  }
}

TEST(CatReconstructTest, IpfSatisfiesConstraints) {
  Rng rng(5);
  const CatDomain domain({3, 2, 4});
  CatDataset data = MakeCorrelatedSurvey(domain, 5000, &rng);
  std::vector<CatTable> views = {
      data.CountMarginal(AttrSet::FromIndices({0, 1})),
      data.CountMarginal(AttrSet::FromIndices({1, 2}))};
  const AttrSet target = AttrSet::FromIndices({0, 1, 2});
  const CatTable answer =
      CatReconstructMarginal(domain, views, target, 5000.0);
  for (const CatTable& view : views) {
    const CatTable got = answer.Project(domain, view.scope());
    for (size_t a = 0; a < got.size(); ++a) {
      EXPECT_NEAR(got.At(a), view.At(a), 0.5);
    }
  }
}

TEST(CatViewSelectionTest, PairCoverRespectsBudget) {
  Rng rng(6);
  const CatDomain domain({3, 4, 2, 5, 3, 2, 4, 3});
  const int budget = 200;
  const std::vector<AttrSet> blocks =
      GreedyPairCoverUnderBudget(domain, budget, &rng);
  // All pairs covered.
  for (int a = 0; a < domain.d(); ++a) {
    for (int b = a + 1; b < domain.d(); ++b) {
      bool covered = false;
      for (AttrSet block : blocks) {
        if (block.Contains(a) && block.Contains(b)) covered = true;
      }
      EXPECT_TRUE(covered) << a << "," << b;
    }
  }
  // Cell budget respected.
  for (AttrSet block : blocks) {
    EXPECT_LE(domain.TableSize(block), static_cast<size_t>(budget));
  }
}

TEST(CatBudgetGuidanceTest, ObjectiveAndRanges) {
  // Objective decreasing then increasing in s (unimodal-ish): check the
  // recommended windows bracket reasonable values.
  double lo = 0.0, hi = 0.0;
  RecommendedCellBudget(2.0, &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, 100.0);
  EXPECT_DOUBLE_EQ(hi, 1000.0);
  RecommendedCellBudget(5.0, &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, 250.0);
  EXPECT_DOUBLE_EQ(hi, 5000.0);
  EXPECT_GT(CellBudgetObjective(2.0, 10000.0),
            CellBudgetObjective(2.0, 500.0));
}

TEST(CatSynopsisTest, EndToEndBeatsUniform) {
  Rng rng(7);
  const CatDomain domain({3, 3, 2, 4, 3, 2});
  CatDataset data = MakeCorrelatedSurvey(domain, 50000, &rng);
  const std::vector<AttrSet> blocks =
      GreedyPairCoverUnderBudget(domain, 100, &rng);
  CatPriViewSynopsis::Options options;
  options.epsilon = 1.0;
  const CatPriViewSynopsis synopsis =
      CatPriViewSynopsis::Build(data, blocks, options, &rng);

  const AttrSet target = AttrSet::FromIndices({0, 1, 3});
  const CatTable truth = data.CountMarginal(target);
  const CatTable answer = synopsis.Query(target);
  CatTable uniform(domain, target,
                   static_cast<double>(data.size()) /
                       static_cast<double>(domain.TableSize(target)));
  EXPECT_LT(answer.L2DistanceTo(truth), uniform.L2DistanceTo(truth));
}

}  // namespace
}  // namespace priview
