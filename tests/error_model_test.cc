#include "core/error_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace priview {
namespace {

TEST(ErrorModelTest, UnitVariance) {
  EXPECT_DOUBLE_EQ(UnitVariance(1.0), 2.0);
  EXPECT_DOUBLE_EQ(UnitVariance(0.1), 200.0);
}

TEST(ErrorModelTest, FlatEseIsTwoToTheD) {
  EXPECT_DOUBLE_EQ(FlatEse(16, 1.0), 65536.0 * 2.0);
}

TEST(ErrorModelTest, DirectEseExample) {
  // §4.1 example: d=16, k=2 -> 2^2 * C(16,2)^2 V_u = 57600 V_u.
  EXPECT_DOUBLE_EQ(DirectEse(16, 2, 1.0) / UnitVariance(1.0), 57600.0);
}

TEST(ErrorModelTest, PriViewMidgroundExample) {
  // §4.1: six 8-way views -> 2^2 * 6^2 * 2^6 V_u = 9216 V_u for a pair
  // (the paper prints 9126, an arithmetic slip; 4*36*64 = 9216).
  const double pair_ese =
      4.0 * PriViewSingleViewEse(8, 6, 1.0) / UnitVariance(1.0) /
      std::pow(2.0, 8) * std::pow(2.0, 6);
  EXPECT_NEAR(pair_ese, 9216.0, 1e-6);
}

TEST(ErrorModelTest, CrossoverTableMatchesPaper) {
  // §3.2 table: Direct beats Flat from d >= 16, 26, 36, 46 for k = 2..5.
  EXPECT_EQ(DirectBeatsFlatThreshold(2), 16);
  EXPECT_EQ(DirectBeatsFlatThreshold(3), 26);
  EXPECT_EQ(DirectBeatsFlatThreshold(4), 36);
  EXPECT_EQ(DirectBeatsFlatThreshold(5), 46);
}

TEST(ErrorModelTest, FourierBeatsDirectByAbout2ToK) {
  // §3.3: Fourier reduces the Direct ESE by roughly a factor 2^k (exactly
  // if m were C(d,k); slightly less since m = sum_j C(d,j) > C(d,k)).
  const double ratio = DirectEse(32, 4, 1.0) / FourierEse(32, 4, 1.0);
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 16.0);
}

TEST(ErrorModelTest, ExpectedNormalizedL2) {
  EXPECT_DOUBLE_EQ(ExpectedNormalizedL2(400.0, 10.0), 2.0);
}

TEST(ErrorModelTest, EpsilonScaling) {
  // All ESEs scale as 1/eps^2.
  EXPECT_NEAR(FlatEse(10, 0.1) / FlatEse(10, 1.0), 100.0, 1e-9);
  EXPECT_NEAR(DirectEse(10, 3, 0.1) / DirectEse(10, 3, 1.0), 100.0, 1e-9);
  EXPECT_NEAR(FourierEse(10, 3, 0.1) / FourierEse(10, 3, 1.0), 100.0, 1e-9);
}

}  // namespace
}  // namespace priview
