// The determinism contract, end to end: the fused multi-view counting
// kernel, the word-blocked frequency kernel, and a full synopsis build are
// all bit-identical across thread counts (and the fused kernel matches the
// per-view reference exactly).
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/synopsis.h"
#include "design/covering_design.h"
#include "table/attr_set.h"
#include "table/dataset.h"

namespace priview {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ~ParallelDeterminismTest() override { parallel::SetThreadCount(0); }
};

Dataset RandomDataset(int d, size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data(d);
  const uint64_t mask = (d == 64) ? ~0ull : ((1ull << d) - 1);
  for (size_t i = 0; i < n; ++i) data.Add(rng.NextUint64() & mask);
  return data;
}

std::vector<AttrSet> RandomViews(int d, int ell, int count, uint64_t seed) {
  Rng rng(seed);
  const CoveringDesign design = MakeCoveringDesign(d, ell, 2, &rng);
  std::vector<AttrSet> views = design.blocks;
  if (static_cast<int>(views.size()) > count) views.resize(count);
  return views;
}

TEST_F(ParallelDeterminismTest, FusedCountMatchesPerViewExactly) {
  const Dataset data = RandomDataset(20, 20000, 41);
  const std::vector<AttrSet> views = RandomViews(20, 8, 12, 42);
  for (int threads : {1, 2, 8}) {
    parallel::SetThreadCount(threads);
    const std::vector<MarginalTable> fused = data.CountMarginals(views);
    ASSERT_EQ(fused.size(), views.size());
    for (size_t v = 0; v < views.size(); ++v) {
      const MarginalTable reference = data.CountMarginal(views[v]);
      ASSERT_EQ(fused[v].attrs().mask(), reference.attrs().mask());
      ASSERT_EQ(fused[v].cells(), reference.cells())
          << "view " << v << " threads=" << threads;
    }
  }
}

TEST_F(ParallelDeterminismTest, AttributeFrequencyMatchesNaiveCount) {
  // Sizes straddling the 64-record word boundary exercise the packed
  // popcount path and its tail loop.
  for (size_t n : {0ul, 1ul, 63ul, 64ul, 65ul, 4097ul}) {
    const Dataset data = RandomDataset(17, n, 7 + n);
    for (int a = 0; a < data.d(); ++a) {
      double expected = n == 0 ? 0.0 : 0.0;
      size_t ones = 0;
      for (size_t i = 0; i < n; ++i) {
        ones += (data.records()[i] >> a) & 1u;
      }
      if (n > 0) expected = static_cast<double>(ones) / static_cast<double>(n);
      for (int threads : {1, 4}) {
        parallel::SetThreadCount(threads);
        EXPECT_DOUBLE_EQ(data.AttributeFrequency(a), expected)
            << "n=" << n << " a=" << a;
      }
    }
  }
}

TEST_F(ParallelDeterminismTest, SynopsisBuildIsBitIdenticalAcrossThreads) {
  const Dataset data = RandomDataset(16, 30000, 99);
  Rng design_rng(17);
  const CoveringDesign design = MakeCoveringDesign(16, 6, 2, &design_rng);
  PriViewOptions options;
  options.epsilon = 1.0;

  std::vector<std::vector<MarginalTable>> runs;
  double reference_total = 0.0;
  for (int threads : {1, 2, 8}) {
    parallel::SetThreadCount(threads);
    Rng rng(2024);  // fresh, identical seed per run
    const PriViewSynopsis synopsis =
        PriViewSynopsis::Build(data, design.blocks, options, &rng);
    if (runs.empty()) reference_total = synopsis.total();
    EXPECT_EQ(synopsis.total(), reference_total) << "threads=" << threads;
    runs.push_back(synopsis.views());
  }
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (size_t v = 0; v < runs[0].size(); ++v) {
      ASSERT_EQ(runs[run][v].attrs().mask(), runs[0][v].attrs().mask());
      // Bit-identical: noise, Ripple, and Consistency all included.
      ASSERT_EQ(runs[run][v].cells(), runs[0][v].cells())
          << "view " << v << " run " << run;
    }
  }
}

TEST_F(ParallelDeterminismTest, NoiselessSynopsisViewsStayExactCounts) {
  // With add_noise off and consistency off, Stage 1's fused pass is the
  // whole build; the views must be the raw counts.
  const Dataset data = RandomDataset(12, 5000, 5);
  const std::vector<AttrSet> views = RandomViews(12, 5, 6, 6);
  PriViewOptions options;
  options.add_noise = false;
  options.run_consistency = false;
  parallel::SetThreadCount(4);
  Rng rng(1);
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, views, options, &rng);
  for (size_t v = 0; v < views.size(); ++v) {
    EXPECT_EQ(synopsis.views()[v].cells(), data.CountMarginal(views[v]).cells());
  }
}

}  // namespace
}  // namespace priview
