#include "baselines/matrix_mechanism.h"

#include <gtest/gtest.h>

#include "core/error_model.h"

namespace priview {
namespace {

TEST(MatrixMechanismTest, IdentityStrategyMatchesFlatEse) {
  // Strategy = identity is exactly the Flat method: per-marginal ESE
  // should equal 2^d V_u (summing 2^{d-k} unit-variance cells per entry
  // over 2^k entries).
  const MatrixMechanismResult r = EvaluateMatrixMechanism(6, 2, 1.0);
  double identity_ese = -1.0;
  for (const auto& e : r.evaluations) {
    if (e.strategy == "identity") identity_ese = e.expected_marginal_ese;
  }
  EXPECT_NEAR(identity_ese, FlatEse(6, 1.0), 1e-6 * FlatEse(6, 1.0));
}

TEST(MatrixMechanismTest, FourierStrategyMatchesFourierEse) {
  const MatrixMechanismResult r = EvaluateMatrixMechanism(6, 2, 1.0);
  double fourier_ese = -1.0;
  for (const auto& e : r.evaluations) {
    if (e.strategy == "fourier") fourier_ese = e.expected_marginal_ese;
  }
  const double predicted = FourierEse(6, 2, 1.0);
  EXPECT_NEAR(fourier_ese, predicted, 0.01 * predicted);
}

TEST(MatrixMechanismTest, BestIsMinimumOverAdaptiveStrategies) {
  const MatrixMechanismResult r = EvaluateMatrixMechanism(7, 2, 1.0);
  EXPECT_NE(r.best.strategy, "identity");
  for (const auto& e : r.evaluations) {
    if (e.strategy == "identity") continue;
    EXPECT_LE(r.best.expected_marginal_ese, e.expected_marginal_ese);
  }
}

TEST(MatrixMechanismTest, EpsilonScaling) {
  const MatrixMechanismResult a = EvaluateMatrixMechanism(6, 2, 1.0);
  const MatrixMechanismResult b = EvaluateMatrixMechanism(6, 2, 0.5);
  EXPECT_NEAR(b.best.expected_marginal_ese / a.best.expected_marginal_ese,
              4.0, 1e-6);
}

TEST(MatrixMechanismTest, BetterThanDirectAtSmallD) {
  // §5.1: "The result is better than direct, and worse than flat" at d=9.
  const MatrixMechanismResult r = EvaluateMatrixMechanism(9, 2, 1.0);
  EXPECT_LT(r.best.expected_marginal_ese, DirectEse(9, 2, 1.0));
}

}  // namespace
}  // namespace priview
