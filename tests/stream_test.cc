// Streaming release suite: window semantics (tumbling / sliding /
// cumulative), the delta-aware view counter's bit-identity with a full
// recount, the TryBuildFromCounts == TryBuild differential (same seed →
// bit-identical release), the publisher's epoch loop with cross-epoch
// budget accounting (typed refusal, never silent overspend), registry
// history + AcquireSeries, and the budget gauges' Prometheus scrape.
#include "stream/stream_publisher.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/window.h"
#include "obs/metrics_registry.h"
#include "serve/synopsis_registry.h"
#include "store/synopsis_store.h"
#include "stream/delta_counter.h"
#include "table/dataset.h"

namespace priview::stream {
namespace {

std::string FreshDir(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "/stream_" + tag + "_" +
         std::to_string(counter++);
}

// Deterministic batch of d-attribute records, distinct per (seed, size).
std::vector<uint64_t> MakeBatch(Rng* rng, int d, size_t n) {
  const uint64_t universe = d == 64 ? ~uint64_t{0} : (uint64_t{1} << d) - 1;
  std::vector<uint64_t> records(n);
  for (uint64_t& record : records) record = rng->NextUint64() & universe;
  return records;
}

std::vector<AttrSet> TestViews() {
  return {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4}),
          AttrSet::FromIndices({4, 5})};
}

// ---------------------------------------------------------------------------
// WindowBuffer

TEST(WindowBufferTest, TumblingReplacesTheWindowWholesale) {
  WindowBuffer window(8, WindowMode::kTumbling);
  ASSERT_TRUE(window.Ingest(std::vector<uint64_t>{1, 2, 3}).ok());
  EXPECT_EQ(window.pending_size(), 3u);

  EpochDelta first = window.AdvanceEpoch();
  EXPECT_EQ(first.added, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_TRUE(first.removed.empty());
  EXPECT_EQ(window.window_size(), 3u);
  EXPECT_EQ(window.pending_size(), 0u);

  ASSERT_TRUE(window.Ingest(std::vector<uint64_t>{7, 9}).ok());
  EpochDelta second = window.AdvanceEpoch();
  EXPECT_EQ(second.added, (std::vector<uint64_t>{7, 9}));
  EXPECT_EQ(second.removed, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(window.window_size(), 2u);
  EXPECT_EQ(window.epochs(), 2);
}

TEST(WindowBufferTest, SlidingEvictsBatchesBeyondDepth) {
  WindowBuffer window(8, WindowMode::kSliding, /*window_batches=*/2);
  ASSERT_TRUE(window.Ingest(std::vector<uint64_t>{1}).ok());
  (void)window.AdvanceEpoch();
  ASSERT_TRUE(window.Ingest(std::vector<uint64_t>{2, 3}).ok());
  EpochDelta second = window.AdvanceEpoch();
  EXPECT_TRUE(second.removed.empty());  // window not yet full
  EXPECT_EQ(window.window_size(), 3u);

  ASSERT_TRUE(window.Ingest(std::vector<uint64_t>{4}).ok());
  EpochDelta third = window.AdvanceEpoch();
  EXPECT_EQ(third.added, (std::vector<uint64_t>{4}));
  EXPECT_EQ(third.removed, (std::vector<uint64_t>{1}));  // oldest batch out
  EXPECT_EQ(window.window_size(), 3u);
}

TEST(WindowBufferTest, CumulativeOnlyEverAdds) {
  WindowBuffer window(8, WindowMode::kCumulative);
  for (int epoch = 0; epoch < 4; ++epoch) {
    ASSERT_TRUE(
        window.Ingest(std::vector<uint64_t>{uint64_t(epoch)}).ok());
    EpochDelta delta = window.AdvanceEpoch();
    EXPECT_EQ(delta.added.size(), 1u);
    EXPECT_TRUE(delta.removed.empty());
  }
  EXPECT_EQ(window.window_size(), 4u);
}

TEST(WindowBufferTest, RejectsRecordsOutsideTheUniverse) {
  WindowBuffer window(3, WindowMode::kTumbling);
  const Status rejected = window.Ingest(std::vector<uint64_t>{0b1000});
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(window.pending_size(), 0u);  // nothing buffered on failure
  // An empty advance (records only expiring / nothing new) is legal.
  EpochDelta delta = window.AdvanceEpoch();
  EXPECT_TRUE(delta.added.empty());
}

// ---------------------------------------------------------------------------
// DeltaViewCounter: the bit-identity differential

// The tentpole correctness claim: after any sequence of epoch deltas, the
// incrementally maintained counts are bit-identical (==, not near) to a
// from-scratch fused recount of the current window — for every mode.
TEST(DeltaViewCounterTest, DeltaMaintenanceIsBitIdenticalToFullRecount) {
  const int d = 8;
  const std::vector<AttrSet> views = TestViews();
  for (const WindowMode mode :
       {WindowMode::kTumbling, WindowMode::kSliding, WindowMode::kCumulative}) {
    SCOPED_TRACE(WindowModeName(mode));
    Rng rng(0xfeedu + static_cast<uint64_t>(mode));
    WindowBuffer window(d, mode, /*window_batches=*/3);
    StatusOr<DeltaViewCounter> counter = DeltaViewCounter::Create(d, views);
    ASSERT_TRUE(counter.ok());

    for (int epoch = 0; epoch < 8; ++epoch) {
      // Varying batch sizes exercise growth, eviction and empty deltas.
      const size_t n = (epoch * 37) % 200;
      ASSERT_TRUE(window.Ingest(MakeBatch(&rng, d, n)).ok());
      counter.value().ApplyDelta(window.AdvanceEpoch());

      const std::vector<MarginalTable> reference =
          window.WindowDataset().CountMarginals(views);
      ASSERT_EQ(counter.value().counts().size(), reference.size());
      for (size_t v = 0; v < reference.size(); ++v) {
        // Exact doubles: integer counts below 2^53 add and subtract
        // without rounding, so == is the correct comparison.
        EXPECT_EQ(counter.value().counts()[v].cells(),
                  reference[v].cells())
            << "view " << v << " diverged at epoch " << epoch;
      }
    }
  }
}

TEST(DeltaViewCounterTest, ViewsDisjointFromTheDeltaShiftInConstantTime) {
  const int d = 8;
  StatusOr<DeltaViewCounter> counter = DeltaViewCounter::Create(
      d, {AttrSet::FromIndices({0, 1}), AttrSet::FromIndices({6, 7})});
  ASSERT_TRUE(counter.ok());

  // Every delta record only touches attributes {0, 1}: view {6, 7} must be
  // maintained with the O(1) cell-0 shift, not a counting pass.
  EpochDelta delta;
  delta.added = {0b01, 0b10, 0b11};
  counter.value().ApplyDelta(delta);
  EXPECT_EQ(counter.value().last_stats().views_recounted, 1u);
  EXPECT_EQ(counter.value().last_stats().views_shifted, 1u);
  EXPECT_DOUBLE_EQ(counter.value().counts()[1].At(0), 3.0);

  EpochDelta removal;
  removal.removed = {0b01};
  counter.value().ApplyDelta(removal);
  EXPECT_DOUBLE_EQ(counter.value().counts()[1].At(0), 2.0);
  // All-zero records still count toward every view's cell 0.
  EXPECT_DOUBLE_EQ(counter.value().counts()[0].At(0), 0.0);
  EXPECT_DOUBLE_EQ(counter.value().counts()[0].At(0b11), 1.0);
}

// The other half of the differential: building from maintained counts is
// the same code path as building from the dataset — same seed, same
// doubles, cell for cell, with noise and consistency on.
TEST(DeltaViewCounterTest, BuildFromCountsMatchesFullBuildBitIdentically) {
  const int d = 8;
  const std::vector<AttrSet> views = TestViews();
  Rng data_rng(99);
  WindowBuffer window(d, WindowMode::kSliding, 2);
  StatusOr<DeltaViewCounter> counter = DeltaViewCounter::Create(d, views);
  ASSERT_TRUE(counter.ok());
  for (int epoch = 0; epoch < 3; ++epoch) {
    ASSERT_TRUE(window.Ingest(MakeBatch(&data_rng, d, 500)).ok());
    counter.value().ApplyDelta(window.AdvanceEpoch());
  }

  PriViewOptions options;
  options.epsilon = 0.7;
  options.nonneg_rounds = 2;
  Rng rng_full(1234);
  Rng rng_delta(1234);
  StatusOr<PriViewSynopsis> full = PriViewSynopsis::TryBuild(
      window.WindowDataset(), views, options, &rng_full);
  StatusOr<PriViewSynopsis> incremental = PriViewSynopsis::TryBuildFromCounts(
      d, counter.value().CountsCopy(), options, &rng_delta);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(incremental.ok());

  ASSERT_EQ(full.value().views().size(), incremental.value().views().size());
  for (size_t v = 0; v < full.value().views().size(); ++v) {
    EXPECT_EQ(full.value().views()[v].cells(),
              incremental.value().views()[v].cells())
        << "view " << v << " not bit-identical";
  }
  EXPECT_DOUBLE_EQ(full.value().total(), incremental.value().total());
}

TEST(DeltaViewCounterTest, ResetFromWindowMatchesIncrementalState) {
  const int d = 6;
  const std::vector<AttrSet> views = {AttrSet::FromIndices({0, 1}),
                                      AttrSet::FromIndices({3, 4, 5})};
  Rng rng(7);
  WindowBuffer window(d, WindowMode::kCumulative);
  StatusOr<DeltaViewCounter> incremental = DeltaViewCounter::Create(d, views);
  StatusOr<DeltaViewCounter> cold = DeltaViewCounter::Create(d, views);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(cold.ok());
  for (int epoch = 0; epoch < 3; ++epoch) {
    ASSERT_TRUE(window.Ingest(MakeBatch(&rng, d, 100)).ok());
    incremental.value().ApplyDelta(window.AdvanceEpoch());
  }
  cold.value().ResetFromWindow(window.WindowDataset());
  for (size_t v = 0; v < views.size(); ++v) {
    EXPECT_EQ(incremental.value().counts()[v].cells(),
              cold.value().counts()[v].cells());
  }
}

TEST(DeltaViewCounterTest, RejectsInvalidScopes) {
  EXPECT_FALSE(DeltaViewCounter::Create(4, {}).ok());
  EXPECT_FALSE(DeltaViewCounter::Create(4, {AttrSet()}).ok());
  EXPECT_FALSE(
      DeltaViewCounter::Create(4, {AttrSet::FromIndices({5})}).ok());
}

// ---------------------------------------------------------------------------
// StreamPublisher: epoch loop, budget, rollover

StreamOptions SmallStream(const std::string& name, double total_epsilon = 2.0,
                          double epoch_epsilon = 0.5) {
  StreamOptions options;
  options.name = name;
  options.d = 8;
  options.mode = WindowMode::kSliding;
  options.window_batches = 2;
  options.views = TestViews();
  options.total_epsilon = total_epsilon;
  options.epoch_epsilon = epoch_epsilon;
  return options;
}

TEST(StreamPublisherTest, EpochLoopPublishesThroughStoreAndRegistry) {
  Rng rng(2024);
  serve::SynopsisRegistry registry;
  registry.set_history_depth(4);
  store::StoreOptions store_options;
  store_options.dir = FreshDir("publish");
  store::SynopsisStore store(store_options);
  ASSERT_TRUE(store.Open().ok());

  StatusOr<StreamPublisher> publisher = StreamPublisher::Create(
      SmallStream("clicks"), &store, &registry, &rng);
  ASSERT_TRUE(publisher.ok()) << publisher.status().message();

  Rng data_rng(5);
  uint64_t last_epoch = 0;
  for (int epoch = 1; epoch <= 3; ++epoch) {
    ASSERT_TRUE(publisher.value().Ingest(MakeBatch(&data_rng, 8, 300)).ok());
    StatusOr<EpochReport> report = publisher.value().PublishEpoch();
    ASSERT_TRUE(report.ok()) << report.status().message();
    EXPECT_EQ(report.value().epoch_index, epoch);
    // Registry epoch is the store's durable manifest seq, monotonic.
    EXPECT_EQ(report.value().epoch, store.last_durable_seq());
    EXPECT_GT(report.value().epoch, last_epoch);
    last_epoch = report.value().epoch;
    EXPECT_DOUBLE_EQ(report.value().epsilon_spent, 0.5);
    EXPECT_NEAR(report.value().epsilon_remaining, 2.0 - 0.5 * epoch, 1e-9);

    StatusOr<std::shared_ptr<const serve::HostedSynopsis>> hosted =
        registry.Acquire("clicks");
    ASSERT_TRUE(hosted.ok());
    EXPECT_EQ(hosted.value()->epoch(), report.value().epoch);
  }
  EXPECT_EQ(publisher.value().epochs_published(), 3);

  // Three retained epochs are acquirable as a series, newest first.
  StatusOr<std::vector<std::shared_ptr<const serve::HostedSynopsis>>> series =
      registry.AcquireSeries("clicks", 8);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series.value().size(), 3u);
  EXPECT_GT(series.value()[0]->epoch(), series.value()[1]->epoch());
  EXPECT_GT(series.value()[1]->epoch(), series.value()[2]->epoch());
}

TEST(StreamPublisherTest, BudgetRefusalIsTypedAndLeavesTheWindowUntouched) {
  Rng rng(11);
  StatusOr<StreamPublisher> publisher = StreamPublisher::Create(
      SmallStream("meter", /*total_epsilon=*/1.0, /*epoch_epsilon=*/0.4),
      nullptr, nullptr, &rng);
  ASSERT_TRUE(publisher.ok());

  Rng data_rng(6);
  ASSERT_TRUE(publisher.value().Ingest(MakeBatch(&data_rng, 8, 50)).ok());
  ASSERT_TRUE(publisher.value().PublishEpoch().ok());
  ASSERT_TRUE(publisher.value().Ingest(MakeBatch(&data_rng, 8, 50)).ok());
  ASSERT_TRUE(publisher.value().PublishEpoch().ok());
  EXPECT_TRUE(publisher.value().exhausted());  // 0.2 left < 0.4

  ASSERT_TRUE(publisher.value().Ingest(MakeBatch(&data_rng, 8, 50)).ok());
  const size_t pending_before = publisher.value().window().pending_size();
  const int64_t epochs_before = publisher.value().window().epochs();
  StatusOr<EpochReport> refused = publisher.value().PublishEpoch();
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // The refusal must be side-effect free: pending batch intact, window not
  // advanced, nothing spent.
  EXPECT_EQ(publisher.value().window().pending_size(), pending_before);
  EXPECT_EQ(publisher.value().window().epochs(), epochs_before);
  EXPECT_NEAR(publisher.value().budget().remaining(), 0.2, 1e-9);
}

TEST(StreamPublisherTest, PublisherWorksWithoutStoreOrRegistry) {
  Rng rng(3);
  StatusOr<StreamPublisher> publisher =
      StreamPublisher::Create(SmallStream("bare"), nullptr, nullptr, &rng);
  ASSERT_TRUE(publisher.ok());
  Rng data_rng(4);
  ASSERT_TRUE(publisher.value().Ingest(MakeBatch(&data_rng, 8, 100)).ok());
  StatusOr<EpochReport> report = publisher.value().PublishEpoch();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().epoch, 0u);  // no store, no registry epoch
  EXPECT_EQ(report.value().window_records, 100u);
}

TEST(StreamPublisherTest, CreateValidatesOptions) {
  Rng rng(1);
  StreamOptions options = SmallStream("x");
  options.name = "";
  EXPECT_FALSE(StreamPublisher::Create(options, nullptr, nullptr, &rng).ok());
  options = SmallStream("x");
  options.views.clear();
  EXPECT_FALSE(StreamPublisher::Create(options, nullptr, nullptr, &rng).ok());
  options = SmallStream("x");
  options.epoch_epsilon = 3.0;  // exceeds total
  EXPECT_FALSE(StreamPublisher::Create(options, nullptr, nullptr, &rng).ok());
  options = SmallStream("x");
  EXPECT_FALSE(
      StreamPublisher::Create(options, nullptr, nullptr, nullptr).ok());
}

TEST(StreamPublisherTest, BudgetGaugesAreScrapable) {
  Rng rng(21);
  StatusOr<StreamPublisher> publisher = StreamPublisher::Create(
      SmallStream("scraped", 2.0, 0.5), nullptr, nullptr, &rng);
  ASSERT_TRUE(publisher.ok());
  Rng data_rng(22);
  ASSERT_TRUE(publisher.value().Ingest(MakeBatch(&data_rng, 8, 64)).ok());
  ASSERT_TRUE(publisher.value().PublishEpoch().ok());

  const std::string scrape =
      obs::MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(scrape.find(
                "priview_budget_spent_epsilon{budget=\"stream/scraped\"}"),
            std::string::npos)
      << scrape;
  EXPECT_NE(scrape.find(
                "priview_budget_remaining_epsilon{budget=\"stream/scraped\"}"),
            std::string::npos);
  EXPECT_NE(scrape.find("priview_stream_epochs_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Registry history

TEST(StreamRegistryTest, HistoryDepthBoundsRetainedEpochs) {
  Rng rng(31);
  serve::SynopsisRegistry registry;
  registry.set_history_depth(2);
  StatusOr<StreamPublisher> publisher = StreamPublisher::Create(
      SmallStream("depth", /*total_epsilon=*/10.0), nullptr, &registry, &rng);
  ASSERT_TRUE(publisher.ok());
  Rng data_rng(32);
  for (int epoch = 0; epoch < 4; ++epoch) {
    ASSERT_TRUE(publisher.value().Ingest(MakeBatch(&data_rng, 8, 40)).ok());
    ASSERT_TRUE(publisher.value().PublishEpoch().ok());
  }
  StatusOr<std::vector<std::shared_ptr<const serve::HostedSynopsis>>> series =
      registry.AcquireSeries("depth", 16);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series.value().size(), 2u);  // depth bounds retention
  // The newest retained epoch is the currently served one.
  EXPECT_EQ(series.value()[0]->epoch(),
            registry.Acquire("depth").value()->epoch());
  // last_n below the depth trims the answer further.
  EXPECT_EQ(registry.AcquireSeries("depth", 1).value().size(), 1u);
  EXPECT_FALSE(registry.AcquireSeries("ghost", 2).ok());
}

}  // namespace
}  // namespace priview::stream
