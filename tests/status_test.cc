#include "common/status.h"

#include <gtest/gtest.h>

namespace priview {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DEADLINE_EXCEEDED: late");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.status().ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsStatus) {
  StatusOr<int> v(Status::NotFound("missing"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

}  // namespace
}  // namespace priview
