#include "core/consistency.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dp/mechanisms.h"
#include "table/dataset.h"

namespace priview {
namespace {

TEST(IntersectionClosureTest, PairwiseAndTransitive) {
  const std::vector<AttrSet> views = {AttrSet::FromIndices({0, 1, 2}),
                                      AttrSet::FromIndices({1, 2, 3}),
                                      AttrSet::FromIndices({2, 3, 4})};
  const std::vector<AttrSet> closure = IntersectionClosure(views);
  // Expected shared sets: {} , {2}, {1,2}, {2,3} (and {2} = v0 ∩ v2).
  auto contains = [&](AttrSet a) {
    for (AttrSet c : closure) {
      if (c == a) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(AttrSet()));
  EXPECT_TRUE(contains(AttrSet::FromIndices({2})));
  EXPECT_TRUE(contains(AttrSet::FromIndices({1, 2})));
  EXPECT_TRUE(contains(AttrSet::FromIndices({2, 3})));
  // Sets inside only one view are excluded.
  EXPECT_FALSE(contains(AttrSet::FromIndices({0, 1, 2})));
  // Ascending-size (topological) order.
  for (size_t i = 1; i < closure.size(); ++i) {
    EXPECT_LE(closure[i - 1].size(), closure[i].size());
  }
}

TEST(IntersectionClosureTest, DisjointViewsShareOnlyEmptySet) {
  const std::vector<AttrSet> views = {AttrSet::FromIndices({0, 1}),
                                      AttrSet::FromIndices({2, 3})};
  const std::vector<AttrSet> closure = IntersectionClosure(views);
  ASSERT_EQ(closure.size(), 1u);
  EXPECT_TRUE(closure[0].empty());
}

// The paper's §4.4 worked example, translated to this library's cell order
// (lowest attribute = fastest index bit).
TEST(MutualConsistencyTest, PaperWorkedExample) {
  const AttrSet v1 = AttrSet::FromIndices({1, 2});  // {a1, a2}
  const AttrSet v2 = AttrSet::FromIndices({1, 3});  // {a1, a3}
  std::vector<MarginalTable> views;
  views.emplace_back(v1, std::vector<double>{0.3, 0.3, 0.3, 0.1});
  views.emplace_back(v2, std::vector<double>{0.2, 0.1, 0.3, 0.4});

  MutualConsistencyStep(&views, AttrSet::FromIndices({1}), {0, 1});

  // T_{V1} after: (a1=0,a2=0)=0.275, (1,0)=0.325, (0,1)=0.275, (1,1)=0.125.
  EXPECT_NEAR(views[0].At(0b00), 0.275, 1e-12);
  EXPECT_NEAR(views[0].At(0b01), 0.325, 1e-12);
  EXPECT_NEAR(views[0].At(0b10), 0.275, 1e-12);
  EXPECT_NEAR(views[0].At(0b11), 0.125, 1e-12);
  // T_{V2} after: (a1=0,a3=0)=0.225, (1,0)=0.075, (0,1)=0.325, (1,1)=0.375.
  EXPECT_NEAR(views[1].At(0b00), 0.225, 1e-12);
  EXPECT_NEAR(views[1].At(0b01), 0.075, 1e-12);
  EXPECT_NEAR(views[1].At(0b10), 0.325, 1e-12);
  EXPECT_NEAR(views[1].At(0b11), 0.375, 1e-12);

  // They now agree on a1 (0.55 / 0.45)...
  const MarginalTable p1 = views[0].Project(AttrSet::FromIndices({1}));
  const MarginalTable p2 = views[1].Project(AttrSet::FromIndices({1}));
  EXPECT_NEAR(p1.At(0), 0.55, 1e-12);
  EXPECT_NEAR(p1.At(1), 0.45, 1e-12);
  EXPECT_NEAR(p2.At(0), 0.55, 1e-12);
  EXPECT_NEAR(p2.At(1), 0.45, 1e-12);

  // ...and the marginals of uninvolved attributes are unchanged (Lemma 1):
  // a2 stays (0.6, 0.4), a3 stays (0.3, 0.7).
  const MarginalTable a2 = views[0].Project(AttrSet::FromIndices({2}));
  EXPECT_NEAR(a2.At(0), 0.6, 1e-12);
  EXPECT_NEAR(a2.At(1), 0.4, 1e-12);
  const MarginalTable a3 = views[1].Project(AttrSet::FromIndices({3}));
  EXPECT_NEAR(a3.At(0), 0.3, 1e-12);
  EXPECT_NEAR(a3.At(1), 0.7, 1e-12);
}

TEST(MutualConsistencyTest, EmptySetSynchronizesTotals) {
  std::vector<MarginalTable> views;
  views.emplace_back(AttrSet::FromIndices({0, 1}),
                     std::vector<double>{1.0, 1.0, 1.0, 1.0});  // total 4
  views.emplace_back(AttrSet::FromIndices({2, 3}),
                     std::vector<double>{3.0, 3.0, 3.0, 3.0});  // total 12
  MutualConsistencyStep(&views, AttrSet(), {0, 1});
  EXPECT_NEAR(views[0].Total(), 8.0, 1e-12);
  EXPECT_NEAR(views[1].Total(), 8.0, 1e-12);
  // Corrections spread uniformly.
  EXPECT_NEAR(views[0].At(0), 2.0, 1e-12);
  EXPECT_NEAR(views[1].At(0), 2.0, 1e-12);
}

TEST(MakeConsistentTest, NoisyViewsBecomeFullyConsistent) {
  Rng rng(21);
  Dataset data(8);
  for (int i = 0; i < 3000; ++i) data.Add(rng.NextUint64() & 0xFF);

  const std::vector<AttrSet> scopes = {
      AttrSet::FromIndices({0, 1, 2, 3}), AttrSet::FromIndices({2, 3, 4, 5}),
      AttrSet::FromIndices({4, 5, 6, 7}), AttrSet::FromIndices({0, 3, 5, 6})};
  std::vector<MarginalTable> views;
  for (AttrSet s : scopes) {
    MarginalTable t = data.CountMarginal(s);
    AddLaplaceNoise(&t, 4.0, 1.0, &rng);
    views.push_back(std::move(t));
  }
  EXPECT_GT(MaxInconsistency(views), 0.1);  // noisy views disagree

  MakeConsistent(&views);
  EXPECT_LT(MaxInconsistency(views), 1e-8);
}

TEST(MakeConsistentTest, ConsistencyImprovesAccuracy) {
  // Averaging redundancy should reduce error vs. the raw noisy views —
  // the first purpose of the consistency step claimed in §4.2.
  Rng rng(22);
  Dataset data(6);
  for (int i = 0; i < 5000; ++i) data.Add(rng.NextUint64() & 0x3F);
  // Heavily overlapping views maximize shared information.
  const std::vector<AttrSet> scopes = {
      AttrSet::FromIndices({0, 1, 2, 3}), AttrSet::FromIndices({0, 1, 2, 4}),
      AttrSet::FromIndices({0, 1, 2, 5})};

  double raw_error = 0.0, consistent_error = 0.0;
  const AttrSet probe = AttrSet::FromIndices({0, 1, 2});
  const MarginalTable truth = data.CountMarginal(probe);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<MarginalTable> views;
    for (AttrSet s : scopes) {
      MarginalTable t = data.CountMarginal(s);
      AddLaplaceNoise(&t, 3.0, 1.0, &rng);
      views.push_back(std::move(t));
    }
    raw_error += views[0].Project(probe).L2DistanceTo(truth);
    MakeConsistent(&views);
    consistent_error += views[0].Project(probe).L2DistanceTo(truth);
  }
  EXPECT_LT(consistent_error, raw_error);
}

TEST(MakeConsistentTest, ExactViewsStayExact) {
  // Consistency on already-consistent (noise-free) views is a no-op.
  Rng rng(23);
  Dataset data(6);
  for (int i = 0; i < 1000; ++i) data.Add(rng.NextUint64() & 0x3F);
  const std::vector<AttrSet> scopes = {AttrSet::FromIndices({0, 1, 2}),
                                       AttrSet::FromIndices({1, 2, 3}),
                                       AttrSet::FromIndices({3, 4, 5})};
  std::vector<MarginalTable> views;
  for (AttrSet s : scopes) views.push_back(data.CountMarginal(s));
  const std::vector<MarginalTable> before = views;
  MakeConsistent(&views);
  for (size_t v = 0; v < views.size(); ++v) {
    for (size_t i = 0; i < views[v].size(); ++i) {
      EXPECT_NEAR(views[v].At(i), before[v].At(i), 1e-9);
    }
  }
}

TEST(MakeConsistentTest, PreservesTotalMassAverage) {
  Rng rng(24);
  std::vector<MarginalTable> views;
  views.emplace_back(AttrSet::FromIndices({0, 1}),
                     std::vector<double>{5.0, 3.0, 1.0, 1.0});
  views.emplace_back(AttrSet::FromIndices({1, 2}),
                     std::vector<double>{2.0, 2.0, 5.0, 5.0});
  const double mean_total = (10.0 + 14.0) / 2.0;
  MakeConsistent(&views);
  EXPECT_NEAR(views[0].Total(), mean_total, 1e-9);
  EXPECT_NEAR(views[1].Total(), mean_total, 1e-9);
}

}  // namespace
}  // namespace priview
