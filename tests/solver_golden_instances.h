// Deterministic solver instances shared by the golden-fixture generator and
// solver_golden_test. The fixtures in solver_golden.inc were captured from
// the pre-arena (heap-backed, scalar) solver implementations; any port of
// the solver core — arena layout, SIMD kernels, constraint-view plumbing —
// must reproduce them bit-for-bit. Changing anything here invalidates the
// fixtures, so don't: add a new instance instead.
#ifndef PRIVIEW_TESTS_SOLVER_GOLDEN_INSTANCES_H_
#define PRIVIEW_TESTS_SOLVER_GOLDEN_INSTANCES_H_

#include <vector>

#include "common/rng.h"
#include "opt/constraint.h"
#include "opt/simplex.h"
#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview {
namespace golden {

// Noisy views over a d-attribute universe: each view is `arity` distinct
// attributes with cells drawn uniformly from [-2, 98) — slightly negative
// cells exercise the solvers' target sanitization exactly like post-noise
// marginals do.
inline std::vector<MarginalTable> MakeViews(int d, int num_views, int arity,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<MarginalTable> views;
  views.reserve(num_views);
  for (int v = 0; v < num_views; ++v) {
    std::vector<int> attrs;
    while (static_cast<int>(attrs.size()) < arity) {
      const int a = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(d)));
      bool dup = false;
      for (int existing : attrs) dup = dup || (existing == a);
      if (!dup) attrs.push_back(a);
    }
    MarginalTable table(AttrSet::FromIndices(attrs));
    for (size_t c = 0; c < table.size(); ++c) {
      table.At(c) = 100.0 * rng.UniformDouble() - 2.0;
    }
    views.push_back(std::move(table));
  }
  return views;
}

// The constraint set a target scope inherits from views: one constraint per
// intersecting view (mirrors ConstraintsFor in core/reconstruct without
// depending on core). Deduplication is left to the solver under test.
inline std::vector<MarginalConstraint> MakeConstraints(
    const std::vector<MarginalTable>& views, AttrSet target) {
  std::vector<MarginalConstraint> constraints;
  for (const MarginalTable& view : views) {
    const AttrSet common = view.attrs().Intersect(target);
    if (common.empty()) continue;
    constraints.push_back({common, view.Project(common)});
  }
  return constraints;
}

// --- Instance 1: IPF over an 8-attribute target, d=12 universe. ----------
inline AttrSet IpfTarget() {
  return AttrSet::FromIndices({0, 1, 2, 3, 5, 7, 9, 11});
}
inline std::vector<MarginalTable> IpfViews() {
  return MakeViews(/*d=*/12, /*num_views=*/5, /*arity=*/6, /*seed=*/4301);
}
inline constexpr double kIpfTotal = 1000.0;

// --- Instance 2: max-ent dual over a 6-attribute target, d=10. -----------
inline AttrSet DualTarget() { return AttrSet::FromIndices({0, 2, 3, 4, 6, 9}); }
inline std::vector<MarginalTable> DualViews() {
  return MakeViews(/*d=*/10, /*num_views=*/4, /*arity=*/5, /*seed=*/977);
}
inline constexpr double kDualTotal = 500.0;

// --- Instance 3: least-norm over a 6-attribute target, d=10. -------------
inline AttrSet LeastNormTarget() {
  return AttrSet::FromIndices({1, 2, 4, 5, 7, 8});
}
inline std::vector<MarginalTable> LeastNormViews() {
  return MakeViews(/*d=*/10, /*num_views=*/4, /*arity=*/5, /*seed=*/20331);
}
inline constexpr double kLeastNormTotal = 750.0;

// --- Instance 4: a direct LP (two-phase simplex, all three relations). ----
inline LpProblem SimplexProblem() {
  Rng rng(615);
  LpProblem lp;
  lp.num_vars = 18;
  lp.objective.resize(lp.num_vars);
  for (double& c : lp.objective) c = 2.0 * rng.UniformDouble() - 0.5;
  for (int r = 0; r < 14; ++r) {
    std::vector<double> coeffs(lp.num_vars);
    for (double& c : coeffs) c = 2.0 * rng.UniformDouble() - 1.0;
    const double rhs = 10.0 * rng.UniformDouble() - 2.0;
    switch (r % 3) {
      case 0:
        lp.AddLe(std::move(coeffs), rhs);
        break;
      case 1:
        lp.AddGe(std::move(coeffs), rhs);
        break;
      default:
        lp.AddEq(std::move(coeffs), rhs);
        break;
    }
  }
  // Keep the feasible region bounded so the instance is kOptimal.
  for (int j = 0; j < lp.num_vars; ++j) {
    std::vector<double> unit(lp.num_vars, 0.0);
    unit[j] = 1.0;
    lp.AddLe(std::move(unit), 25.0);
  }
  return lp;
}

// --- Instance 5: full reconstruction (dedup + chain) for all 3 methods. ---
// Target is deliberately NOT covered by any view, so every method solves.
inline AttrSet ReconstructTarget() {
  return AttrSet::FromIndices({0, 1, 3, 4, 6, 8});
}
inline std::vector<MarginalTable> ReconstructViews() {
  return MakeViews(/*d=*/10, /*num_views=*/6, /*arity=*/4, /*seed=*/88197);
}
inline constexpr double kReconstructTotal = 640.0;

}  // namespace golden
}  // namespace priview

#endif  // PRIVIEW_TESTS_SOLVER_GOLDEN_INSTANCES_H_
