#include "core/nonneg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace priview {
namespace {

MarginalTable Table3(std::vector<double> cells) {
  return MarginalTable(AttrSet::FromIndices({0, 1, 2}), std::move(cells));
}

TEST(NonNegTest, NoneLeavesTableUntouched) {
  MarginalTable t = Table3({-5, 1, 2, 3, 4, 5, 6, 7});
  MarginalTable original = t;
  ApplyNonNegativity(&t, NonNegMethod::kNone);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(t.At(i), original.At(i));
  }
}

TEST(NonNegTest, SimpleClampsNegatives) {
  MarginalTable t = Table3({-5, 1, -2, 3, 4, 5, 6, 7});
  ApplyNonNegativity(&t, NonNegMethod::kSimple);
  EXPECT_DOUBLE_EQ(t.At(0), 0.0);
  EXPECT_DOUBLE_EQ(t.At(2), 0.0);
  EXPECT_DOUBLE_EQ(t.At(1), 1.0);
  EXPECT_GE(t.MinCell(), 0.0);
}

TEST(NonNegTest, SimpleIntroducesPositiveBias) {
  MarginalTable t = Table3({-5, 1, -2, 3, 4, 5, 6, 7});
  const double before = t.Total();
  ApplyNonNegativity(&t, NonNegMethod::kSimple);
  EXPECT_GT(t.Total(), before);  // the bias the paper warns about
}

TEST(NonNegTest, GlobalPreservesTotalWhenFeasible) {
  MarginalTable t = Table3({-4, 10, 10, 10, 10, 10, 10, 10});
  const double before = t.Total();
  ApplyNonNegativity(&t, NonNegMethod::kGlobal);
  EXPECT_NEAR(t.Total(), before, 1e-9);
  EXPECT_GE(t.MinCell(), 0.0);
}

TEST(NonNegTest, RipplePreservesTotalExactly) {
  Rng rng(5);
  MarginalTable t(AttrSet::Full(8));
  for (double& c : t.cells()) c = rng.Laplace(20.0) + 5.0;
  const double before = t.Total();
  RippleOptions options;
  options.theta = 1.0;
  const int corrections = RippleNonNegativity(&t, options);
  EXPECT_GT(corrections, 0);
  EXPECT_NEAR(t.Total(), before, 1e-6);
  EXPECT_GE(t.MinCell(), -options.theta - 1e-9);
}

TEST(NonNegTest, RippleFixesIsolatedNegative) {
  // One deep negative surrounded by large positives: a single correction.
  MarginalTable t = Table3({-9, 10, 10, 10, 10, 10, 10, 10});
  RippleOptions options;
  options.theta = 0.5;
  const int corrections = RippleNonNegativity(&t, options);
  EXPECT_EQ(corrections, 1);
  EXPECT_DOUBLE_EQ(t.At(0), 0.0);
  // Neighbors of cell 0 (cells 1, 2, 4) each absorbed 9/3 = 3.
  EXPECT_DOUBLE_EQ(t.At(1), 7.0);
  EXPECT_DOUBLE_EQ(t.At(2), 7.0);
  EXPECT_DOUBLE_EQ(t.At(4), 7.0);
  EXPECT_DOUBLE_EQ(t.At(3), 10.0);
}

TEST(NonNegTest, RippleCascades) {
  // Neighbor driven below -theta by the first correction gets fixed too.
  MarginalTable t(AttrSet::FromIndices({0, 1}),
                  std::vector<double>{-10.0, 0.5, 0.5, 20.0});
  RippleOptions options;
  options.theta = 1.0;
  RippleNonNegativity(&t, options);
  EXPECT_GE(t.MinCell(), -options.theta - 1e-9);
  EXPECT_NEAR(t.Total(), 11.0, 1e-9);
}

TEST(NonNegTest, RippleIgnoresShallowNegatives) {
  MarginalTable t = Table3({-0.5, 1, 2, 3, 4, 5, 6, 7});
  RippleOptions options;
  options.theta = 1.0;
  EXPECT_EQ(RippleNonNegativity(&t, options), 0);
  EXPECT_DOUBLE_EQ(t.At(0), -0.5);
}

TEST(NonNegTest, RippleHandlesAllNegativeTable) {
  MarginalTable t = Table3({-10, -10, -10, -10, -10, -10, -10, -10});
  RippleOptions options;
  options.theta = 1.0;
  RippleNonNegativity(&t, options);
  // Total is hugely negative, so the fallback (or the ripple fixpoint)
  // cannot make everything nonnegative AND preserve total; we only require
  // termination and no NaNs.
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_FALSE(std::isnan(t.At(i)));
  }
}

TEST(NonNegTest, MethodNames) {
  EXPECT_STREQ(NonNegMethodName(NonNegMethod::kNone), "None");
  EXPECT_STREQ(NonNegMethodName(NonNegMethod::kSimple), "Simple");
  EXPECT_STREQ(NonNegMethodName(NonNegMethod::kGlobal), "Global");
  EXPECT_STREQ(NonNegMethodName(NonNegMethod::kRipple), "Ripple");
}

}  // namespace
}  // namespace priview
