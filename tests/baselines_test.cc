#include <cmath>

#include <gtest/gtest.h>

#include "baselines/direct.h"
#include "baselines/flat.h"
#include "baselines/fourier.h"
#include "baselines/learning.h"
#include "baselines/uniform.h"
#include "common/rng.h"
#include "core/error_model.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

namespace priview {
namespace {

TEST(UniformTest, ReturnsUniformWithTotalN) {
  Rng rng(1);
  Dataset data = MakeMsnbcLike(&rng, 1000);
  UniformMechanism uniform;
  uniform.Fit(data, 1.0, 2, &rng);
  const MarginalTable t = uniform.Query(AttrSet::FromIndices({0, 3}));
  for (size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t.At(i), 250.0);
}

TEST(ClampAndRedistributeTest, RemovesNegativesKeepsTotalRoughly) {
  MarginalTable t(AttrSet::FromIndices({0, 1}),
                  std::vector<double>{-4.0, 10.0, 10.0, 4.0});
  const double before = t.Total();
  ClampAndRedistribute(&t);
  EXPECT_NEAR(t.Total(), before, 1e-9);
  EXPECT_DOUBLE_EQ(t.At(0), -1.0);  // single-pass redistribution
  EXPECT_DOUBLE_EQ(t.At(1), 9.0);
}

TEST(DirectTest, QueriesAreCachedAcrossCalls) {
  Rng rng(2);
  Dataset data = MakeMsnbcLike(&rng, 10000);
  DirectMechanism direct;
  direct.Fit(data, 1.0, 3, &rng);
  const AttrSet q = AttrSet::FromIndices({0, 2, 4});
  const MarginalTable a = direct.Query(q);
  const MarginalTable b = direct.Query(q);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a.At(i), b.At(i));
}

TEST(DirectTest, ErrorMatchesAnalyticEse) {
  // Average squared L2 over many runs should approach DirectEse (before
  // the clamp optimization, which only lowers it).
  Rng rng(3);
  Dataset data = MakeMsnbcLike(&rng, 500000);
  const int k = 2;
  const double predicted = DirectEse(9, k, 1.0);
  const AttrSet q = AttrSet::FromIndices({1, 5});
  const MarginalTable truth = data.CountMarginal(q);
  double total_sq = 0.0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    DirectMechanism direct;
    direct.Fit(data, 1.0, k, &rng);
    const double dist = direct.Query(q).L2DistanceTo(truth);
    total_sq += dist * dist;
  }
  const double measured = total_sq / trials;
  EXPECT_LT(measured, 1.3 * predicted);
  EXPECT_GT(measured, 0.4 * predicted);
}

TEST(FlatTest, UnbiasedAndAccurateForSmallD) {
  Rng rng(4);
  Dataset data = MakeMsnbcLike(&rng, 500000);
  FlatMechanism flat;
  flat.Fit(data, 1.0, 2, &rng);
  const AttrSet q = AttrSet::FromIndices({0, 8});
  const MarginalTable truth = data.CountMarginal(q);
  const MarginalTable estimate = flat.Query(q);
  // ESE = 2^d V_u = 1024; L2 ~ 32 counts on N = 500k.
  EXPECT_LT(estimate.L2DistanceTo(truth), 150.0);
}

TEST(FourierTest, SharedCoefficientsMakeOverlappingQueriesConsistent) {
  Rng rng(5);
  Dataset data = MakeMsnbcLike(&rng, 20000);
  FourierMechanism fourier(/*clamp=*/false);
  fourier.Fit(data, 1.0, 3, &rng);
  // Marginals over {0,1,2} and {1,2,5} must agree on {1,2} because they
  // are built from the same noisy coefficients — Barak et al.'s
  // consistency property.
  const MarginalTable a = fourier.Query(AttrSet::FromIndices({0, 1, 2}));
  const MarginalTable b = fourier.Query(AttrSet::FromIndices({1, 2, 5}));
  const AttrSet common = AttrSet::FromIndices({1, 2});
  const MarginalTable pa = a.Project(common);
  const MarginalTable pb = b.Project(common);
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_NEAR(pa.At(i), pb.At(i), 1e-6);
  }
}

TEST(FourierTest, NoiselessCoefficientWouldBeExact) {
  // With huge epsilon the Fourier method reproduces the true marginal.
  Rng rng(6);
  Dataset data = MakeMsnbcLike(&rng, 5000);
  FourierMechanism fourier(/*clamp=*/false);
  fourier.Fit(data, 1e9, 2, &rng);
  const AttrSet q = AttrSet::FromIndices({3, 7});
  const MarginalTable truth = data.CountMarginal(q);
  const MarginalTable estimate = fourier.Query(q);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(estimate.At(i), truth.At(i), 0.1);
  }
}

TEST(FourierLpTest, ProducesNonNegativeConsistentTable) {
  Rng rng(7);
  Dataset data = MakeMsnbcLike(&rng, 20000);
  FourierLpMechanism lp;
  lp.Fit(data, 1.0, 2, &rng);
  const MarginalTable t = lp.Query(AttrSet::FromIndices({0, 4}));
  EXPECT_GE(t.MinCell(), -1e-6);
  // Different queries agree on shared sub-marginals (one fitted table).
  const MarginalTable a = lp.Query(AttrSet::FromIndices({0, 1}));
  const MarginalTable b = lp.Query(AttrSet::FromIndices({1, 2}));
  EXPECT_NEAR(a.Project(AttrSet::FromIndices({1})).At(0),
              b.Project(AttrSet::FromIndices({1})).At(0), 1e-6);
}

TEST(LearningTest, DegreeGrowsAsGammaShrinks) {
  Rng rng(8);
  Dataset data = MakeMsnbcLike(&rng, 1000);
  LearningMechanism l2(0.5), l8(1.0 / 8.0);
  l2.Fit(data, 1.0, 4, &rng);
  l8.Fit(data, 1.0, 4, &rng);
  EXPECT_LE(l2.degree(), l8.degree());
  EXPECT_LT(l8.degree(), 4);  // always truncated
}

TEST(LearningTest, NoiseFreeVariantStillHasApproximationError) {
  Rng rng(9);
  Dataset data = MakeMsnbcLike(&rng, 50000);
  LearningMechanism learning(0.5, /*add_noise=*/false);
  learning.Fit(data, 1.0, 4, &rng);
  const AttrSet q = AttrSet::FromIndices({0, 1, 2, 3});
  const MarginalTable truth = data.CountMarginal(q);
  const MarginalTable estimate = learning.Query(q);
  // Truncation error is substantial on correlated data...
  EXPECT_GT(estimate.L2DistanceTo(truth), 1.0);
  // ...but the total count (degree-0 coefficient) is preserved.
  EXPECT_NEAR(estimate.Total(), truth.Total(), 1e-6);
}

TEST(LearningTest, NamesEncodeGamma) {
  EXPECT_EQ(LearningMechanism(0.5).Name(), "Learning(1/2)");
  EXPECT_EQ(LearningMechanism(0.25, false).Name(), "Learning(1/4)*");
}

}  // namespace
}  // namespace priview
