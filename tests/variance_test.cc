#include "core/variance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/error_model.h"
#include "core/synopsis.h"
#include "table/dataset.h"

namespace priview {
namespace {

TEST(VarianceTest, SingleCoveringViewMatchesClosedForm) {
  // One 8-attr view out of w = 6, covered pair: ESE = 2^8 w^2 V_u.
  const std::vector<AttrSet> scopes = {
      AttrSet::FromIndices({0, 1, 2, 3, 4, 5, 6, 7}),
      AttrSet::FromIndices({8, 9, 10, 11, 12, 13, 14, 15}),
      AttrSet::FromIndices({0, 1, 8, 9, 16, 17, 18, 19}),
      AttrSet::FromIndices({2, 3, 10, 11, 16, 20, 21, 22}),
      AttrSet::FromIndices({4, 5, 12, 13, 17, 20, 23, 24}),
      AttrSet::FromIndices({6, 7, 14, 15, 18, 21, 23, 25}),
  };
  const AttrSet pair = AttrSet::FromIndices({16, 17});
  int covering = 0;
  for (AttrSet s : scopes) {
    if (pair.IsSubsetOf(s)) ++covering;
  }
  ASSERT_EQ(covering, 1);
  const double predicted = PredictQueryEse(scopes, pair, 1.0);
  EXPECT_NEAR(predicted, PriViewSingleViewEse(8, 6, 1.0), 1e-9);
}

TEST(VarianceTest, AveragingReducesEseLinearlyInCoverage) {
  // A pair covered by c identical-size views has ESE / c.
  const std::vector<AttrSet> scopes = {
      AttrSet::FromIndices({0, 1, 2, 3}), AttrSet::FromIndices({0, 1, 4, 5}),
      AttrSet::FromIndices({0, 1, 6, 7}), AttrSet::FromIndices({2, 4, 6, 7})};
  const AttrSet pair = AttrSet::FromIndices({0, 1});  // covered 3x
  const double predicted = PredictQueryEse(scopes, pair, 1.0);
  const double single = PriViewSingleViewEse(4, 4, 1.0);
  EXPECT_NEAR(predicted, single / 3.0, 1e-9);
}

TEST(VarianceTest, EpsilonScaling) {
  const std::vector<AttrSet> scopes = {AttrSet::FromIndices({0, 1, 2}),
                                       AttrSet::FromIndices({1, 2, 3})};
  const AttrSet target = AttrSet::FromIndices({0, 1});
  EXPECT_NEAR(PredictQueryEse(scopes, target, 0.5) /
                  PredictQueryEse(scopes, target, 1.0),
              4.0, 1e-9);
}

TEST(VarianceTest, UncoveredUsesAttenuatedSubScope) {
  const std::vector<AttrSet> scopes = {AttrSet::FromIndices({0, 1, 2, 3}),
                                       AttrSet::FromIndices({4, 5, 6, 7})};
  const AttrSet target = AttrSet::FromIndices({0, 1, 4});  // spans both
  const double predicted = PredictQueryEse(scopes, target, 1.0);
  // Best maximal intersection: {0,1} (size 2), attenuated by 2^{3-2}.
  const double sub = PriViewSingleViewEse(4, 2, 1.0);
  EXPECT_NEAR(predicted, sub / 2.0, 1e-9);
}

TEST(VarianceTest, DisjointTargetPredictsZeroNoise) {
  const std::vector<AttrSet> scopes = {AttrSet::FromIndices({0, 1})};
  EXPECT_DOUBLE_EQ(
      PredictQueryEse(scopes, AttrSet::FromIndices({4, 5}), 1.0), 0.0);
}

TEST(VarianceTest, PredictionTracksMeasuredNoiseOnUniformData) {
  // Pure-noise setting (uniform data, covered queries): the measured mean
  // squared error should sit within a small factor of the prediction.
  Rng rng(9);
  Dataset data(8);
  for (int i = 0; i < 20000; ++i) data.Add(rng.NextUint64() & 0xFF);
  const std::vector<AttrSet> scopes = {AttrSet::FromIndices({0, 1, 2, 3}),
                                       AttrSet::FromIndices({4, 5, 6, 7})};
  const AttrSet pair = AttrSet::FromIndices({0, 2});
  const MarginalTable truth = data.CountMarginal(pair);
  const double predicted = PredictQueryEse(scopes, pair, 1.0);

  PriViewOptions options;
  options.epsilon = 1.0;
  // Keep post-processing off so the measurement isolates raw noise.
  options.run_consistency = false;
  options.nonneg = NonNegMethod::kNone;
  double total_sq = 0.0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    const PriViewSynopsis synopsis =
        PriViewSynopsis::Build(data, scopes, options, &rng);
    const double dist = synopsis.Query(pair).L2DistanceTo(truth);
    total_sq += dist * dist;
  }
  const double measured = total_sq / trials;
  EXPECT_GT(measured, 0.5 * predicted);
  EXPECT_LT(measured, 2.0 * predicted);
}

TEST(VarianceTest, NormalizedErrorMatchesEq5Shape) {
  // For a pair under a C2(8, w)-style design the normalized prediction
  // should be within a small factor of NoiseErrorEq5's coverage-averaged
  // value (Eq. 5 uses the average multiplicity; this uses the actual one).
  Rng rng(10);
  std::vector<AttrSet> scopes;
  for (int b = 0; b < 4; ++b) {
    std::vector<int> attrs;
    for (int i = 0; i < 8; ++i) attrs.push_back((8 * b + i) % 32);
    scopes.push_back(AttrSet::FromIndices(attrs));
  }
  const double n = 1e6;
  const double normalized = PredictNormalizedError(
      scopes, AttrSet::FromIndices({0, 1}), 1.0, n);
  EXPECT_GT(normalized, 0.0);
  EXPECT_LT(normalized, 1.0);
}

}  // namespace
}  // namespace priview
