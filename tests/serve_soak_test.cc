// Soak suite (label: serve-soak): hundreds-to-a-thousand live connections
// against one server on one event loop — a mixed fleet of healthy
// clients, slowloris peers and half-open peers, then a SIGTERM drain with
// the fleet still connected. Scaled for CI (the bench drives the 5k+
// version; see bench/bench_serve.cc) but the invariants are the real
// ones: adversaries are evicted by cause while healthy requests keep
// completing, and a drain flips readiness first, finishes in-flight work,
// then evicts every straggler at the deadline with connection accounting
// intact.
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/server_metrics.h"
#include "serve/wire_protocol.h"
#include "table/attr_set.h"

namespace priview {
namespace {

using serve::EvictionCause;
using serve::ServerMetrics;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

bool WaitFor(const std::function<bool()>& pred, milliseconds timeout) {
  const auto deadline = steady_clock::now() + timeout;
  while (steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(10));
  }
  return pred();
}

int RawConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

class ServeSoakTest : public ::testing::Test {
 protected:
  void StartServer(serve::ServerOptions options) {
    Rng rng(1406);
    Dataset data = MakeMsnbcLike(&rng, 600);
    PriViewOptions build;
    build.add_noise = false;
    PriViewSynopsis synopsis = PriViewSynopsis::Build(
        data, {AttrSet::FromIndices({0, 1, 2})}, build, &rng);

    static int run = 0;
    options.socket_path =
        ::testing::TempDir() + "/soak_" + std::to_string(run++) + ".sock";
    server_ = std::make_unique<serve::PriViewServer>(options);
    ASSERT_TRUE(server_->registry().Install("soak", std::move(synopsis)).ok());
    ASSERT_TRUE(server_->Start().ok());
    socket_path_ = options.socket_path;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    for (int fd : raw_fds_) {
      if (fd >= 0) ::close(fd);
    }
  }

  StatusOr<serve::PriViewClient> NewClient(int timeout_ms = 5000) {
    serve::ClientOptions options;
    options.socket_path = socket_path_;
    options.connect_timeout_ms = timeout_ms;
    options.io_timeout_ms = timeout_ms;
    return serve::PriViewClient::Connect(options);
  }

  ServerMetrics::Snapshot Counters() {
    return server_->metrics().TakeSnapshot();
  }

  std::unique_ptr<serve::PriViewServer> server_;
  std::string socket_path_;
  std::vector<int> raw_fds_;  // closed at teardown
};

TEST_F(ServeSoakTest, MixedFleetSoakEvictsAdversariesAndServesHealthy) {
  // 300 slowloris peers (a torn header then silence), 300 half-open peers
  // (a connect and nothing else), and 4 healthy client threads querying
  // throughout. The loop must evict all 600 adversaries by the right
  // cause while the healthy fleet completes every request.
  constexpr int kSlowloris = 300;
  constexpr int kHalfOpen = 300;
  constexpr int kClientThreads = 4;
  constexpr int kRequestsPerThread = 12;

  serve::ServerOptions options;
  options.io_timeout_ms = 400;
  options.supervisor.idle_timeout_ms = 600;
  options.supervisor.handler_threads = 4;
  StartServer(options);

  for (int i = 0; i < kSlowloris; ++i) {
    const int fd = RawConnect(socket_path_);
    ASSERT_GE(fd, 0) << "slowloris connect " << i;
    const uint8_t partial[2] = {7, 7};  // a frame that will never finish
    (void)::write(fd, partial, sizeof(partial));
    raw_fds_.push_back(fd);
  }
  for (int i = 0; i < kHalfOpen; ++i) {
    const int fd = RawConnect(socket_path_);
    ASSERT_GE(fd, 0) << "half-open connect " << i;
    raw_fds_.push_back(fd);
  }

  std::atomic<int> served{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      StatusOr<serve::PriViewClient> client = NewClient(10000);
      if (!client.ok()) {
        failed.fetch_add(kRequestsPerThread);
        return;
      }
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const StatusOr<serve::ClientTable> answer = client.value().Marginal(
            "soak", AttrSet::FromIndices({0, 1 + (t + i) % 2}));
        (answer.ok() ? served : failed).fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failed.load(), 0)
      << "healthy requests failed while adversaries were being evicted";
  EXPECT_EQ(served.load(), kClientThreads * kRequestsPerThread);

  // Every adversary dies for the right reason; nothing healthy is hit.
  EXPECT_TRUE(WaitFor(
      [&] {
        const ServerMetrics::Snapshot s = Counters();
        return s.evictions[int(EvictionCause::kFrameStall)] >= kSlowloris &&
               s.evictions[int(EvictionCause::kIdle)] >= kHalfOpen;
      },
      milliseconds(20000)))
      << "adversaries outlived their deadlines: " << Counters().ToString();
  EXPECT_TRUE(WaitFor(
      [&] { return server_->supervisor()->open_connections() == 0; },
      milliseconds(5000)));
  const ServerMetrics::Snapshot s = Counters();
  EXPECT_EQ(s.evictions[int(EvictionCause::kEgressOverflow)], 0u);
  EXPECT_EQ(s.evictions[int(EvictionCause::kShutdown)], 0u);
}

TEST_F(ServeSoakTest, SigtermDrainUnderLoadHonorsTheContract) {
  // The drain contract, exercised by a real SIGTERM with ~1k live
  // connections: (1) readiness flips to not-ready while existing
  // connections still answer, (2) a request in flight at the signal
  // completes, (3) new connects are refused once the listener closes,
  // (4) every straggler is evicted as kShutdown by the drain deadline and
  // the books balance.
  constexpr int kStragglers = 1000;
  constexpr int kJamConns = 2;
  constexpr int kJamDepth = 10;  // under the pipeline cap of 16

  serve::ServerOptions options;
  options.drain_grace = std::chrono::milliseconds(2000);
  options.supervisor.handler_threads = 4;
  // Stragglers are idle-but-healthy: nothing may evict them but the drain.
  options.supervisor.idle_timeout_ms = 0;
  options.supervisor.max_connections = kStragglers + 64;
  StartServer(options);
  // A second, wider release for the egress jam below: d = 45 binary
  // attrs, so a 13-attr marginal answers 8192 cells (~64 KiB on the
  // wire) — big enough that pipelined unread responses outrun the
  // kernel socket buffers. The d=9 "soak" release caps out at 4 KiB.
  {
    Rng rng(2209);
    Dataset wide = MakeAolLike(&rng, 800);
    PriViewOptions build;
    build.add_noise = false;
    PriViewSynopsis jam_synopsis = PriViewSynopsis::Build(
        wide, {AttrSet::FromIndices({0, 1, 2, 3, 4, 5, 6, 7})}, build, &rng);
    ASSERT_TRUE(
        server_->registry().Install("jam", std::move(jam_synopsis)).ok());
  }
  ASSERT_TRUE(serve::InstallSigtermDrain(server_.get()).ok());

  for (int i = 0; i < kStragglers; ++i) {
    const int fd = RawConnect(socket_path_);
    ASSERT_GE(fd, 0) << "straggler connect " << i;
    raw_fds_.push_back(fd);
  }
  ASSERT_TRUE(WaitFor(
      [&] {
        return server_->supervisor()->open_connections() >= kStragglers;
      },
      milliseconds(10000)))
      << "flood never fully admitted";

  // A probe client connected before the signal, sampled continuously by a
  // dedicated thread: the flip to not-ready must be observable on this
  // live connection during the drain window.
  StatusOr<serve::PriViewClient> probe = NewClient(10000);
  ASSERT_TRUE(probe.ok());
  StatusOr<serve::HealthReport> before = probe.value().Health();
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before.value().ready);
  std::atomic<bool> saw_ready{false};
  std::atomic<bool> saw_flip{false};
  std::atomic<bool> stop_probe{false};
  std::thread prober([&] {
    // Tight loop — the health path bypasses the broker, so this samples
    // the readiness gate at sub-millisecond cadence through the drain.
    while (!stop_probe.load()) {
      StatusOr<serve::HealthReport> h = probe.value().Health();
      if (!h.ok()) return;  // connection closed by shutdown: stop sampling
      if (h.value().ready) saw_ready.store(true);
      if (!h.value().ready && h.value().draining) {
        saw_flip.store(true);
        return;
      }
    }
  });

  // Hold the drain window open deterministically: jam connections request
  // large *distinct* marginals (13 of the 17 attrs, rotating, so
  // coalescing cannot collapse them — 8192 cells ≈ 64KiB per response)
  // and never read a byte. Their responses outrun the kernel socket
  // buffers, so supervisor egress stays non-zero and the quiesce phase
  // must wait out the full drain grace — the window the prober samples.
  for (int i = 0; i < kJamConns; ++i) {
    std::vector<uint8_t> burst;
    for (int j = 0; j < kJamDepth; ++j) {
      serve::WireRequest marginal;
      marginal.type = serve::MessageType::kMarginal;
      marginal.synopsis = "jam";
      const int rot = (i * kJamDepth + j) % 17;
      uint64_t mask = 0;
      for (int b = 0; b < 13; ++b) mask |= uint64_t{1} << ((rot + b) % 17);
      marginal.target_mask = mask;
      marginal.deadline_ms = 30'000;  // outlive the queue, not the drain
      ASSERT_TRUE(
          serve::AppendFrame(&burst, serve::EncodeRequest(marginal)).ok());
    }
    const int fd = RawConnect(socket_path_);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::write(fd, burst.data(), burst.size()), ssize_t(burst.size()));
    raw_fds_.push_back(fd);
  }
  // At least one oversized response must be computed and jammed before
  // the signal, or the drain could quiesce before the jam takes hold.
  ASSERT_TRUE(WaitFor(
      [&] { return server_->supervisor()->total_egress_bytes() > 0; },
      milliseconds(30000)))
      << "jam responses never landed in the egress buffers";

  // A request launched just before the signal lands mid-drain.
  std::atomic<bool> inflight_ok{false};
  std::thread inflight([&] {
    StatusOr<serve::PriViewClient> client = NewClient(10000);
    if (!client.ok()) return;
    inflight_ok.store(
        client.value().Marginal("soak", AttrSet::FromIndices({0, 1})).ok());
  });
  std::this_thread::sleep_for(milliseconds(50));

  ASSERT_EQ(std::raise(SIGTERM), 0);

  // (3) The listener closes: new connects are refused.
  EXPECT_TRUE(WaitFor(
      [&] {
        const int fd = RawConnect(socket_path_);
        if (fd < 0) return true;
        ::close(fd);
        return false;
      },
      milliseconds(10000)))
      << "listener stayed open after drain";

  // (2) The in-flight request completed despite the drain.
  inflight.join();
  EXPECT_TRUE(inflight_ok.load()) << "in-flight request lost to the drain";

  // (4) Stragglers are evicted as shutdown by the drain deadline; opened
  // and closed counts balance with nothing live.
  EXPECT_TRUE(WaitFor(
      [&] {
        return Counters().evictions[int(EvictionCause::kShutdown)] >=
                   uint64_t(kStragglers) &&
               server_->supervisor()->open_connections() == 0;
      },
      milliseconds(15000)))
      << "stragglers survived the drain deadline: " << Counters().ToString();

  // (1) The readiness flip was observed on a still-live connection. The
  // prober gets the whole drain window to sample — the listener-refused
  // check above passes milliseconds after the signal (listeners close
  // first), long before the quiesce phase ends, so stopping the prober
  // there would shrink its window from seconds to a sliver and flake
  // under sanitizer load. It self-terminates on the flip or when the
  // shutdown (asserted just above) evicts its connection.
  stop_probe.store(true);
  prober.join();
  EXPECT_TRUE(saw_ready.load());
  EXPECT_TRUE(saw_flip.load())
      << "readiness never flipped on a live connection during drain";
  const ServerMetrics::Snapshot s = Counters();
  EXPECT_EQ(s.connections_opened, s.connections_closed)
      << "connection books unbalanced after drain";
  ASSERT_TRUE(serve::InstallSigtermDrain(nullptr).ok());
}

}  // namespace
}  // namespace priview
