#include "opt/constraint.h"

#include <gtest/gtest.h>

namespace priview {
namespace {

MarginalConstraint Make(std::vector<int> attrs, std::vector<double> cells) {
  const AttrSet scope = AttrSet::FromIndices(attrs);
  return {scope, MarginalTable(scope, std::move(cells))};
}

TEST(ConstraintTest, MergesDuplicateScopesByAveraging) {
  std::vector<MarginalConstraint> in;
  in.push_back(Make({0}, {2.0, 4.0}));
  in.push_back(Make({0}, {4.0, 8.0}));
  const auto out = DeduplicateConstraints(std::move(in));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].target.At(0), 3.0);
  EXPECT_DOUBLE_EQ(out[0].target.At(1), 6.0);
}

TEST(ConstraintTest, DropsDominatedScopes) {
  std::vector<MarginalConstraint> in;
  in.push_back(Make({0}, {5.0, 5.0}));
  in.push_back(Make({0, 1}, {2.0, 3.0, 3.0, 2.0}));
  const auto out = DeduplicateConstraints(std::move(in));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].scope, AttrSet::FromIndices({0, 1}));
}

TEST(ConstraintTest, KeepsIncomparableScopes) {
  std::vector<MarginalConstraint> in;
  in.push_back(Make({0, 1}, {1.0, 1.0, 1.0, 1.0}));
  in.push_back(Make({1, 2}, {1.0, 1.0, 1.0, 1.0}));
  const auto out = DeduplicateConstraints(std::move(in));
  EXPECT_EQ(out.size(), 2u);
}

TEST(ConstraintTest, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(DeduplicateConstraints({}).empty());
}

TEST(ConstraintTest, ThreeWayMergeAndDomination) {
  std::vector<MarginalConstraint> in;
  in.push_back(Make({2}, {1.0, 2.0}));
  in.push_back(Make({2}, {3.0, 4.0}));
  in.push_back(Make({2}, {5.0, 6.0}));
  in.push_back(Make({0, 2}, {1.0, 1.0, 1.0, 1.0}));
  const auto out = DeduplicateConstraints(std::move(in));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].scope, AttrSet::FromIndices({0, 2}));
}

}  // namespace
}  // namespace priview
