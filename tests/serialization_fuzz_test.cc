// Corruption mini-fuzzer for the v2 synopsis format. Serializes a small
// synopsis, then systematically mutates every byte (three substitution
// patterns) and truncates at every offset, asserting the reader's
// integrity contract: strict mode detects every substitution (FNV-1a over
// the exact bytes — a same-length single-byte change always flips a
// digest), and recovery mode never crashes — it either recovers with a
// report or fails with a Status. Run under the asan-ubsan preset this is
// the memory-safety proof for the parse paths.
#include <cmath>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/serialization.h"
#include "core/synopsis.h"

namespace priview {
namespace {

PriViewSynopsis MakeTinySynopsis() {
  // Exact views (no noise) so a clean reload is byte-for-byte comparable.
  PriViewOptions options;
  options.add_noise = false;
  MarginalTable v1(AttrSet::FromIndices({0, 1}));
  v1.At(0) = 5.0;
  v1.At(1) = 2.5;
  v1.At(2) = 1.25;
  v1.At(3) = 1.25;
  MarginalTable v2(AttrSet::FromIndices({1, 2}));
  v2.At(0) = 4.0;
  v2.At(1) = 3.0;
  v2.At(2) = 2.0;
  v2.At(3) = 1.0;
  MarginalTable v3(AttrSet::FromIndices({0, 3}));
  v3.At(0) = 6.0;
  v3.At(1) = 1.0;
  v3.At(2) = 2.0;
  v3.At(3) = 1.0;
  return PriViewSynopsis::FromViews(4, {v1, v2, v3}, options);
}

std::string Serialize(const PriViewSynopsis& synopsis) {
  std::ostringstream out;
  const Status status = WriteSynopsis(synopsis, &out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

bool SameSemantics(const PriViewSynopsis& a, const PriViewSynopsis& b) {
  if (a.d() != b.d() || a.views().size() != b.views().size()) return false;
  for (size_t i = 0; i < a.views().size(); ++i) {
    if (!(a.views()[i].attrs() == b.views()[i].attrs())) return false;
    if (a.views()[i].cells() != b.views()[i].cells()) return false;
  }
  return true;
}

bool AllFinite(const PriViewSynopsis& synopsis) {
  for (const MarginalTable& view : synopsis.views()) {
    for (double cell : view.cells()) {
      if (!std::isfinite(cell)) return false;
    }
  }
  return true;
}

class SerializationFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_ = MakeTinySynopsis();
    bytes_ = Serialize(original_);
    ASSERT_FALSE(bytes_.empty());
  }

  PriViewSynopsis original_ = MakeTinySynopsis();
  std::string bytes_;
};

TEST_F(SerializationFuzzTest, CleanBytesRoundTripIntact) {
  std::istringstream in(bytes_);
  LoadReport report;
  StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&in, ReadOptions{}, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(report.fully_intact()) << report.ToString();
  EXPECT_TRUE(SameSemantics(original_, loaded.value()));
}

TEST_F(SerializationFuzzTest, EverySingleByteSubstitutionIsDetectedStrict) {
  // The headline integrity claim: 100% detection. A substitution keeps the
  // length, so every byte of the file is covered by a checksum (or IS a
  // checksum/structure byte whose damage breaks parsing).
  const unsigned char kPatterns[] = {0x01, 0x80, 0xff};  // applied via XOR
  int checked = 0;
  for (size_t pos = 0; pos < bytes_.size(); ++pos) {
    for (unsigned char pattern : kPatterns) {
      std::string mutated = bytes_;
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^ pattern);
      std::istringstream in(mutated);
      StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&in);
      EXPECT_FALSE(loaded.ok())
          << "byte " << pos << " xor 0x" << std::hex << int(pattern)
          << " went undetected";
      if (!loaded.ok()) {
        EXPECT_FALSE(loaded.status().message().empty());
      }
      ++checked;
    }
  }
  // Sanity that the loop actually covered the file.
  EXPECT_EQ(checked, static_cast<int>(bytes_.size()) * 3);
}

TEST_F(SerializationFuzzTest, EverySingleByteSubstitutionRecoversOrFails) {
  // Recovery mode: never crash; either a Status or a finite synopsis with
  // an honest report. Damage inside a view body must be recoverable.
  const unsigned char kPatterns[] = {0x01, 0x80};
  int recovered = 0;
  ReadOptions recover;
  recover.recover = true;
  for (size_t pos = 0; pos < bytes_.size(); ++pos) {
    for (unsigned char pattern : kPatterns) {
      std::string mutated = bytes_;
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^ pattern);
      std::istringstream in(mutated);
      LoadReport report;
      StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&in, recover, &report);
      if (loaded.ok()) {
        EXPECT_TRUE(AllFinite(loaded.value()))
            << "byte " << pos << ": recovered synopsis has non-finite cells";
        EXPECT_GT(loaded.value().views().size(), 0u);
        // A recovered load of a corrupted file must never claim intactness
        // (the file checksum covers every content byte).
        EXPECT_FALSE(report.fully_intact())
            << "byte " << pos << ": corruption loaded as fully intact";
        ++recovered;
      } else {
        EXPECT_FALSE(loaded.status().message().empty());
      }
    }
  }
  // Most of the file is view payload; recovery must actually work there,
  // not just fail everywhere.
  EXPECT_GT(recovered, static_cast<int>(bytes_.size()) / 4);
}

TEST_F(SerializationFuzzTest, EveryTruncationFailsCleanlyStrict) {
  for (size_t len = 0; len < bytes_.size(); ++len) {
    std::istringstream in(bytes_.substr(0, len));
    StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&in);
    if (loaded.ok()) {
      // Only an end-of-file newline can vanish without changing content
      // covered by the checksums.
      EXPECT_EQ(len, bytes_.size() - 1)
          << "truncation to " << len << " bytes went undetected";
      EXPECT_TRUE(SameSemantics(original_, loaded.value()));
    } else {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
}

TEST_F(SerializationFuzzTest, EveryTruncationRecoversOrFails) {
  ReadOptions recover;
  recover.recover = true;
  for (size_t len = 0; len < bytes_.size(); ++len) {
    std::istringstream in(bytes_.substr(0, len));
    LoadReport report;
    StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&in, recover, &report);
    if (loaded.ok()) {
      EXPECT_TRUE(AllFinite(loaded.value()));
      EXPECT_GT(loaded.value().views().size(), 0u);
    } else {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
}

TEST_F(SerializationFuzzTest, InsertedGarbageLinesAreDetected) {
  // Line-level damage a transport might introduce: a duplicated line, a
  // foreign line, a blank line. Strict mode must reject all of them.
  std::vector<std::string> lines;
  std::istringstream split(bytes_);
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  ASSERT_GT(lines.size(), 4u);
  for (size_t at = 0; at <= lines.size(); ++at) {
    for (const std::string& junk :
         {std::string("view 0 1"), std::string(""), lines[0]}) {
      std::string mutated;
      for (size_t i = 0; i < lines.size(); ++i) {
        if (i == at) mutated += junk + "\n";
        mutated += lines[i] + "\n";
      }
      if (at == lines.size()) mutated += junk + "\n";
      std::istringstream in(mutated);
      StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&in);
      EXPECT_FALSE(loaded.ok())
          << "inserting '" << junk << "' at line " << at << " undetected";
    }
  }
}

TEST_F(SerializationFuzzTest, CorruptedChecksumLineAloneRecoversAllViews) {
  // Damage confined to the filesum line: all views verify individually, so
  // recovery keeps everything and flags the file-level mismatch.
  const size_t filesum_pos = bytes_.rfind("filesum ");
  ASSERT_NE(filesum_pos, std::string::npos);
  std::string mutated = bytes_;
  mutated[filesum_pos + 9] ^= 0x01;  // inside the hex digest
  ReadOptions recover;
  recover.recover = true;
  std::istringstream in(mutated);
  LoadReport report;
  StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&in, recover, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(SameSemantics(original_, loaded.value()));
  EXPECT_FALSE(report.file_checksum_ok);
  EXPECT_FALSE(report.fully_intact());
}

TEST_F(SerializationFuzzTest, CorruptedViewBodyRecoversTheOthers) {
  // Damage inside the second view's cells: recovery drops exactly that
  // view and serves the rest.
  const size_t v2_pos = bytes_.find("view 1 2");
  ASSERT_NE(v2_pos, std::string::npos);
  const size_t cells_pos = bytes_.find('\n', v2_pos) + 1;
  std::string mutated = bytes_;
  mutated[cells_pos] ^= 0x01;
  ReadOptions recover;
  recover.recover = true;
  std::istringstream in(mutated);
  LoadReport report;
  StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&in, recover, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().views().size(), 2u);
  EXPECT_EQ(report.views_declared, 3);
  EXPECT_EQ(report.views_loaded, 2);
  EXPECT_EQ(report.dropped.size(), 1u);
  // The survivors are exactly the undamaged views.
  for (const MarginalTable& view : loaded.value().views()) {
    EXPECT_NE(view.attrs(), AttrSet::FromIndices({1, 2}));
  }
}

}  // namespace
}  // namespace priview
