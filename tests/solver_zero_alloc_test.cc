// Zero-allocation regression harness for the arena-backed solver cores.
//
// The whole point of the arena port is that a warm solve touches the heap
// exactly zero times. This binary overrides the global operator new/delete
// with counting wrappers and asserts that, after one warm-up pass, a second
// identical solve through each *Into entry point performs no heap
// allocations at all. The arena itself grows with malloc (deliberately —
// see common/arena.h), so any count observed here is a real client-side
// regression: a std::vector that crept back into a hot path, a std::map in
// dedup, a temporary string, etc.
#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "opt/ipf.h"
#include "opt/least_norm.h"
#include "opt/max_ent_dual.h"
#include "opt/simplex.h"
#include "solver_golden_instances.h"

namespace {
std::atomic<uint64_t> g_news{0};
}  // namespace

void* operator new(size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

void* operator new(size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<size_t>(align),
                                   (size + static_cast<size_t>(align) - 1) &
                                       ~(static_cast<size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace priview {
namespace {

template <typename Body>
uint64_t CountNews(const Body& body) {
  const uint64_t before = g_news.load(std::memory_order_relaxed);
  body();
  return g_news.load(std::memory_order_relaxed) - before;
}

TEST(SolverZeroAllocTest, IpfWarmSolveIsHeapFree) {
  const std::vector<MarginalTable> views = golden::IpfViews();
  const std::vector<MarginalConstraint> cs =
      golden::MakeConstraints(views, golden::IpfTarget());
  const AttrSet target = golden::IpfTarget();
  std::vector<double> cells(size_t{1} << target.size());
  Arena arena;
  const std::span<double> out(cells);
  const std::span<const MarginalConstraint> span_cs(cs);
  // Warm-up: may grow the arena (malloc — uncounted by design).
  (void)MaxEntropyIpfInto(out, target, golden::kIpfTotal, span_cs, arena);
  const uint64_t news = CountNews([&] {
    (void)MaxEntropyIpfInto(out, target, golden::kIpfTotal, span_cs, arena);
  });
  EXPECT_EQ(news, 0u) << "warm IPF solve hit operator new";
}

TEST(SolverZeroAllocTest, MaxEntDualWarmSolveIsHeapFree) {
  const std::vector<MarginalTable> views = golden::DualViews();
  const std::vector<MarginalConstraint> cs =
      golden::MakeConstraints(views, golden::DualTarget());
  const AttrSet target = golden::DualTarget();
  std::vector<double> cells(size_t{1} << target.size());
  Arena arena;
  const std::span<double> out(cells);
  const std::span<const MarginalConstraint> span_cs(cs);
  (void)MaxEntropyDualInto(out, target, golden::kDualTotal, span_cs, arena);
  const uint64_t news = CountNews([&] {
    (void)MaxEntropyDualInto(out, target, golden::kDualTotal, span_cs, arena);
  });
  EXPECT_EQ(news, 0u) << "warm max-ent dual solve hit operator new";
}

TEST(SolverZeroAllocTest, LeastNormWarmSolveIsHeapFree) {
  const std::vector<MarginalTable> views = golden::LeastNormViews();
  const std::vector<MarginalConstraint> cs =
      golden::MakeConstraints(views, golden::LeastNormTarget());
  const AttrSet target = golden::LeastNormTarget();
  std::vector<double> cells(size_t{1} << target.size());
  Arena arena;
  const std::span<double> out(cells);
  const std::span<const MarginalConstraint> span_cs(cs);
  (void)LeastNormSolveInto(out, target, golden::kLeastNormTotal, span_cs,
                           arena);
  const uint64_t news = CountNews([&] {
    (void)LeastNormSolveInto(out, target, golden::kLeastNormTotal, span_cs,
                             arena);
  });
  EXPECT_EQ(news, 0u) << "warm least-norm solve hit operator new";
}

TEST(SolverZeroAllocTest, SimplexWarmSolveIsHeapFree) {
  const LpProblem lp = golden::SimplexProblem();
  std::vector<double> x(lp.objective.size());
  Arena arena;
  const std::span<double> out(x);
  (void)SolveLpInto(lp, out, arena);
  const uint64_t news = CountNews([&] { (void)SolveLpInto(lp, out, arena); });
  EXPECT_EQ(news, 0u) << "warm simplex solve hit operator new";
}

// The warm state must survive multi-block growth: force the arena to spill
// across blocks on the first pass (tiny initial block), then assert the
// second pass — which walks the retained blocks — is still heap-free.
TEST(SolverZeroAllocTest, WarmMultiBlockArenaIsStillHeapFree) {
  const std::vector<MarginalTable> views = golden::IpfViews();
  const std::vector<MarginalConstraint> cs =
      golden::MakeConstraints(views, golden::IpfTarget());
  const AttrSet target = golden::IpfTarget();
  std::vector<double> cells(size_t{1} << target.size());
  Arena arena(/*initial_bytes=*/256);
  const std::span<double> out(cells);
  const std::span<const MarginalConstraint> span_cs(cs);
  (void)MaxEntropyIpfInto(out, target, golden::kIpfTotal, span_cs, arena);
  EXPECT_FALSE(arena.warm()) << "expected the solve to spill across blocks";
  const uint64_t news = CountNews([&] {
    (void)MaxEntropyIpfInto(out, target, golden::kIpfTotal, span_cs, arena);
  });
  EXPECT_EQ(news, 0u) << "warm multi-block IPF solve hit operator new";
}

}  // namespace
}  // namespace priview
