// End-to-end integration tests: the full PriView pipeline against the
// baselines on shrunk versions of the paper's experimental settings, plus
// the bench harness utilities.
#include <gtest/gtest.h>

#include "baselines/direct.h"
#include "baselines/fourier.h"
#include "bench_util/harness.h"
#include "common/rng.h"
#include "core/synopsis.h"
#include "data/mchain.h"
#include "data/synthetic.h"
#include "design/view_selection.h"
#include "metrics/metrics.h"

namespace priview {
namespace {

TEST(IntegrationTest, PriViewBeatsDirectOnKosarakLike) {
  // Shrunk Fig. 2 setting: d = 32, k = 4, eps = 1. PriView should beat
  // Direct by a wide margin (the paper reports 2-3 orders of magnitude at
  // full N; at N = 50k the gap is smaller but must still be decisive).
  Rng rng(1);
  Dataset data = MakeKosarakLike(&rng, 50000);
  Rng qrng(2);
  const auto queries = SampleQuerySets(32, 4, 20, &qrng);

  const ViewSelection sel = SelectViews(32, 50000, 1.0, &rng);
  PriViewOptions options;
  options.epsilon = 1.0;
  PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, sel.design.blocks, options, &rng);
  DirectMechanism direct;
  direct.Fit(data, 1.0, 4, &rng);

  const double n = static_cast<double>(data.size());
  double priview_error = 0.0, direct_error = 0.0;
  for (AttrSet q : queries) {
    const MarginalTable truth = data.CountMarginal(q);
    priview_error += synopsis.Query(q).L2DistanceTo(truth) / n;
    direct_error += direct.Query(q).L2DistanceTo(truth) / n;
  }
  EXPECT_LT(priview_error * 5.0, direct_error);
}

TEST(IntegrationTest, PriViewBeatsFourierOnAolLike) {
  Rng rng(3);
  Dataset data = MakeAolLike(&rng, 50000);
  Rng qrng(4);
  const auto queries = SampleQuerySets(45, 6, 10, &qrng);

  const ViewSelection sel = SelectViews(45, 50000, 1.0, &rng);
  PriViewOptions options;
  PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, sel.design.blocks, options, &rng);
  FourierMechanism fourier;
  fourier.Fit(data, 1.0, 6, &rng);

  const double n = static_cast<double>(data.size());
  double priview_error = 0.0, fourier_error = 0.0;
  for (AttrSet q : queries) {
    const MarginalTable truth = data.CountMarginal(q);
    priview_error += synopsis.Query(q).L2DistanceTo(truth) / n;
    fourier_error += fourier.Query(q).L2DistanceTo(truth) / n;
  }
  EXPECT_LT(priview_error * 5.0, fourier_error);
}

TEST(IntegrationTest, MchainConsecutiveQueriesAccurate) {
  // Shrunk Fig. 5: order-2 chain, d = 64, consecutive queries. Pairwise
  // coverage suffices (the paper's mc2 observation).
  Rng rng(5);
  Dataset data = MakeMchainDataset(2, 64, 100000, &rng);
  const CoveringDesign design = MakeCoveringDesign(64, 8, 2, &rng);
  PriViewOptions options;
  options.epsilon = 1.0;
  PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, design.blocks, options, &rng);

  const auto queries = ConsecutiveQuerySets(64, 4);
  const double n = static_cast<double>(data.size());
  double total_error = 0.0;
  for (AttrSet q : queries) {
    const MarginalTable truth = data.CountMarginal(q);
    total_error += synopsis.Query(q).L2DistanceTo(truth) / n;
  }
  const double avg_error = total_error / queries.size();
  EXPECT_LT(avg_error, 0.05);
}

TEST(IntegrationTest, SynopsisIsReusableAcrossK) {
  // "One does not need to commit to a specific k" (§1): one synopsis
  // answers k = 2, 4, 6 without rebuilding.
  Rng rng(6);
  Dataset data = MakeKosarakLike(&rng, 30000);
  const ViewSelection sel = SelectViews(32, 30000, 1.0, &rng);
  PriViewSynopsis synopsis = PriViewSynopsis::Build(
      data, sel.design.blocks, PriViewOptions{}, &rng);
  Rng qrng(7);
  for (int k : {2, 4, 6}) {
    for (AttrSet q : SampleQuerySets(32, k, 3, &qrng)) {
      const MarginalTable answer = synopsis.Query(q);
      EXPECT_EQ(answer.arity(), k);
      EXPECT_GE(answer.MinCell(), -1e-6);
    }
  }
}

TEST(HarnessTest, EvaluateWorkloadAveragesRuns) {
  Rng rng(8);
  Dataset data = MakeMsnbcLike(&rng, 10000);
  const auto queries = std::vector<AttrSet>{AttrSet::FromIndices({0, 1}),
                                            AttrSet::FromIndices({2, 3})};
  int prepare_calls = 0;
  const WorkloadErrors errors = EvaluateWorkload(
      data, queries, /*runs=*/3, [&](int) { ++prepare_calls; },
      [&](AttrSet q) { return data.CountMarginal(q); });
  EXPECT_EQ(prepare_calls, 3);
  ASSERT_EQ(errors.l2.size(), 2u);
  // Exact answers: zero error.
  EXPECT_NEAR(errors.l2[0], 0.0, 1e-12);
  EXPECT_NEAR(errors.js[1], 0.0, 1e-12);
}

TEST(HarnessTest, FlagParsing) {
  const char* argv_c[] = {"prog", "--queries=42", "--eps=0.5",
                          "--js=true"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_EQ(FlagInt(4, argv, "queries", 7), 42);
  EXPECT_EQ(FlagInt(4, argv, "runs", 7), 7);
  EXPECT_DOUBLE_EQ(FlagDouble(4, argv, "eps", 1.0), 0.5);
  EXPECT_TRUE(FlagBool(4, argv, "js", false));
  EXPECT_FALSE(FlagBool(4, argv, "other", false));
}

}  // namespace
}  // namespace priview
