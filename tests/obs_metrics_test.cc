// Unit suite for the metrics substrate: instrument semantics, stable
// pointer identity, the power-of-two histogram shape, and the Prometheus
// text-exposition renderer (escaping, cumulative buckets, callbacks).
#include "obs/metrics_registry.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace priview::obs {
namespace {

TEST(CounterTest, IncrementAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAddGoBothWays) {
  Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.value(), -15);
  g.Add(15);
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, BucketShapeIsPowerOfTwo) {
  // Bucket 0 absorbs 0 and 1; bucket i covers [2^i, 2^(i+1)).
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 0);
  EXPECT_EQ(Histogram::BucketFor(2), 1);
  EXPECT_EQ(Histogram::BucketFor(3), 1);
  EXPECT_EQ(Histogram::BucketFor(4), 2);
  EXPECT_EQ(Histogram::BucketFor(7), 2);
  EXPECT_EQ(Histogram::BucketFor(8), 3);
  // Everything past the last bucket boundary lands in the open top bucket.
  EXPECT_EQ(Histogram::BucketFor(~uint64_t{0}), Histogram::kBuckets - 1);
  // `le` values: inclusive upper bound of each bucket.
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 7u);
  for (int b = 1; b < Histogram::kBuckets; ++b) {
    EXPECT_GT(Histogram::BucketUpperBound(b), Histogram::BucketUpperBound(b - 1));
  }
}

TEST(HistogramTest, ObserveCountsAndSums) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  h.Observe(1000);
  const Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.total, 4u);
  EXPECT_EQ(s.sum, 1006u);
  EXPECT_EQ(s.counts[0], 2u);                        // 0 and 1
  EXPECT_EQ(s.counts[Histogram::BucketFor(5)], 1u);
  EXPECT_EQ(s.counts[Histogram::BucketFor(1000)], 1u);
  EXPECT_EQ(h.total_count(), 4u);
}

TEST(HistogramTest, PercentileUpperBoundBrackets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Observe(10);    // bucket [8, 16)
  for (int i = 0; i < 10; ++i) h.Observe(5000);  // bucket [4096, 8192)
  EXPECT_EQ(h.PercentileUpperBound(0.5), 15.0);
  EXPECT_EQ(h.PercentileUpperBound(0.9), 15.0);
  EXPECT_EQ(h.PercentileUpperBound(0.99), 8191.0);
  Histogram empty;
  EXPECT_EQ(empty.PercentileUpperBound(0.5), 0.0);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnTheSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("priview_test_total", {{"k", "v"}});
  Counter* b = registry.GetCounter("priview_test_total", {{"k", "v"}});
  EXPECT_EQ(a, b);
  // A different label set is a different series.
  Counter* c = registry.GetCounter("priview_test_total", {{"k", "w"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.series_count(), 2u);
  // Pointer stability across further registrations (deque storage).
  for (int i = 0; i < 100; ++i) {
    registry.GetGauge("priview_test_gauge_" + std::to_string(i));
  }
  a->Increment();
  EXPECT_EQ(registry.GetCounter("priview_test_total", {{"k", "v"}})->value(),
            1u);
}

TEST(MetricsRegistryTest, RendersCountersAndGaugesWithHelpAndType) {
  MetricsRegistry registry;
  registry.GetCounter("priview_widgets_total", {{"kind", "round"}},
                      "Widgets produced")->Increment(3);
  registry.GetCounter("priview_widgets_total", {{"kind", "square"}})
      ->Increment(4);
  registry.GetGauge("priview_depth", {}, "Current depth")->Set(-7);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP priview_widgets_total Widgets produced\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE priview_widgets_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("priview_widgets_total{kind=\"round\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("priview_widgets_total{kind=\"square\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE priview_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("priview_depth -7\n"), std::string::npos);
  // HELP/TYPE appear once per family, not once per series.
  EXPECT_EQ(text.find("# TYPE priview_widgets_total"),
            text.rfind("# TYPE priview_widgets_total"));
}

TEST(MetricsRegistryTest, RendersHistogramsCumulativelyWithInfSumCount) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("priview_lat_us", {{"op", "read"}},
                                       "Latency");
  h->Observe(1);   // bucket 0, le=1
  h->Observe(3);   // bucket 1, le=3
  h->Observe(3);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE priview_lat_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("priview_lat_us_bucket{op=\"read\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("priview_lat_us_bucket{op=\"read\",le=\"3\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("priview_lat_us_bucket{op=\"read\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("priview_lat_us_sum{op=\"read\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("priview_lat_us_count{op=\"read\"} 3\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, EscapesHostileLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("priview_esc_total",
                      {{"q", "a\"b\\c\nd"}})->Increment();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("priview_esc_total{q=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
  // The raw newline must not survive into the series line.
  EXPECT_EQ(text.find("a\"b"), std::string::npos);
}

TEST(MetricsRegistryTest, CallbackInstrumentsPullAtRenderTime) {
  MetricsRegistry registry;
  int64_t depth = 5;
  uint64_t jobs = 100;
  registry.RegisterCallbackGauge("priview_cb_depth", "Depth",
                                 [&depth] { return depth; });
  registry.RegisterCallbackCounter("priview_cb_jobs_total", "Jobs",
                                   [&jobs] { return jobs; });
  EXPECT_NE(registry.RenderPrometheus().find("priview_cb_depth 5\n"),
            std::string::npos);
  depth = 9;
  jobs = 101;
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("priview_cb_depth 9\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE priview_cb_jobs_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("priview_cb_jobs_total 101\n"), std::string::npos);
  // Re-registering replaces the callback rather than duplicating it.
  registry.RegisterCallbackGauge("priview_cb_depth", "Depth",
                                 [] { return int64_t{1}; });
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(MetricsRegistryTest, ReentrantCallbackDoesNotDeadlockRender) {
  // A callback that reads back into its own registry (series_count, a
  // counter lookup) must not self-deadlock: RenderPrometheus snapshots
  // the callback list and invokes it after releasing the registry mutex.
  MetricsRegistry registry;
  registry.GetCounter("priview_reentrant_total")->Increment();
  registry.RegisterCallbackGauge(
      "priview_reentrant_series", "Series seen by a reentrant callback",
      [&registry] {
        registry.GetCounter("priview_reentrant_total")->Increment();
        return static_cast<int64_t>(registry.series_count());
      });
  const std::string text = registry.RenderPrometheus();
  // 1 instrument + 1 callback registered at evaluation time.
  EXPECT_NE(text.find("priview_reentrant_series 2\n"), std::string::npos);
  // The callback's own counter bump landed (evaluated post-render of the
  // instrument section, so the rendered value is the pre-bump 1).
  EXPECT_EQ(registry.GetCounter("priview_reentrant_total")->value(), 2u);
}

TEST(MetricsRegistryTest, GlobalRegistryExportsTheParallelPool) {
  const std::string text = MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(text.find("priview_parallel_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("priview_parallel_threads"), std::string::npos);
  EXPECT_NE(text.find("priview_parallel_jobs_total"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAndRendersAreCoherent) {
  // 8 writer threads hammer one counter and one histogram while a reader
  // renders; under tsan this is the data-race proof, and the final totals
  // must be exact.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("priview_conc_total");
  Histogram* histogram = registry.GetHistogram("priview_conc_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Observe(static_cast<uint64_t>(t * 31 + i % 1024));
      }
    });
  }
  std::string scrape;
  std::thread reader([&] {
    for (int i = 0; i < 50; ++i) scrape = registry.RenderPrometheus();
  });
  for (std::thread& w : writers) w.join();
  reader.join();
  EXPECT_EQ(counter->value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(histogram->total_count(), uint64_t{kThreads} * kPerThread);
  EXPECT_FALSE(scrape.empty());
}

}  // namespace
}  // namespace priview::obs
