// Property tests for the non-negativity corrections across random tables,
// arities and thresholds.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/nonneg.h"

namespace priview {
namespace {

struct RippleCase {
  int arity;
  double noise_scale;
  double theta;
};

class RippleProperties : public ::testing::TestWithParam<RippleCase> {};

MarginalTable NoisyTable(int arity, double noise_scale, Rng* rng) {
  MarginalTable t(AttrSet::Full(arity));
  for (double& c : t.cells()) {
    c = rng->UniformDouble() * 20.0 + rng->Laplace(noise_scale);
  }
  return t;
}

TEST_P(RippleProperties, PreservesTotalExactly) {
  const RippleCase& c = GetParam();
  Rng rng(static_cast<uint64_t>(c.arity * 1000 + c.theta * 10));
  MarginalTable t = NoisyTable(c.arity, c.noise_scale, &rng);
  const double before = t.Total();
  RippleOptions options;
  options.theta = c.theta;
  RippleNonNegativity(&t, options);
  EXPECT_NEAR(t.Total(), before, 1e-6 * std::max(1.0, std::fabs(before)));
}

TEST_P(RippleProperties, ReachesThetaFixpoint) {
  const RippleCase& c = GetParam();
  Rng rng(static_cast<uint64_t>(c.arity * 2000 + c.theta * 10));
  MarginalTable t = NoisyTable(c.arity, c.noise_scale, &rng);
  RippleOptions options;
  options.theta = c.theta;
  RippleNonNegativity(&t, options);
  // Unless the total itself is deeply negative (fallback territory),
  // every cell ends >= -theta.
  if (t.Total() >= 0.0) {
    EXPECT_GE(t.MinCell(), -c.theta - 1e-9);
  }
}

TEST_P(RippleProperties, IdempotentAtFixpoint) {
  const RippleCase& c = GetParam();
  Rng rng(static_cast<uint64_t>(c.arity * 3000 + c.theta * 10));
  MarginalTable t = NoisyTable(c.arity, c.noise_scale, &rng);
  RippleOptions options;
  options.theta = c.theta;
  RippleNonNegativity(&t, options);
  MarginalTable again = t;
  const int corrections = RippleNonNegativity(&again, options);
  EXPECT_EQ(corrections, 0);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(again.At(i), t.At(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RippleProperties,
    ::testing::Values(RippleCase{2, 5.0, 0.5}, RippleCase{3, 10.0, 1.0},
                      RippleCase{4, 10.0, 1.0}, RippleCase{6, 20.0, 1.0},
                      RippleCase{8, 30.0, 2.0}, RippleCase{8, 50.0, 0.1},
                      RippleCase{5, 15.0, 5.0}, RippleCase{7, 25.0, 0.0}));

TEST(NonNegProperties, GlobalNeverIncreasesTotalBeyondInput) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    MarginalTable t(AttrSet::Full(5));
    for (double& c : t.cells()) c = rng.Laplace(10.0) + 3.0;
    const double before = t.Total();
    ApplyNonNegativity(&t, NonNegMethod::kGlobal);
    EXPECT_GE(t.MinCell(), 0.0);
    // Feasible whenever the true total is nonnegative.
    if (before >= 0.0) {
      EXPECT_NEAR(t.Total(), before, 1e-6 * std::max(1.0, before));
    }
  }
}

TEST(NonNegProperties, SimpleBiasGrowsWithNoise) {
  // The positive bias Simple introduces should grow with the noise scale —
  // the quantitative reason the paper rejects it.
  Rng rng(2);
  double bias_small = 0.0, bias_large = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    for (double scale : {5.0, 50.0}) {
      MarginalTable t(AttrSet::Full(4));
      for (double& c : t.cells()) c = 10.0 + rng.Laplace(scale);
      const double before = t.Total();
      ApplyNonNegativity(&t, NonNegMethod::kSimple);
      (scale < 10.0 ? bias_small : bias_large) += t.Total() - before;
    }
  }
  EXPECT_GT(bias_large, bias_small);
  EXPECT_GT(bias_small, 0.0);
}

TEST(NonNegProperties, RippleBeatsSimpleOnSparseTables) {
  // Sparse truth (most cells zero): Simple's bias inflates the total
  // around the true-zero cells, while Ripple's redistribution keeps the
  // table closer to the truth in L2 — Fig. 4's core claim in miniature.
  Rng rng(3);
  double simple_err = 0.0, ripple_err = 0.0;
  for (int trial = 0; trial < 100; ++trial) {
    MarginalTable truth(AttrSet::Full(6));
    for (size_t i = 0; i < truth.size(); ++i) {
      truth.At(i) = (rng.UniformDouble() < 0.15) ? 200.0 : 0.0;
    }
    MarginalTable noisy = truth;
    for (double& c : noisy.cells()) c += rng.Laplace(20.0);
    MarginalTable simple = noisy;
    ApplyNonNegativity(&simple, NonNegMethod::kSimple);
    MarginalTable ripple = noisy;
    ApplyNonNegativity(&ripple, NonNegMethod::kRipple);
    simple_err += simple.L2DistanceTo(truth);
    ripple_err += ripple.L2DistanceTo(truth);
  }
  EXPECT_LT(ripple_err, simple_err);
}

}  // namespace
}  // namespace priview
