#include "data/mchain.h"

#include <cmath>

#include <gtest/gtest.h>

namespace priview {
namespace {

TEST(MchainTest, NextProbabilityFormula) {
  // order 1: prev bit 0 -> 0.75, prev bit 1 -> 0.25.
  EXPECT_DOUBLE_EQ(MchainNextProbability(1, 0), 0.75);
  EXPECT_DOUBLE_EQ(MchainNextProbability(1, 1), 0.25);
  // order 4, s = 2 -> exactly 0.5 (balanced window).
  EXPECT_DOUBLE_EQ(MchainNextProbability(4, 2), 0.5);
  EXPECT_DOUBLE_EQ(MchainNextProbability(4, 0), 0.75);
  EXPECT_DOUBLE_EQ(MchainNextProbability(4, 4), 0.25);
}

TEST(MchainTest, DatasetShape) {
  Rng rng(1);
  const Dataset data = MakeMchainDataset(2, 64, 1000, &rng);
  EXPECT_EQ(data.d(), 64);
  EXPECT_EQ(data.size(), 1000u);
}

TEST(MchainTest, MarginalFrequenciesNearHalf) {
  // The chain is anti-persistent around 1/2; every attribute frequency
  // should hover near 0.5.
  Rng rng(2);
  const Dataset data = MakeMchainDataset(3, 32, 20000, &rng);
  for (int a = 0; a < 32; ++a) {
    EXPECT_NEAR(data.AttributeFrequency(a), 0.5, 0.03) << "attr " << a;
  }
}

TEST(MchainTest, Order1HasNegativeLagCorrelation) {
  // P(next = prev) = 0.25 under order 1, so adjacent bits anticorrelate.
  Rng rng(3);
  const Dataset data = MakeMchainDataset(1, 16, 30000, &rng);
  const MarginalTable pair =
      data.CountMarginal(AttrSet::FromIndices({5, 6}));
  const double n = pair.Total();
  const double agree = (pair.At(0b00) + pair.At(0b11)) / n;
  EXPECT_NEAR(agree, 0.25, 0.02);
}

TEST(MchainTest, HigherOrderWeakensAdjacentCoupling) {
  Rng rng(4);
  const Dataset d1 = MakeMchainDataset(1, 16, 30000, &rng);
  const Dataset d7 = MakeMchainDataset(7, 16, 30000, &rng);
  auto adjacent_agreement = [](const Dataset& data) {
    const MarginalTable pair =
        data.CountMarginal(AttrSet::FromIndices({9, 10}));
    return (pair.At(0b00) + pair.At(0b11)) / pair.Total();
  };
  // Order 1 pins adjacent disagreement at 0.75; order 7 spreads the
  // dependence over 7 bits, pulling pairwise agreement back toward 0.5.
  EXPECT_LT(std::fabs(adjacent_agreement(d7) - 0.5),
            std::fabs(adjacent_agreement(d1) - 0.5));
}

TEST(MchainTest, DeterministicForSeed) {
  Rng a(5), b(5);
  const Dataset da = MakeMchainDataset(2, 16, 100, &a);
  const Dataset db = MakeMchainDataset(2, 16, 100, &b);
  EXPECT_EQ(da.records(), db.records());
}

}  // namespace
}  // namespace priview
