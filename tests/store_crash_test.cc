// Crash matrix for the SynopsisStore: a forked child process suffers an
// injected durability fault mid-install (each store/* failpoint in turn)
// and dies without cleanup; the parent then reopens the directory like a
// restarted process and asserts the recovery contract — the last durable
// release is served, nothing partial is visible, and every piece of crash
// debris is quarantined, not trusted. A manifest corruption fuzzer then
// mutates the journal at random (deterministic seed) and asserts the
// store never crashes, never serves an unverified release, and heals the
// journal so the next open is clean.
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "serve/synopsis_registry.h"
#include "store/synopsis_store.h"
#include "table/attr_set.h"

#if defined(__SANITIZE_THREAD__)
#define PRIVIEW_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PRIVIEW_TSAN 1
#endif
#endif
#ifndef PRIVIEW_TSAN
#define PRIVIEW_TSAN 0
#endif

namespace priview::store {
namespace {

PriViewSynopsis MakeSynopsis(uint64_t seed) {
  Rng rng(seed);
  Dataset data = MakeMsnbcLike(&rng, 1200);
  PriViewOptions options;
  options.add_noise = false;
  return PriViewSynopsis::Build(
      data, {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4})},
      options, &rng);
}

class StoreCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if PRIVIEW_TSAN
    GTEST_SKIP() << "fork-based crash matrix is not tsan-compatible";
#endif
#if !PRIVIEW_FAILPOINTS_ENABLED
    GTEST_SKIP() << "failpoints compiled out (PRIVIEW_FAILPOINTS=OFF)";
#endif
    // Keep the process single-threaded so fork() is safe: with the pool
    // override at 1 every parallel region runs inline and no worker
    // threads are ever spawned.
    parallel::SetThreadCount(1);
    // Parameterized test names carry '/'; flatten them into one path
    // component.
    std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& ch : name) {
      if (ch == '/') ch = '_';
    }
    dir_ = ::testing::TempDir() + "/store_crash_" + name;
    std::filesystem::remove_all(dir_);
    options_.dir = dir_;
  }
  void TearDown() override {
    parallel::SetThreadCount(0);
    failpoint::DisarmAll();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  /// Installs the durable baseline "release" (seq 1) the crash must never
  /// lose.
  void InstallBaseline() {
    SynopsisStore store(options_);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Install("release", MakeSynopsis(1)).ok());
    ASSERT_EQ(store.Current().at("release"), "release.1.pv");
  }

  /// Forks a child that arms `fault` ("always"), attempts a second install
  /// of "release", and dies via _exit — no destructors, no cleanup, like a
  /// crash at the fault's site. `expect_install_ok` is for the no-fault
  /// control run (crash AFTER the durable install).
  void CrashingChildInstall(const std::string& fault, bool expect_install_ok) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: exit codes, not gtest, report what happened.
      if (!fault.empty() && !failpoint::Arm(fault, "always").ok()) _exit(9);
      StoreOptions options;
      options.dir = dir_;
      SynopsisStore store(options);
      if (!store.Open().ok()) _exit(10);
      const Status installed = store.Install("release", MakeSynopsis(2));
      if (installed.ok() != expect_install_ok) _exit(11);
      _exit(0);
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "child did not exit cleanly";
    ASSERT_EQ(WEXITSTATUS(wstatus), 0)
        << "child reported unexpected install outcome under " << fault;
  }

  std::string dir_;
  StoreOptions options_;
};

struct CrashCase {
  const char* fault;
  bool expect_quarantine;          // crash debris the journal never blessed
  bool expect_manifest_truncated;  // torn journal tail healed at reopen
};

class StoreCrashMatrixTest : public StoreCrashTest,
                             public ::testing::WithParamInterface<CrashCase> {};

TEST_P(StoreCrashMatrixTest, CrashMidInstallKeepsLastDurableRelease) {
  const CrashCase& c = GetParam();
  InstallBaseline();
  CrashingChildInstall(c.fault, /*expect_install_ok=*/false);

  // The restarted process: replay the journal, reconcile the directory.
  SynopsisStore recovered(options_);
  ASSERT_TRUE(recovered.Open().ok());
  serve::SynopsisRegistry registry;
  StatusOr<RecoveryReport> report = recovered.Recover(&registry);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The contract: the baseline survives, exactly, and nothing partial is
  // visible anywhere a reader could trust it.
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(report.value().loads.count("release"), 1u);
  EXPECT_EQ(recovered.Current().at("release"), "release.1.pv");
  EXPECT_EQ(report.value().last_durable_seq, 1u);
  EXPECT_EQ(report.value().manifest_truncated, c.expect_manifest_truncated);
  if (c.expect_quarantine) {
    ASSERT_FALSE(report.value().quarantined.empty())
        << c.fault << " left debris that was not quarantined";
  } else {
    EXPECT_TRUE(report.value().quarantined.empty());
  }
  // Outside quarantine/, the directory holds exactly the journal and the
  // durable release — no temp files, no orphans.
  size_t visible = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name == "quarantine") continue;
    EXPECT_TRUE(name == "MANIFEST" || name == "release.1.pv")
        << c.fault << " left '" << name << "' visible after recovery";
    ++visible;
  }
  EXPECT_EQ(visible, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStoreFailpoints, StoreCrashMatrixTest,
    ::testing::Values(
        CrashCase{"store/fsync-fail", false, false},
        CrashCase{"store/torn-rename", true, false},
        CrashCase{"store/manifest-torn-tail", true, true}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      std::string name = info.param.fault;
      for (char& ch : name) {
        if (ch == '/' || ch == '-') ch = '_';
      }
      return name;
    });

TEST_F(StoreCrashTest, CrashAfterDurableInstallKeepsTheNewRelease) {
  // Control run: the child completes the install (journal record appended
  // and synced) and then dies. The new release, not the baseline, is the
  // durable state.
  InstallBaseline();
  CrashingChildInstall("", /*expect_install_ok=*/true);

  SynopsisStore recovered(options_);
  ASSERT_TRUE(recovered.Open().ok());
  serve::SynopsisRegistry registry;
  StatusOr<RecoveryReport> report = recovered.Recover(&registry);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(recovered.Current().at("release"), "release.2.pv");
  // Seq 3 is the gc record reclaiming the superseded baseline file.
  EXPECT_EQ(report.value().last_durable_seq, 3u);
  EXPECT_TRUE(report.value().quarantined.empty());
}

TEST_F(StoreCrashTest, ManifestCorruptionFuzzer) {
  // Random journal damage must never crash the store, never resurrect an
  // unverifiable release, and must heal the journal so the next open
  // replays clean. Deterministic seed: failures reproduce.
  const PriViewSynopsis a = MakeSynopsis(11);
  const PriViewSynopsis b = MakeSynopsis(12);
  Rng fuzz(20260806);

  for (int iter = 0; iter < 40; ++iter) {
    SCOPED_TRACE("fuzz iteration " + std::to_string(iter));
    std::filesystem::remove_all(dir_);
    {
      SynopsisStore store(options_);
      ASSERT_TRUE(store.Open().ok());
      ASSERT_TRUE(store.Install("alpha", a).ok());
      ASSERT_TRUE(store.Install("beta", b).ok());
      ASSERT_TRUE(store.Install("alpha", b).ok());  // supersede
      ASSERT_TRUE(store.Retire("beta").ok());
    }
    const std::string manifest_path = dir_ + "/MANIFEST";
    std::string bytes;
    {
      std::ifstream in(manifest_path, std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      bytes = ss.str();
    }
    ASSERT_FALSE(bytes.empty());

    // One random mutation per iteration: flip, truncate, insert, or smash
    // a whole span.
    switch (fuzz.UniformInt(4)) {
      case 0: {  // flip one byte
        const size_t at = fuzz.UniformInt(bytes.size());
        bytes[at] = static_cast<char>(bytes[at] ^ (1u << fuzz.UniformInt(8)));
        break;
      }
      case 1:  // torn tail: drop a suffix
        bytes.resize(fuzz.UniformInt(bytes.size()));
        break;
      case 2: {  // insert garbage mid-stream
        const size_t at = fuzz.UniformInt(bytes.size());
        bytes.insert(at, 1, static_cast<char>(fuzz.UniformInt(256)));
        break;
      }
      default: {  // smash a span with random bytes
        const size_t at = fuzz.UniformInt(bytes.size());
        const size_t len =
            std::min(bytes.size() - at, 1 + fuzz.UniformInt(16));
        for (size_t i = 0; i < len; ++i) {
          bytes[at + i] = static_cast<char>(fuzz.UniformInt(256));
        }
        break;
      }
    }
    {
      std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
      out << bytes;
    }

    SynopsisStore store(options_);
    const Status opened = store.Open();
    if (!opened.ok()) {
      EXPECT_FALSE(opened.message().empty());
      continue;  // refusing the directory outright is a valid outcome
    }
    serve::SynopsisRegistry registry;
    StatusOr<RecoveryReport> report = store.Recover(&registry);
    if (!report.ok()) {
      EXPECT_FALSE(report.status().message().empty());
      continue;
    }
    // Whatever survived replay must have verified end to end: every
    // registry entry answers queries (Acquire succeeds) and was loaded
    // fully intact.
    EXPECT_LE(registry.size(), 2u);
    for (const auto& [name, load] : report.value().loads) {
      EXPECT_TRUE(load.fully_intact())
          << name << " installed without full verification";
    }

    // Healing: the first open truncated (or replaced) the damaged journal
    // durably, so a fresh open replays clean — no second truncation, and
    // another recovery scan still succeeds.
    SynopsisStore again(options_);
    ASSERT_TRUE(again.Open().ok());
    serve::SynopsisRegistry registry2;
    StatusOr<RecoveryReport> report2 = again.Recover(&registry2);
    ASSERT_TRUE(report2.ok()) << report2.status().ToString();
    EXPECT_FALSE(report2.value().manifest_truncated);
  }
}

}  // namespace
}  // namespace priview::store
