// Lifecycle suite for the resilient serving stack: broker graceful drain
// (admitted work finishes, new work is rejected retryably), configurable
// stop grace, health probes over the wire, bounded non-blocking connect,
// SIGTERM-triggered drain, and the client surviving a full server restart
// backed by the durable store — with retries, zero failures; and the one
// failure class that must NEVER be retried (ResourceExhausted) proven
// unretried via failpoint hit counts.
#include "serve/server.h"

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "obs/metrics_registry.h"
#include "serve/client.h"
#include "serve/request_broker.h"
#include "store/synopsis_store.h"
#include "table/attr_set.h"

namespace priview::serve {
namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

PriViewSynopsis MakeSynopsis(uint64_t seed) {
  Rng rng(seed);
  Dataset data = MakeMsnbcLike(&rng, 3000);
  PriViewOptions options;
  options.add_noise = false;
  return PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4}),
       AttrSet::FromIndices({4, 5, 6})},
      options, &rng);
}

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "/priview_lc_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter.fetch_add(1)) + ".sock";
}

/// A wide-universe synopsis (d = 32) for the drain tests: 10-attribute
/// targets against it are 1024-cell uncovered reconstructions, expensive
/// enough that a staged batch holds the dispatcher busy for a measurable
/// window.
PriViewSynopsis MakeWideSynopsis(uint64_t seed) {
  Rng rng(seed);
  Dataset data = MakeKosarakLike(&rng, 2000);
  PriViewOptions options;
  options.add_noise = false;
  return PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4}),
       AttrSet::FromIndices({4, 5, 6})},
      options, &rng);
}

/// Distinct 16-attribute subsets of {0..20}, up to `limit` — uncovered
/// 65536-cell targets, so each staged request costs the dispatcher a real
/// solve and the drain window stays open long enough to probe.
std::vector<AttrSet> DistinctTargets(size_t limit) {
  std::vector<AttrSet> targets;
  for (uint64_t mask = 0; mask < (1u << 21) && targets.size() < limit;
       ++mask) {
    if (__builtin_popcountll(mask) != 16) continue;
    std::vector<int> attrs;
    for (int a = 0; a < 21; ++a) {
      if (mask & (uint64_t{1} << a)) attrs.push_back(a);
    }
    targets.push_back(AttrSet::FromIndices(attrs));
  }
  return targets;
}

class ServeLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Inline parallel regions: deterministic single-threaded solves make
    // the drain window wide enough to probe, and keep thread counts sane
    // under tsan.
    parallel::SetThreadCount(1);
  }
  void TearDown() override {
    parallel::SetThreadCount(0);
    failpoint::DisarmAll();
  }
};

TEST_F(ServeLifecycleTest, DrainFinishesAdmittedWorkAndRejectsNewWork) {
  SynopsisRegistry registry;
  ServerMetrics metrics;
  ASSERT_TRUE(registry.Install("s", MakeWideSynopsis(3)).ok());

  BrokerOptions options;
  options.coalesce = false;          // every staged request is a real solve
  options.stop_grace = milliseconds{60'000};  // the drain must not abandon
  RequestBroker broker(&registry, &metrics, options);

  // Stage a deterministic batch: requests submitted before Start() queue
  // up, so every one of them is admitted before the drain begins.
  const std::vector<AttrSet> targets = DistinctTargets(64);
  std::vector<Status> outcomes(targets.size());
  std::vector<std::thread> askers;
  askers.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    askers.emplace_back([&, i] {
      outcomes[i] =
          broker.Ask("s", targets[i], Clock::now() + milliseconds{60'000})
              .status();
    });
  }
  while (broker.QueueDepth() < targets.size()) {
    std::this_thread::yield();
  }

  // A probe that fires just after the drain flips admission off: the whole
  // staged batch is mid-dispatch, so the rejection must be the *retryable*
  // drain code, not a hard stop.
  std::atomic<bool> drain_started{false};
  std::thread prober([&] {
    while (!drain_started.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(milliseconds{5});
    const Status rejected =
        broker.Ask("s", AttrSet::FromIndices({0}), Clock::now() +
                                                       milliseconds{1000})
            .status();
    EXPECT_EQ(rejected.code(), StatusCode::kUnavailable)
        << rejected.ToString();
  });

  broker.Start();
  drain_started.store(true, std::memory_order_release);
  const size_t abandoned = broker.Drain();
  for (std::thread& t : askers) t.join();
  prober.join();

  // The regression under test: work admitted before the drain completes —
  // none of it abandoned, every caller answered.
  EXPECT_EQ(abandoned, 0u);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].ok())
        << "staged request " << i << ": " << outcomes[i].ToString();
  }
  // After the drain the broker is stopped for good.
  EXPECT_FALSE(broker.accepting());
  EXPECT_EQ(broker.Ask("s", AttrSet::FromIndices({0})).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServeLifecycleTest, ExpiredGraceReportsAbandonedWork) {
  SynopsisRegistry registry;
  ServerMetrics metrics;
  ASSERT_TRUE(registry.Install("s", MakeWideSynopsis(3)).ok());

  BrokerOptions options;
  options.coalesce = false;
  options.stop_grace = milliseconds{123};
  RequestBroker broker(&registry, &metrics, options);
  EXPECT_EQ(broker.options().stop_grace, milliseconds{123});

  const std::vector<AttrSet> targets = DistinctTargets(64);
  std::vector<std::thread> askers;
  askers.reserve(targets.size());
  for (const AttrSet& target : targets) {
    askers.emplace_back([&broker, target] {
      (void)broker.Ask("s", target, Clock::now() + milliseconds{60'000});
    });
  }
  while (broker.QueueDepth() < targets.size()) {
    std::this_thread::yield();
  }
  broker.Start();
  // A 1ms grace cannot cover 64 sequential solves: the drain must give up
  // and report how much it left behind instead of waiting forever.
  const size_t abandoned = broker.Drain(milliseconds{1});
  EXPECT_GT(abandoned, 0u);
  for (std::thread& t : askers) t.join();
}

TEST_F(ServeLifecycleTest, HealthProbeReflectsReadiness) {
  const std::string socket_path = UniqueSocketPath();
  ServerOptions options;
  options.socket_path = socket_path;
  PriViewServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Empty registry: live (the probe answers) but not ready.
  StatusOr<PriViewClient> client = PriViewClient::Connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  StatusOr<HealthReport> health = client.value().Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_FALSE(health.value().ready);
  EXPECT_TRUE(health.value().accepting);
  EXPECT_FALSE(health.value().draining);
  EXPECT_TRUE(health.value().store_recovered);
  EXPECT_EQ(health.value().synopses, 0u);
  EXPECT_NE(health.value().raw.find("ready=0"), std::string::npos);

  // Hosting a synopsis flips readiness.
  ASSERT_TRUE(server.registry().Install("s", MakeSynopsis(3)).ok());
  health = client.value().Health();
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health.value().ready);
  EXPECT_EQ(health.value().synopses, 1u);

  // A failed store recovery gates readiness even with synopses hosted.
  server.SetStoreRecovered(false);
  health = client.value().Health();
  ASSERT_TRUE(health.ok());
  EXPECT_FALSE(health.value().ready);
  EXPECT_FALSE(health.value().store_recovered);
  server.SetStoreRecovered(true);
  EXPECT_TRUE(server.Ready());
  server.Stop();
}

TEST_F(ServeLifecycleTest, ConnectIsBoundedAndClassifiedUnavailable) {
  // Nothing listening: the bounded non-blocking connect must come back
  // quickly with the retryable code, not park the thread in connect(2).
  ClientOptions options;
  options.socket_path = ::testing::TempDir() + "/priview_nobody_home.sock";
  options.connect_timeout_ms = 2000;
  const auto t0 = Clock::now();
  StatusOr<PriViewClient> client = PriViewClient::Connect(options);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable)
      << client.status().ToString();
  EXPECT_LT(Clock::now() - t0, milliseconds{5000});

  // With retries on, the connect is retried and still classified; the
  // attempts are visible in the global retry counter.
  obs::Counter* retries = obs::MetricsRegistry::Global().GetCounter(
      "priview_client_retries_total", {});
  const uint64_t retries_before = retries->value();
  options.enable_retries = true;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = milliseconds{1};
  options.retry.max_backoff = milliseconds{2};
  client = PriViewClient::Connect(options);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(retries->value(), retries_before + 2);
}

TEST_F(ServeLifecycleTest, LegacyClientStaysDisconnectedAfterClose) {
  const std::string socket_path = UniqueSocketPath();
  ServerOptions options;
  options.socket_path = socket_path;
  PriViewServer server(options);
  ASSERT_TRUE(server.registry().Install("s", MakeSynopsis(3)).ok());
  ASSERT_TRUE(server.Start().ok());

  StatusOr<PriViewClient> client = PriViewClient::Connect(socket_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().Marginal("s", AttrSet::FromIndices({0})).ok());
  client.value().Close();
  // No retries: the caller owns reconnection, so the request must fail
  // fast and deterministically rather than silently redialing.
  EXPECT_EQ(
      client.value().Marginal("s", AttrSet::FromIndices({0})).status().code(),
      StatusCode::kFailedPrecondition);
  server.Stop();
}

TEST_F(ServeLifecycleTest, SigtermTriggersGracefulDrain) {
  const std::string socket_path = UniqueSocketPath();
  ServerOptions options;
  options.socket_path = socket_path;
  PriViewServer server(options);
  ASSERT_TRUE(server.registry().Install("s", MakeSynopsis(3)).ok());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(InstallSigtermDrain(&server).ok());

  ASSERT_EQ(::raise(SIGTERM), 0);
  // The handler only pokes the self-pipe; the watcher thread runs the
  // drain. Wait for it to take effect.
  const auto deadline = Clock::now() + milliseconds{10'000};
  while (!server.draining() && Clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds{5});
  }
  EXPECT_TRUE(server.draining());
  while (PriViewClient::Connect(socket_path).ok() &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds{5});
  }
  EXPECT_FALSE(PriViewClient::Connect(socket_path).ok());
  EXPECT_FALSE(server.Ready());
  ASSERT_TRUE(InstallSigtermDrain(nullptr).ok());
  server.Stop();  // idempotent with the signal-driven drain
}

TEST_F(ServeLifecycleTest, ClientSurvivesServerRestartWithZeroFailures) {
  // The full resilience story: a durable store feeds server 1; the server
  // is hard-stopped under live client load and a fresh server recovers
  // the same store onto the same socket; a retrying client sees zero
  // failures across the restart.
  const std::string socket_path = UniqueSocketPath();
  const std::string store_dir =
      ::testing::TempDir() + "/priview_lc_store_" + std::to_string(::getpid());
  std::filesystem::remove_all(store_dir);
  store::StoreOptions store_options;
  store_options.dir = store_dir;
  store::SynopsisStore store(store_options);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Install("release", MakeSynopsis(3)).ok());

  ServerOptions server_options;
  server_options.socket_path = socket_path;
  auto server1 = std::make_unique<PriViewServer>(server_options);
  {
    StatusOr<store::RecoveryReport> recovered =
        store.Recover(&server1->registry());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    server1->SetStoreRecovered(true);
  }
  ASSERT_TRUE(server1->Start().ok());
  ASSERT_TRUE(server1->Ready());

  obs::Counter* reconnects = obs::MetricsRegistry::Global().GetCounter(
      "priview_client_reconnects_total", {});
  const uint64_t reconnects_before = reconnects->value();

  ClientOptions client_options;
  client_options.socket_path = socket_path;
  client_options.connect_timeout_ms = 2000;
  client_options.enable_retries = true;
  client_options.retry.max_attempts = 20;
  client_options.retry.initial_backoff = milliseconds{5};
  client_options.retry.max_backoff = milliseconds{100};

  std::atomic<bool> stop{false};
  std::atomic<int> successes{0};
  std::atomic<int> failures{0};
  std::mutex failure_mu;
  std::string first_failure;
  std::thread analyst([&] {
    StatusOr<PriViewClient> client = PriViewClient::Connect(client_options);
    if (!client.ok()) {
      failures.fetch_add(1);
      std::lock_guard<std::mutex> lock(failure_mu);
      if (first_failure.empty()) first_failure = client.status().ToString();
      return;
    }
    while (!stop.load(std::memory_order_relaxed)) {
      StatusOr<ClientTable> answer = client.value().Marginal(
          "release", AttrSet::FromIndices({0, 1}), /*deadline_ms=*/30'000);
      if (answer.ok()) {
        successes.fetch_add(1);
      } else {
        failures.fetch_add(1);
        std::lock_guard<std::mutex> lock(failure_mu);
        if (first_failure.empty()) {
          first_failure = answer.status().ToString();
        }
      }
    }
  });

  // Let traffic flow, then restart out from under it.
  while (successes.load() < 5 && failures.load() == 0) {
    std::this_thread::sleep_for(milliseconds{2});
  }
  server1->Stop();
  auto server2 = std::make_unique<PriViewServer>(server_options);
  {
    StatusOr<store::RecoveryReport> recovered =
        store.Recover(&server2->registry());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    server2->SetStoreRecovered(true);
  }
  ASSERT_TRUE(server2->Start().ok());

  // Traffic must resume against the recovered release.
  const int resumed_target = successes.load() + 5;
  const auto deadline = Clock::now() + milliseconds{30'000};
  while (successes.load() < resumed_target && failures.load() == 0 &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds{5});
  }
  stop.store(true);
  analyst.join();
  server2->Stop();

  EXPECT_EQ(failures.load(), 0)
      << "retrying client saw failures across the restart; first: "
      << first_failure;
  EXPECT_GE(successes.load(), resumed_target);
  // The survival was real: the client had to redial at least once.
  EXPECT_GE(reconnects->value(), reconnects_before + 1);
  std::filesystem::remove_all(store_dir);
}

TEST_F(ServeLifecycleTest, ResourceExhaustedIsNeverRetried) {
#if !PRIVIEW_FAILPOINTS_ENABLED
  GTEST_SKIP() << "failpoints compiled out (PRIVIEW_FAILPOINTS=OFF)";
#endif
  const std::string socket_path = UniqueSocketPath();
  ServerOptions options;
  options.socket_path = socket_path;
  PriViewServer server(options);
  ASSERT_TRUE(server.registry().Install("s", MakeSynopsis(3)).ok());
  ASSERT_TRUE(server.Start().ok());

  ClientOptions client_options;
  client_options.socket_path = socket_path;
  client_options.enable_retries = true;
  client_options.retry.max_attempts = 8;
  client_options.retry.initial_backoff = milliseconds{1};
  StatusOr<PriViewClient> client = PriViewClient::Connect(client_options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  obs::Counter* retries = obs::MetricsRegistry::Global().GetCounter(
      "priview_client_retries_total", {});
  const uint64_t retries_before = retries->value();

  // Every admission sheds: the server answers ResourceExhausted. Arming
  // resets the hit counter, so the count below is exactly the number of
  // admission attempts the client caused.
  failpoint::ScopedFailpoint scoped("serve/queue-full", "always");
  ASSERT_TRUE(scoped.status().ok());
  const Status shed =
      client.value().Marginal("s", AttrSet::FromIndices({0, 1})).status();
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted) << shed.ToString();
  // One request, one admission, zero retries — an 8-attempt policy that
  // retried the shed would show 8 hits here and amplify the overload.
  EXPECT_EQ(failpoint::HitCount("serve/queue-full"), 1u);
  EXPECT_EQ(retries->value(), retries_before);
  server.Stop();
}

}  // namespace
}  // namespace priview::serve
