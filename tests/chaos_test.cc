// Chaos suite: walks every registered failpoint and runs the full
// release/serve pipeline (build → save → load → query) with that fault
// injected. The contract under test is graceful degradation — every call
// either returns a descriptive Status or a finite (possibly degraded)
// answer; nothing aborts, and nothing serves NaN/Inf to an analyst. Run
// under the asan-ubsan preset this also proves the fault paths are UB-free.
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "core/pipeline.h"
#include "core/query_engine.h"
#include "core/serialization.h"
#include "data/synthetic.h"
#include "opt/max_ent_dual.h"
#include "serve/client.h"
#include "serve/request_broker.h"
#include "serve/server.h"
#include "serve/synopsis_registry.h"
#include "serve/wire_protocol.h"
#include "store/synopsis_store.h"
#include "stream/stream_publisher.h"

namespace priview {
namespace {

// Every finite value the engine hands back must be a number an analyst
// could act on; a Status must carry a message worth logging.
void ExpectServable(const StatusOr<double>& answer, const std::string& what) {
  if (answer.ok()) {
    EXPECT_TRUE(std::isfinite(answer.value()))
        << what << " returned non-finite " << answer.value();
  } else {
    EXPECT_FALSE(answer.status().message().empty())
        << what << " failed without a message";
  }
}

void ExpectFiniteTable(const MarginalTable& table, const std::string& what) {
  for (double cell : table.cells()) {
    EXPECT_TRUE(std::isfinite(cell)) << what << " served non-finite cell";
  }
}

// The end-to-end lifecycle under an injected fault. Each stage that fails
// with a Status ends the run (that is a valid degradation); each stage
// that succeeds must hand the next stage servable data.
void RunLifecycleUnderFault(const std::string& fault) {
  Rng rng(1234);
  Dataset data = MakeMsnbcLike(&rng, 4000);
  PipelineOptions options;
  options.total_epsilon = 1.0;

  StatusOr<PipelineResult> built = BuildPriViewPipeline(data, options, &rng);
  if (!built.ok()) {
    EXPECT_FALSE(built.status().message().empty());
    return;
  }

  std::string path = ::testing::TempDir() + "/chaos.pv";
  const Status saved = SaveSynopsis(built.value().synopsis, path);
  if (!saved.ok()) {
    EXPECT_FALSE(saved.message().empty());
    return;
  }

  LoadReport report;
  ReadOptions read_options;
  read_options.recover = true;
  StatusOr<PriViewSynopsis> loaded = LoadSynopsis(path, read_options, &report);
  std::remove(path.c_str());
  if (!loaded.ok()) {
    EXPECT_FALSE(loaded.status().message().empty());
    return;
  }

  StatusOr<QueryEngine> engine = QueryEngine::Create(&loaded.value());
  if (!engine.ok()) {
    EXPECT_FALSE(engine.status().message().empty());
    return;
  }

  const AttrSet scope = AttrSet::FromIndices({0, 3, 6});
  ExpectServable(engine.value().TryConjunctionCount(scope, 0b101),
                 fault + ": conjunction");
  ExpectServable(engine.value().TryProbability(scope, 0b010),
                 fault + ": probability");
  ExpectServable(engine.value().TryConditionalProbability(
                     1, AttrSet::FromIndices({0, 2}), 0b11),
                 fault + ": conditional");
  ExpectServable(engine.value().TryLift(0, 5), fault + ": lift");
  ExpectServable(engine.value().TryMutualInformation(2, 7), fault + ": mi");

  StatusOr<ReconstructionResult> diag =
      engine.value().TryQueryWithDiagnostics(AttrSet::FromIndices({1, 4, 8}));
  if (diag.ok()) {
    ExpectFiniteTable(diag.value().table, fault + ": diagnostics query");
    EXPECT_FALSE(diag.value().diagnostics.ToString().empty());
  } else {
    EXPECT_FALSE(diag.status().message().empty());
  }
}

// The release pipeline answers in-design queries from covering views, so
// the solver stack (IPF, dual max-ent, least-norm) needs an explicitly
// uncovered target to run. Always expected to produce a finite table —
// that is what the fallback chain guarantees.
void RunSolverStackUnderFault(const std::string& fault) {
  Rng rng(11);
  Dataset data = MakeMsnbcLike(&rng, 2000);
  PriViewOptions options;
  options.add_noise = false;
  const PriViewSynopsis synopsis = PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4})},
      options, &rng);
  const AttrSet target = AttrSet::FromIndices({0, 4});
  for (ReconstructionMethod method :
       {ReconstructionMethod::kMaxEntropy, ReconstructionMethod::kLeastNorm,
        ReconstructionMethod::kLinearProgram}) {
    const ReconstructionResult result = ReconstructMarginalWithDiagnostics(
        synopsis.views(), target, synopsis.total(), method);
    ExpectFiniteTable(result.table, fault + ": solver stack");
  }
  std::vector<MarginalConstraint> dual_cs;
  dual_cs.push_back({AttrSet::FromIndices({0}),
                     synopsis.views()[0].Project(AttrSet::FromIndices({0}))});
  dual_cs.push_back({AttrSet::FromIndices({4}),
                     synopsis.views()[1].Project(AttrSet::FromIndices({4}))});
  const MaxEntDualResult dual =
      MaxEntropyDual(target, synopsis.total(), dual_cs);
  ExpectFiniteTable(dual.table, fault + ": dual max-ent");
}

// The serving layer under an injected fault: registry install (hot-swap),
// broker admission + dispatch, and a wire-frame round trip over a real
// socketpair. Exercises the serve/* failpoints ("serve/swap-race" on the
// install, "serve/queue-full" on admission, "serve/io-torn-frame" on the
// frame write) and must degrade to a descriptive Status — never a hang,
// an abort, or a non-finite answer — under *any* armed fault.
void RunServeUnderFault(const std::string& fault) {
  Rng rng(321);
  Dataset data = MakeMsnbcLike(&rng, 2000);
  PriViewOptions options;
  options.add_noise = false;
  PriViewSynopsis synopsis = PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4})},
      options, &rng);

  serve::SynopsisRegistry registry;
  serve::ServerMetrics metrics;
  const Status installed = registry.Install("chaos", std::move(synopsis));
  if (!installed.ok()) {
    EXPECT_FALSE(installed.message().empty())
        << fault << ": install failed without a message";
  }

  serve::RequestBroker broker(&registry, &metrics);
  broker.Start();
  StatusOr<serve::ServedAnswer> answer =
      broker.Ask("chaos", AttrSet::FromIndices({0, 4}));
  if (answer.ok()) {
    ExpectFiniteTable(answer.value().table, fault + ": broker answer");
  } else {
    EXPECT_FALSE(answer.status().message().empty())
        << fault << ": broker failed without a message";
  }
  broker.Stop();

  // One wire frame over a socketpair: a torn write surfaces as IOError on
  // the writer and DataLoss (not a hang) on the reader.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  serve::WireRequest request;
  request.type = serve::MessageType::kMarginal;
  request.synopsis = "chaos";
  request.target_mask = 0b11;
  const Status written =
      serve::WriteFrame(fds[0], serve::EncodeRequest(request));
  ::close(fds[0]);  // writer is done (or dead after a torn write)
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  const Status read = serve::ReadFrame(fds[1], &payload, &clean_eof);
  if (written.ok()) {
    EXPECT_TRUE(read.ok()) << fault << ": " << read.ToString();
    EXPECT_FALSE(clean_eof);
    EXPECT_TRUE(serve::DecodeRequest(payload).ok());
  } else {
    EXPECT_FALSE(written.message().empty());
    EXPECT_FALSE(read.ok()) << fault << ": torn frame read back clean";
  }
  ::close(fds[1]);
}

// A full client round trip through the epoll transport: every supervisor
// fault site is on this route — accept admission ("serve/accept-emfile",
// "serve/half-open"), the event-loop read path ("serve/peer-stall") and
// the completion path ("serve/slow-reader"). Any armed fault must degrade
// to a descriptive Status at the client, never a hang or an abort; the
// connection may die (eviction is the designed response) but the server
// must keep serving fresh connections afterwards.
void RunSupervisorUnderFault(const std::string& fault) {
  Rng rng(808);
  Dataset data = MakeMsnbcLike(&rng, 600);
  PriViewOptions options;
  options.add_noise = false;
  PriViewSynopsis synopsis = PriViewSynopsis::Build(
      data, {AttrSet::FromIndices({0, 1, 2})}, options, &rng);

  static int run = 0;
  serve::ServerOptions server_options;
  server_options.socket_path =
      ::testing::TempDir() + "/chaos_sup_" + std::to_string(run++) + ".sock";
  server_options.io_timeout_ms = 2000;
  server_options.supervisor.handler_threads = 2;
  serve::PriViewServer server(server_options);
  const Status installed =
      server.registry().Install("chaos", std::move(synopsis));
  if (!installed.ok()) {
    EXPECT_FALSE(installed.message().empty());
  }
  const Status started = server.Start();
  ASSERT_TRUE(started.ok()) << fault << ": " << started.ToString();

  serve::ClientOptions client_options;
  client_options.socket_path = server_options.socket_path;
  client_options.connect_timeout_ms = 2000;
  client_options.io_timeout_ms = 2000;
  StatusOr<serve::PriViewClient> client =
      serve::PriViewClient::Connect(client_options);
  if (client.ok()) {
    StatusOr<serve::ClientTable> answer =
        client.value().Marginal("chaos", AttrSet::FromIndices({0, 2}));
    if (answer.ok()) {
      ExpectFiniteTable(answer.value().table, fault + ": supervisor answer");
    } else {
      EXPECT_FALSE(answer.status().message().empty())
          << fault << ": supervisor query failed without a message";
    }
  } else {
    EXPECT_FALSE(client.status().message().empty())
        << fault << ": connect failed without a message";
  }
  server.Stop();
}

// The durable store under an injected fault: open (manifest bootstrap),
// install (temp write → fsync → rename → journal append), retire, and a
// fresh-process recovery scan. Exercises the store/* failpoints
// ("store/fsync-fail" on every durability sync, "store/torn-rename" in
// the rename→journal window, "store/manifest-torn-tail" on the journal
// append). The contract: a failed call leaves the previous durable state
// recoverable — reopening the directory must always succeed, and Recover
// must never install a synopsis that was not durably journaled.
void RunStoreUnderFault(const std::string& fault) {
  static int run = 0;
  const std::string dir =
      ::testing::TempDir() + "/chaos_store_" + std::to_string(run++);

  Rng rng(77);
  Dataset data = MakeMsnbcLike(&rng, 1000);
  PriViewOptions options;
  options.add_noise = false;
  PriViewSynopsis synopsis = PriViewSynopsis::Build(
      data, {AttrSet::FromIndices({0, 1, 2})}, options, &rng);

  store::StoreOptions store_options;
  store_options.dir = dir;
  store::SynopsisStore store(store_options);
  const Status opened = store.Open();
  if (!opened.ok()) {
    EXPECT_FALSE(opened.message().empty())
        << fault << ": store open failed without a message";
    return;
  }
  const Status installed = store.Install("chaos", synopsis);
  if (!installed.ok()) {
    EXPECT_FALSE(installed.message().empty())
        << fault << ": store install failed without a message";
  }

  // A fresh handle on the same directory models a process restart: the
  // manifest replay plus recovery scan must degrade to a Status, never
  // resurrect torn state into the registry.
  store::SynopsisStore reopened(store_options);
  const Status reopen = reopened.Open();
  if (!reopen.ok()) {
    EXPECT_FALSE(reopen.message().empty())
        << fault << ": store reopen failed without a message";
    return;
  }
  serve::SynopsisRegistry registry;
  StatusOr<store::RecoveryReport> recovered = reopened.Recover(&registry);
  if (recovered.ok()) {
    if (installed.ok() && reopened.Current().count("chaos") == 0) {
      // A read-side fault still armed at recovery (e.g. serialize/*) may
      // make the durable release unloadable — then it must land in
      // quarantine or a warning, never vanish silently.
      EXPECT_FALSE(recovered.value().quarantined.empty() &&
                   recovered.value().warnings.empty())
          << fault << ": durable install vanished without a trace";
    }
    EXPECT_LE(registry.size(), 1u);
    EXPECT_FALSE(recovered.value().ToString().empty());
  } else {
    EXPECT_FALSE(recovered.status().message().empty())
        << fault << ": recovery failed without a message";
  }
}

// The streaming epoch loop under an injected fault: budget carve, window
// advance, delta recount, side build, hot-swap. Any failing epoch must
// surface a typed Status (budget refusals, injected rollover aborts); a
// succeeding epoch must leave the registry serving exactly one release.
void RunStreamUnderFault(const std::string& fault) {
  Rng rng(4242);
  serve::SynopsisRegistry registry;
  registry.set_history_depth(2);

  stream::StreamOptions options;
  options.name = "chaos-stream";
  options.d = 4;
  options.mode = WindowMode::kSliding;
  options.window_batches = 2;
  options.views = {AttrSet::FromIndices({0, 1}), AttrSet::FromIndices({2, 3})};
  options.total_epsilon = 2.0;
  options.epoch_epsilon = 0.5;
  StatusOr<stream::StreamPublisher> publisher =
      stream::StreamPublisher::Create(options, nullptr, &registry, &rng);
  ASSERT_TRUE(publisher.ok()) << fault << ": " << publisher.status().message();

  const std::vector<uint64_t> batch = {0, 1, 3, 5, 7, 11, 13, 15};
  for (int epoch = 0; epoch < 2; ++epoch) {
    const Status ingested = publisher.value().Ingest(batch);
    if (!ingested.ok()) {
      EXPECT_FALSE(ingested.message().empty())
          << fault << ": stream ingest failed without a message";
      return;
    }
    StatusOr<stream::EpochReport> report = publisher.value().PublishEpoch();
    if (!report.ok()) {
      EXPECT_FALSE(report.status().message().empty())
          << fault << ": epoch publish failed without a message";
      continue;
    }
    StatusOr<std::shared_ptr<const serve::HostedSynopsis>> hosted =
        registry.Acquire("chaos-stream");
    ASSERT_TRUE(hosted.ok())
        << fault << ": published epoch is not being served";
    StatusOr<MarginalTable> answer =
        hosted.value()->engine().TryMarginal(AttrSet::FromIndices({0, 1}));
    if (answer.ok()) {
      ExpectFiniteTable(answer.value(),
                        fault + ": stream-served marginal at epoch " +
                            std::to_string(epoch));
    }
  }
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !PRIVIEW_FAILPOINTS_ENABLED
    GTEST_SKIP() << "failpoints compiled out (PRIVIEW_FAILPOINTS=OFF)";
#endif
    // Armed tracing is part of the surface under chaos: spans must survive
    // every fault, and the "obs/span-torn" site only exists inside an
    // armed span's End().
    obs::Tracer::Global().Arm();
  }
  ~ChaosTest() override {
    obs::Tracer::Global().Disarm();
    failpoint::DisarmAll();
    parallel::SetThreadCount(0);
  }
};

TEST_F(ChaosTest, EveryKnownFailpointDegradesGracefully) {
  for (const std::string& fault : failpoint::KnownFailpoints()) {
    SCOPED_TRACE("failpoint: " + fault);
    failpoint::ScopedFailpoint scoped(fault, "always");
    ASSERT_TRUE(scoped.status().ok());
    RunLifecycleUnderFault(fault);
    RunSolverStackUnderFault(fault);
    RunServeUnderFault(fault);
    RunSupervisorUnderFault(fault);
    RunStoreUnderFault(fault);
    RunStreamUnderFault(fault);
  }
}

TEST_F(ChaosTest, EveryKnownFailpointFiresSomewhereInTheLifecycle) {
  // Guards against a registered name drifting out of sync with the wired
  // sites: under "off" the site still counts hits, so a zero count means
  // the failpoint is not wired into any path the suite exercises.
  for (const std::string& fault : failpoint::KnownFailpoints()) {
    SCOPED_TRACE("failpoint: " + fault);
    failpoint::ScopedFailpoint scoped(fault, "off");
    ASSERT_TRUE(scoped.status().ok());
    RunLifecycleUnderFault(fault);
    RunSolverStackUnderFault(fault);
    RunServeUnderFault(fault);
    RunSupervisorUnderFault(fault);
    RunStoreUnderFault(fault);
    RunStreamUnderFault(fault);
    EXPECT_GT(failpoint::HitCount(fault), 0u) << fault << " never evaluated";
  }
}

TEST_F(ChaosTest, TornSpanNeverCorruptsTheRegistry) {
  // A span abandoned mid-fault must be counted as torn — not recorded as a
  // junk duration — and must leave the registry and the thread-local depth
  // accounting in a state where later spans record normally.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* torn = registry.GetCounter("priview_spans_torn_total");
  obs::Histogram* publish =
      registry.GetHistogram("priview_span_duration_us", {{"span", "publish"}});
  const uint64_t torn_before = torn->value();
  const uint64_t recorded_during = [&] {
    failpoint::ScopedFailpoint scoped("obs/span-torn", "always");
    EXPECT_TRUE(scoped.status().ok());
    const uint64_t before = publish->total_count();
    RunLifecycleUnderFault("obs/span-torn");
    return publish->total_count() - before;
  }();
  // Every span end under the fault was torn: counted, never observed.
  EXPECT_GT(torn->value(), torn_before);
  EXPECT_EQ(recorded_during, 0u);

  // With the fault gone, a fresh publish records again — the torn spans
  // did not skew the depth bookkeeping or wedge the registry.
  const uint64_t publish_before = publish->total_count();
  Rng rng(4321);
  Dataset data = MakeMsnbcLike(&rng, 2000);
  PipelineOptions options;
  options.total_epsilon = 1.0;
  StatusOr<PipelineResult> built = BuildPriViewPipeline(data, options, &rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_GT(publish->total_count(), publish_before);

  // And the exposition still renders whole: torn counter present,
  // histogram families intact.
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("priview_spans_torn_total"), std::string::npos);
  EXPECT_NE(text.find("priview_span_duration_us_bucket"), std::string::npos);
}

TEST_F(ChaosTest, IntermittentFaultsDegradeOnlyTheFaultyCall) {
  // A fault on the 1st Laplace draw only: the pipeline must still produce
  // a servable synopsis (the noisy-count floor absorbs the bad sample).
  failpoint::ScopedFailpoint scoped("rng/laplace-nan", "hit=1");
  ASSERT_TRUE(scoped.status().ok());
  Rng rng(99);
  Dataset data = MakeMsnbcLike(&rng, 4000);
  PipelineOptions options;
  options.total_epsilon = 1.0;
  StatusOr<PipelineResult> built = BuildPriViewPipeline(data, options, &rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const MarginalTable answer =
      built.value().synopsis.Query(AttrSet::FromIndices({0, 4}));
  ExpectFiniteTable(answer, "post-intermittent-fault query");
}

TEST_F(ChaosTest, SolverStallFallsBackDownTheChain) {
  // With IPF stalled, reconstruction must fall back (least-norm) and say
  // so in the diagnostics; with the whole chain junked it must land on
  // the uniform table.
  Rng rng(5);
  Dataset data = MakeMsnbcLike(&rng, 4000);
  PriViewOptions options;
  options.add_noise = false;
  const PriViewSynopsis synopsis = PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4})},
      options, &rng);
  const AttrSet target = AttrSet::FromIndices({0, 4});  // needs a solver

  {
    failpoint::ScopedFailpoint scoped("ipf/stall", "always");
    const ReconstructionResult result = ReconstructMarginalWithDiagnostics(
        synopsis.views(), target, synopsis.total(),
        ReconstructionMethod::kMaxEntropy);
    ExpectFiniteTable(result.table, "ipf-stall fallback");
    EXPECT_EQ(result.diagnostics.used, ReconstructionMethod::kLeastNorm);
    EXPECT_GE(result.diagnostics.fallbacks, 1);
    EXPECT_FALSE(result.diagnostics.clean());
  }
  {
    failpoint::ScopedFailpoint scoped("reconstruct/primary-junk", "always");
    const ReconstructionResult result = ReconstructMarginalWithDiagnostics(
        synopsis.views(), target, synopsis.total(),
        ReconstructionMethod::kMaxEntropy);
    ExpectFiniteTable(result.table, "uniform fallback");
    EXPECT_TRUE(result.diagnostics.used_uniform_fallback);
    // Uniform still integrates to the synopsis total.
    EXPECT_NEAR(result.table.Total(), synopsis.total(),
                1e-9 * std::max(1.0, synopsis.total()));
  }
}

TEST_F(ChaosTest, NanCellFromSolverIsNeverServed) {
  Rng rng(6);
  Dataset data = MakeMsnbcLike(&rng, 4000);
  PriViewOptions options;
  options.add_noise = false;
  const PriViewSynopsis synopsis = PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4})},
      options, &rng);
  failpoint::ScopedFailpoint scoped("ipf/nan-cell", "always");
  const ReconstructionResult result = ReconstructMarginalWithDiagnostics(
      synopsis.views(), AttrSet::FromIndices({0, 4}), synopsis.total(),
      ReconstructionMethod::kMaxEntropy);
  ExpectFiniteTable(result.table, "nan-cell fallback");
  EXPECT_GT(result.diagnostics.non_finite_cells, 0);
  EXPECT_NE(result.diagnostics.used, ReconstructionMethod::kMaxEntropy);
}

TEST_F(ChaosTest, ThreadPoolFaultsAreRecoveredBitIdentically) {
  // Intermittent task faults on a multi-threaded build must be absorbed by
  // the pool's inline retry: the synopsis is not merely servable, it is
  // bit-identical to the unfaulted build with the same seed.
  Rng clean_rng(314);
  Dataset data = MakeMsnbcLike(&clean_rng, 4000);
  PriViewOptions options;
  options.epsilon = 1.0;
  const std::vector<AttrSet> views = {AttrSet::FromIndices({0, 1, 2, 3}),
                                      AttrSet::FromIndices({2, 3, 4, 5}),
                                      AttrSet::FromIndices({0, 4, 6, 8})};
  parallel::SetThreadCount(4);
  Rng build_rng(2718);
  const PriViewSynopsis clean =
      PriViewSynopsis::Build(data, views, options, &build_rng);

  {
    failpoint::ScopedFailpoint scoped("parallel/task-throw", "p=0.5,seed=27");
    ASSERT_TRUE(scoped.status().ok());
    Rng faulted_rng(2718);
    const PriViewSynopsis faulted =
        PriViewSynopsis::Build(data, views, options, &faulted_rng);
    ASSERT_EQ(faulted.views().size(), clean.views().size());
    for (size_t v = 0; v < clean.views().size(); ++v) {
      EXPECT_EQ(faulted.views()[v].cells(), clean.views()[v].cells())
          << "view " << v << " diverged under injected task faults";
    }
  }
  parallel::SetThreadCount(0);
}

TEST_F(ChaosTest, BoundaryValidationNeverAborts) {
  // Malformed analyst input at every public API boundary returns Status.
  Rng rng(7);
  Dataset data = MakeMsnbcLike(&rng, 2000);
  PriViewOptions options;
  options.add_noise = false;
  const PriViewSynopsis synopsis = PriViewSynopsis::Build(
      data, {AttrSet::FromIndices({0, 1, 2})}, options, &rng);

  EXPECT_FALSE(QueryEngine::Create(nullptr).ok());

  StatusOr<QueryEngine> engine = QueryEngine::Create(&synopsis);
  ASSERT_TRUE(engine.ok());
  // Scope outside the universe.
  EXPECT_FALSE(
      engine.value().TryConjunctionCount(AttrSet::FromIndices({40}), 0).ok());
  // Assignment out of range for the scope.
  EXPECT_FALSE(
      engine.value().TryConjunctionCount(AttrSet::FromIndices({0, 1}), 9).ok());
  // Target attribute inside the condition.
  EXPECT_FALSE(engine.value()
                   .TryConditionalProbability(0, AttrSet::FromIndices({0}), 1)
                   .ok());
  // Out-of-range attributes.
  EXPECT_FALSE(engine.value().TryLift(0, 99).ok());
  EXPECT_FALSE(engine.value().TryMutualInformation(-1, 2).ok());
  // Self-information requests.
  EXPECT_FALSE(engine.value().TryLift(1, 1).ok());

  // The legacy double API degrades to NaN, not an abort.
  EXPECT_TRUE(std::isnan(
      engine.value().ConjunctionCount(AttrSet::FromIndices({40}), 0)));

  // Synopsis-level boundaries.
  EXPECT_FALSE(synopsis.TryQuery(AttrSet::FromIndices({40})).ok());
  EXPECT_FALSE(
      PriViewSynopsis::TryFromViews(0, {MarginalTable(AttrSet::FromIndices({0}))},
                                    options)
          .ok());
  EXPECT_FALSE(PriViewSynopsis::TryFromViews(2, {}, options).ok());
  EXPECT_FALSE(
      PriViewSynopsis::TryBuild(data, {}, options, &rng).ok());
  EXPECT_FALSE(
      PriViewSynopsis::TryBuild(data, {AttrSet::FromIndices({0})}, options,
                                nullptr)
          .ok());
}

}  // namespace
}  // namespace priview
