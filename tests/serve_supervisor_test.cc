// ConnectionSupervisor unit tests: the epoll transport driven directly
// with raw sockets and a controllable handler, so every defense fires
// deterministically — slowloris eviction, idle/half-open eviction, egress
// bounds and write-stall eviction, pipelining caps, connection caps,
// overload shedding, and shutdown straggler cleanup.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/connection_supervisor.h"
#include "serve/server_metrics.h"
#include "serve/wire_protocol.h"

namespace priview {
namespace {

using serve::ConnectionSupervisor;
using serve::EvictionCause;
using serve::ServerMetrics;
using serve::ShedCause;
using serve::SupervisorOptions;
using std::chrono::milliseconds;

int MakeUnixListener(const std::string& path) {
  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EXPECT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  EXPECT_EQ(::listen(fd, 128), 0);
  return fd;
}

int ConnectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

bool WaitFor(const std::function<bool()>& pred, milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return pred();
}

/// True when reading `fd` yields EOF (or a reset) within `timeout` — the
/// observable verdict of an eviction from the peer's side. Polls with
/// MSG_DONTWAIT (any data is drained and discarded) so a missing eviction
/// reports as a failed expectation, never as a hung blocking read.
bool PeerSeesClose(int fd, milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  char buf[4096];
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n == 0) return true;  // EOF: the supervisor closed us
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return false;
}

std::vector<uint8_t> EchoHandler(std::vector<uint8_t> payload) {
  return payload;
}

class SupervisorTest : public ::testing::Test {
 protected:
  std::string SockPath(const std::string& tag) {
    return ::testing::TempDir() + "/sup_" + tag + ".sock";
  }

  /// Builds and starts a supervisor over a fresh Unix listener.
  void StartSupervisor(const std::string& tag, SupervisorOptions options,
                       ConnectionSupervisor::Handler handler) {
    path_ = SockPath(tag);
    listener_ = MakeUnixListener(path_);
    supervisor_ = std::make_unique<ConnectionSupervisor>(options, &metrics_,
                                                         std::move(handler));
    ASSERT_TRUE(supervisor_->Start(listener_, -1).ok());
  }

  void TearDown() override {
    if (supervisor_ != nullptr) supervisor_->Stop();
    if (!path_.empty()) ::unlink(path_.c_str());
  }

  ServerMetrics metrics_;
  std::unique_ptr<ConnectionSupervisor> supervisor_;
  std::string path_;
  int listener_ = -1;
};

TEST_F(SupervisorTest, EchoRoundTripAndCleanClose) {
  StartSupervisor("echo", SupervisorOptions{}, EchoHandler);
  const int fd = ConnectUnix(path_);
  const std::vector<uint8_t> request = {1, 2, 3, 4};
  ASSERT_TRUE(serve::WriteFrame(fd, request).ok());
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  ASSERT_TRUE(serve::ReadFrame(fd, &payload, &clean_eof, 5000).ok());
  EXPECT_FALSE(clean_eof);
  EXPECT_EQ(payload, request);
  EXPECT_TRUE(WaitFor([&] { return supervisor_->open_connections() == 1; },
                      milliseconds(1000)));
  ::close(fd);
  EXPECT_TRUE(WaitFor([&] { return supervisor_->open_connections() == 0; },
                      milliseconds(1000)));
  // A clean close is not an eviction.
  EXPECT_EQ(metrics_.TakeSnapshot().TotalEvictions(), 0u);
}

TEST_F(SupervisorTest, PipelinedFramesAnswerInOrder) {
  StartSupervisor("pipeline", SupervisorOptions{}, EchoHandler);
  const int fd = ConnectUnix(path_);
  // All three frames land in one burst; responses must come back in
  // request order even though the handler pool is concurrent.
  std::vector<uint8_t> burst;
  for (uint8_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(serve::AppendFrame(&burst, {uint8_t(10 + i)}).ok());
  }
  ASSERT_EQ(::write(fd, burst.data(), burst.size()), ssize_t(burst.size()));
  for (uint8_t i = 0; i < 3; ++i) {
    std::vector<uint8_t> payload;
    bool clean_eof = false;
    ASSERT_TRUE(serve::ReadFrame(fd, &payload, &clean_eof, 5000).ok());
    ASSERT_EQ(payload.size(), 1u);
    EXPECT_EQ(payload[0], 10 + i) << "responses reordered";
  }
  ::close(fd);
}

TEST_F(SupervisorTest, SlowlorisMidFrameIsEvictedAtTheDeadline) {
  SupervisorOptions options;
  options.io_timeout_ms = 100;
  StartSupervisor("slowloris", options, EchoHandler);
  const int fd = ConnectUnix(path_);
  // Two header bytes, then silence: a started frame that never finishes.
  const uint8_t partial[2] = {9, 9};
  ASSERT_EQ(::write(fd, partial, sizeof(partial)), 2);
  EXPECT_TRUE(PeerSeesClose(fd, milliseconds(3000)))
      << "stalled mid-frame peer was never evicted";
  EXPECT_TRUE(WaitFor(
      [&] {
        return metrics_.TakeSnapshot()
                   .evictions[int(EvictionCause::kFrameStall)] > 0;
      },
      milliseconds(1000)));
  ::close(fd);
}

TEST_F(SupervisorTest, TricklingBytesDoesNotResetTheFrameDeadline) {
  SupervisorOptions options;
  options.io_timeout_ms = 150;
  StartSupervisor("trickle", options, EchoHandler);
  const int fd = ConnectUnix(path_);
  // A classic slowloris drips one byte per interval to defeat idle timers
  // that reset on any activity. The per-frame deadline is armed at the
  // frame's first byte and never pushed, so the drip must still die.
  const auto start = std::chrono::steady_clock::now();
  const uint8_t byte = 1;
  bool closed = false;
  for (int i = 0; i < 40 && !closed; ++i) {
    if (::write(fd, &byte, 1) < 0) closed = true;
    std::this_thread::sleep_for(milliseconds(20));
    char probe;
    const ssize_t n = ::recv(fd, &probe, 1, MSG_DONTWAIT);
    if (n == 0) closed = true;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(closed) << "trickling peer outlived the frame deadline";
  EXPECT_LT(elapsed, std::chrono::seconds(3));
  ::close(fd);
}

TEST_F(SupervisorTest, IdleConnectionIsHealthyWithoutIdleTimeout) {
  SupervisorOptions options;
  options.io_timeout_ms = 100;  // frame deadline only — no frame started
  StartSupervisor("idleok", options, EchoHandler);
  const int fd = ConnectUnix(path_);
  std::this_thread::sleep_for(milliseconds(400));
  // Still alive and serving after sitting idle far past the io deadline.
  ASSERT_TRUE(serve::WriteFrame(fd, {7}).ok());
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  ASSERT_TRUE(serve::ReadFrame(fd, &payload, &clean_eof, 5000).ok());
  EXPECT_EQ(payload, std::vector<uint8_t>{7});
  EXPECT_EQ(metrics_.TakeSnapshot().TotalEvictions(), 0u);
  ::close(fd);
}

TEST_F(SupervisorTest, HalfOpenPeerEvictedByIdleTimeout) {
  SupervisorOptions options;
  options.idle_timeout_ms = 100;
  StartSupervisor("halfopen", options, EchoHandler);
  const int fd = ConnectUnix(path_);
  EXPECT_TRUE(PeerSeesClose(fd, milliseconds(3000)))
      << "half-open peer outlived the idle deadline";
  EXPECT_TRUE(WaitFor(
      [&] {
        return metrics_.TakeSnapshot().evictions[int(EvictionCause::kIdle)] >
               0;
      },
      milliseconds(1000)));
  ::close(fd);
}

TEST_F(SupervisorTest, ConnectionCapShedsExcessAccepts) {
  SupervisorOptions options;
  options.max_connections = 2;
  StartSupervisor("conncap", options, EchoHandler);
  const int a = ConnectUnix(path_);
  const int b = ConnectUnix(path_);
  // Make sure both are admitted before the third knocks.
  ASSERT_TRUE(WaitFor([&] { return supervisor_->open_connections() == 2; },
                      milliseconds(1000)));
  const int c = ConnectUnix(path_);
  EXPECT_TRUE(PeerSeesClose(c, milliseconds(2000)))
      << "over-cap connection was admitted";
  EXPECT_TRUE(WaitFor(
      [&] {
        return metrics_.TakeSnapshot().shed_accepts[int(ShedCause::kConnCap)] >
               0;
      },
      milliseconds(1000)));
  // The admitted two still serve.
  ASSERT_TRUE(serve::WriteFrame(a, {1}).ok());
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  ASSERT_TRUE(serve::ReadFrame(a, &payload, &clean_eof, 5000).ok());
  ::close(a);
  ::close(b);
  ::close(c);
}

TEST_F(SupervisorTest, PipelineOverflowEvictsAbusivePeer) {
  SupervisorOptions options;
  options.max_pipelined_frames = 2;
  options.handler_threads = 1;
  std::atomic<bool> release{false};
  StartSupervisor("pipecap", options, [&](std::vector<uint8_t> payload) {
    // Park the single handler so pending frames pile up on the conn.
    while (!release.load()) std::this_thread::sleep_for(milliseconds(5));
    return payload;
  });
  const int fd = ConnectUnix(path_);
  std::vector<uint8_t> burst;
  for (uint8_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(serve::AppendFrame(&burst, {i}).ok());
  }
  ASSERT_EQ(::write(fd, burst.data(), burst.size()), ssize_t(burst.size()));
  EXPECT_TRUE(WaitFor(
      [&] {
        return metrics_.TakeSnapshot()
                   .evictions[int(EvictionCause::kPipelineOverflow)] > 0;
      },
      milliseconds(3000)))
      << "6 outstanding frames against a cap of 2 did not evict";
  release.store(true);
  EXPECT_TRUE(PeerSeesClose(fd, milliseconds(2000)));
  ::close(fd);
}

TEST_F(SupervisorTest, ResponseBeyondEgressBudgetEvicts) {
  SupervisorOptions options;
  options.max_egress_bytes = 4096;
  StartSupervisor("egress", options, [](std::vector<uint8_t>) {
    return std::vector<uint8_t>(64 * 1024, 0xAB);  // 16x the egress bound
  });
  const int fd = ConnectUnix(path_);
  ASSERT_TRUE(serve::WriteFrame(fd, {1}).ok());
  EXPECT_TRUE(PeerSeesClose(fd, milliseconds(3000)));
  EXPECT_TRUE(WaitFor(
      [&] {
        return metrics_.TakeSnapshot()
                   .evictions[int(EvictionCause::kEgressOverflow)] > 0;
      },
      milliseconds(1000)));
  ::close(fd);
}

TEST_F(SupervisorTest, PeerThatStopsDrainingIsEvictedAtWriteStall) {
  SupervisorOptions options;
  options.io_timeout_ms = 150;
  StartSupervisor("wstall", options, [](std::vector<uint8_t>) {
    // Big enough that several responses outrun the kernel socket buffers,
    // leaving un-sent egress whose write deadline can expire.
    return std::vector<uint8_t>(512 * 1024, 0x5A);
  });
  const int fd = ConnectUnix(path_);
  // Shrink this side's receive buffer so the server-side egress jams fast.
  const int small = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  std::vector<uint8_t> burst;
  for (uint8_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(serve::AppendFrame(&burst, {i}).ok());
  }
  ASSERT_EQ(::write(fd, burst.data(), burst.size()), ssize_t(burst.size()));
  // Never read a byte: the egress stalls, the write deadline expires.
  EXPECT_TRUE(WaitFor(
      [&] {
        return metrics_.TakeSnapshot()
                   .evictions[int(EvictionCause::kEgressOverflow)] > 0;
      },
      milliseconds(5000)))
      << "non-draining peer was never evicted";
  ::close(fd);
}

TEST_F(SupervisorTest, OversizedHeaderIsAProtocolErrorEviction) {
  StartSupervisor("liar", SupervisorOptions{}, EchoHandler);
  const int fd = ConnectUnix(path_);
  // Declared length far over kMaxFramePayload: unsyncable stream.
  const uint8_t liar[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_EQ(::write(fd, liar, sizeof(liar)), 4);
  EXPECT_TRUE(PeerSeesClose(fd, milliseconds(3000)));
  EXPECT_TRUE(WaitFor(
      [&] {
        return metrics_.TakeSnapshot()
                   .evictions[int(EvictionCause::kProtocolError)] > 0;
      },
      milliseconds(1000)));
  ::close(fd);
}

TEST_F(SupervisorTest, OverloadSheddingFollowsTheQueueWaitWindow) {
  SupervisorOptions options;
  options.shed_queue_wait_p99_us = 1000;  // 1ms
  StartSupervisor("overload", options, EchoHandler);
  EXPECT_FALSE(supervisor_->shedding());
  // Report pathological queue waits continuously — the shedding verdict is
  // windowed (observations age out after one 500ms window, by design), so
  // a one-shot burst before the window opens would correctly be ignored.
  EXPECT_TRUE(WaitFor(
      [&] {
        for (int i = 0; i < 50; ++i) metrics_.RecordQueueWait(250'000);
        return supervisor_->shedding();
      },
      milliseconds(3000)))
      << "250ms queue waits never tripped a 1ms p99 threshold";
  // While shedding, a new accept is closed immediately and counted. Keep
  // the current window hot so the verdict cannot clear mid-check.
  for (int i = 0; i < 50; ++i) metrics_.RecordQueueWait(250'000);
  const int fd = ConnectUnix(path_);
  EXPECT_TRUE(PeerSeesClose(fd, milliseconds(2000)));
  ::close(fd);
  EXPECT_GT(
      metrics_.TakeSnapshot().shed_accepts[int(ShedCause::kOverload)], 0u);
  // A quiet window (no queue-wait observations at all) must clear it —
  // shedding that latches forever is an outage, not a defense.
  EXPECT_TRUE(WaitFor([&] { return !supervisor_->shedding(); },
                      milliseconds(2000)))
      << "shedding latched after the overload cleared";
  const int ok_fd = ConnectUnix(path_);
  ASSERT_TRUE(serve::WriteFrame(ok_fd, {3}).ok());
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  EXPECT_TRUE(serve::ReadFrame(ok_fd, &payload, &clean_eof, 5000).ok());
  ::close(ok_fd);
}

TEST_F(SupervisorTest, StopEvictsStragglersAsShutdown) {
  StartSupervisor("stop", SupervisorOptions{}, EchoHandler);
  std::vector<int> fds;
  for (int i = 0; i < 5; ++i) fds.push_back(ConnectUnix(path_));
  ASSERT_TRUE(WaitFor([&] { return supervisor_->open_connections() == 5; },
                      milliseconds(2000)));
  supervisor_->Stop();
  EXPECT_EQ(supervisor_->open_connections(), 0u);
  const ServerMetrics::Snapshot s = metrics_.TakeSnapshot();
  EXPECT_EQ(s.evictions[int(EvictionCause::kShutdown)], 5u);
  EXPECT_EQ(s.connections_opened, s.connections_closed);
  for (int fd : fds) ::close(fd);
}

TEST_F(SupervisorTest, CloseListenersRefusesNewButServesExisting) {
  StartSupervisor("drainstep", SupervisorOptions{}, EchoHandler);
  const int live = ConnectUnix(path_);
  ASSERT_TRUE(WaitFor([&] { return supervisor_->open_connections() == 1; },
                      milliseconds(1000)));
  supervisor_->CloseListeners();
  // New connects are refused by the kernel (no listener on the path).
  const int refused = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
  EXPECT_NE(::connect(refused, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ::close(refused);
  // The live connection still round-trips.
  ASSERT_TRUE(serve::WriteFrame(live, {5}).ok());
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  ASSERT_TRUE(serve::ReadFrame(live, &payload, &clean_eof, 5000).ok());
  EXPECT_EQ(payload, std::vector<uint8_t>{5});
  ::close(live);
}

TEST_F(SupervisorTest, EgressHighWaterMarkIsExported) {
  StartSupervisor("hwm", SupervisorOptions{}, [](std::vector<uint8_t>) {
    return std::vector<uint8_t>(32 * 1024, 1);
  });
  const int fd = ConnectUnix(path_);
  ASSERT_TRUE(serve::WriteFrame(fd, {1}).ok());
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  ASSERT_TRUE(serve::ReadFrame(fd, &payload, &clean_eof, 5000).ok());
  ::close(fd);
  // The 32KiB response transited the egress buffer; the ratcheted gauge
  // must have seen at least frame-header + payload.
  const std::string scrape = metrics_.registry().RenderPrometheus();
  EXPECT_NE(scrape.find("priview_serve_egress_buffer_hwm_bytes"),
            std::string::npos);
}

}  // namespace
}  // namespace priview
