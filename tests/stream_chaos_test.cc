// Crash matrix for the streaming epoch rollover: a forked child publishes
// one clean epoch, arms one rollover-window fault (store durability
// faults, the durable-but-not-swapped "stream/rollover-abort" window, a
// raced registry swap), attempts a second epoch, and dies via _exit — no
// destructors, no cleanup. The parent then recovers the store directory
// like a restarted process and asserts the single-epoch contract: the
// registry serves EXACTLY the previous epoch or EXACTLY the new one
// (decided by whether the store's journal append happened), bit-identical
// to a clean-room replay of that many epochs — never a mix, never torn
// state. A follow-up publish proves registry epochs stay monotonic across
// the restart.
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "serve/synopsis_registry.h"
#include "store/synopsis_store.h"
#include "stream/stream_publisher.h"
#include "table/attr_set.h"

#if defined(__SANITIZE_THREAD__)
#define PRIVIEW_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PRIVIEW_TSAN 1
#endif
#endif
#ifndef PRIVIEW_TSAN
#define PRIVIEW_TSAN 0
#endif

namespace priview::stream {
namespace {

constexpr int kD = 8;
constexpr uint64_t kDataSeed = 404;
constexpr uint64_t kNoiseSeed = 505;

StreamOptions MatrixStream() {
  StreamOptions options;
  options.name = "release";
  options.d = kD;
  options.mode = WindowMode::kSliding;
  options.window_batches = 2;
  options.views = {AttrSet::FromIndices({0, 1, 2}),
                   AttrSet::FromIndices({2, 3, 4}),
                   AttrSet::FromIndices({5, 6, 7})};
  options.total_epsilon = 10.0;
  options.epoch_epsilon = 0.5;
  return options;
}

std::vector<uint64_t> EpochBatch(Rng* rng, size_t n) {
  const uint64_t universe = (uint64_t{1} << kD) - 1;
  std::vector<uint64_t> records(n);
  for (uint64_t& record : records) record = rng->NextUint64() & universe;
  return records;
}

store::StoreOptions MatrixStoreOptions(const std::string& dir) {
  store::StoreOptions options;
  options.dir = dir;
  // Keep every epoch file resident so install-time GC never interleaves
  // extra manifest seqs into the matrix's expected numbering.
  options.retention_depth = 8;
  return options;
}

/// Replays `epochs` publishes with the matrix seeds into `registry` (and
/// `store` when given). Everything is deterministic — same batches, same
/// rng fork sequence — so the replayed release at epoch k is bit-identical
/// to what the crashed child built at epoch k.
Status ReplayEpochs(int epochs, store::SynopsisStore* store,
                    serve::SynopsisRegistry* registry, uint64_t* last_epoch) {
  Rng noise_rng(kNoiseSeed);
  Rng data_rng(kDataSeed);
  StatusOr<StreamPublisher> publisher =
      StreamPublisher::Create(MatrixStream(), store, registry, &noise_rng);
  if (!publisher.ok()) return publisher.status();
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const Status ingested = publisher.value().Ingest(EpochBatch(&data_rng, 200));
    if (!ingested.ok()) return ingested;
    StatusOr<EpochReport> report = publisher.value().PublishEpoch();
    if (!report.ok()) return report.status();
    if (last_epoch != nullptr) *last_epoch = report.value().epoch;
  }
  return Status::OK();
}

struct RolloverCase {
  const char* fault;  // empty = clean control run
  /// Epochs durably on disk after the crash: 1 when the fault lands
  /// before the store's journal append, 2 when it lands after.
  int durable_epochs;
};

class StreamCrashMatrixTest
    : public ::testing::TestWithParam<RolloverCase> {
 protected:
  void SetUp() override {
#if PRIVIEW_TSAN
    GTEST_SKIP() << "fork-based crash matrix is not tsan-compatible";
#endif
#if !PRIVIEW_FAILPOINTS_ENABLED
    GTEST_SKIP() << "failpoints compiled out (PRIVIEW_FAILPOINTS=OFF)";
#endif
    // Single-threaded process so fork() is safe and the noise sequence is
    // trivially reproducible in the replay.
    parallel::SetThreadCount(1);
    std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& ch : name) {
      if (ch == '/') ch = '_';
    }
    dir_ = ::testing::TempDir() + "/stream_crash_" + name;
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    parallel::SetThreadCount(0);
    failpoint::DisarmAll();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::string dir_;
};

TEST_P(StreamCrashMatrixTest, RecoveryLandsOnExactlyOneEpoch) {
  const RolloverCase& c = GetParam();
  SCOPED_TRACE(std::string("fault: ") +
               (*c.fault ? c.fault : "<none (control)>"));

  // --- child: one clean epoch, then a faulted rollover, then a hard die.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    store::SynopsisStore store(MatrixStoreOptions(dir_));
    if (!store.Open().ok()) _exit(10);
    serve::SynopsisRegistry registry;
    registry.set_history_depth(4);
    Rng noise_rng(kNoiseSeed);
    Rng data_rng(kDataSeed);
    StatusOr<StreamPublisher> publisher =
        StreamPublisher::Create(MatrixStream(), &store, &registry, &noise_rng);
    if (!publisher.ok()) _exit(11);
    if (!publisher.value().Ingest(EpochBatch(&data_rng, 200)).ok()) _exit(12);
    if (!publisher.value().PublishEpoch().ok()) _exit(13);

    if (*c.fault && !failpoint::Arm(c.fault, "always").ok()) _exit(9);
    if (!publisher.value().Ingest(EpochBatch(&data_rng, 200)).ok()) _exit(14);
    const StatusOr<EpochReport> second = publisher.value().PublishEpoch();
    // A fault must surface as a typed Status; the control run must publish.
    if (second.ok() != (*c.fault == '\0')) _exit(15);
    _exit(0);  // die without cleanup, exactly at the fault site
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child did not exit cleanly";
  ASSERT_EQ(WEXITSTATUS(wstatus), 0) << "child epoch outcome unexpected";

  // --- parent: restart-style recovery of the crashed directory.
  store::SynopsisStore reopened(MatrixStoreOptions(dir_));
  ASSERT_TRUE(reopened.Open().ok());
  serve::SynopsisRegistry registry;
  registry.set_history_depth(4);
  StatusOr<store::RecoveryReport> recovered = reopened.Recover(&registry);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // Exactly one release is served, at exactly the expected epoch.
  ASSERT_EQ(registry.size(), 1u);
  StatusOr<std::shared_ptr<const serve::HostedSynopsis>> hosted =
      registry.Acquire("release");
  ASSERT_TRUE(hosted.ok());
  EXPECT_EQ(hosted.value()->epoch(),
            static_cast<uint64_t>(c.durable_epochs));

  // Never a mix: the served views are bit-identical to a clean-room
  // replay of that many epochs — all cells from one epoch's build, none
  // from the other.
  serve::SynopsisRegistry replay_registry;
  ASSERT_TRUE(
      ReplayEpochs(c.durable_epochs, nullptr, &replay_registry, nullptr).ok());
  StatusOr<std::shared_ptr<const serve::HostedSynopsis>> replayed =
      replay_registry.Acquire("release");
  ASSERT_TRUE(replayed.ok());
  const auto& served_views = hosted.value()->synopsis().views();
  const auto& replay_views = replayed.value()->synopsis().views();
  ASSERT_EQ(served_views.size(), replay_views.size());
  for (size_t v = 0; v < served_views.size(); ++v) {
    EXPECT_EQ(served_views[v].cells(), replay_views[v].cells())
        << "served view " << v << " is not exactly epoch "
        << c.durable_epochs;
  }

  // Epoch monotonicity across the restart: the next publish through the
  // recovered store + registry lands strictly above the recovered epoch,
  // even where recovery discarded journal tails.
  {
    Rng noise_rng(kNoiseSeed + 1);
    Rng data_rng(kDataSeed + 1);
    StatusOr<StreamPublisher> publisher = StreamPublisher::Create(
        MatrixStream(), &reopened, &registry, &noise_rng);
    ASSERT_TRUE(publisher.ok());
    ASSERT_TRUE(publisher.value().Ingest(EpochBatch(&data_rng, 50)).ok());
    StatusOr<EpochReport> next = publisher.value().PublishEpoch();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    EXPECT_GT(next.value().epoch, hosted.value()->epoch());
    EXPECT_EQ(registry.Acquire("release").value()->epoch(),
              next.value().epoch);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RolloverFaults, StreamCrashMatrixTest,
    ::testing::Values(
        // Control: both epochs durable and swapped.
        RolloverCase{"", 2},
        // Durability faults before the journal append: the new epoch never
        // became durable, recovery must serve the previous one.
        RolloverCase{"store/fsync-fail", 1},
        RolloverCase{"store/torn-rename", 1},
        RolloverCase{"store/manifest-torn-tail", 1},
        // The durable-but-not-swapped window: the journal append happened,
        // so recovery must serve the NEW epoch.
        RolloverCase{"stream/rollover-abort", 2},
        // A raced registry swap after the durable install: same verdict.
        RolloverCase{"serve/swap-race", 2}),
    [](const ::testing::TestParamInfo<RolloverCase>& info) {
      std::string name =
          *info.param.fault ? info.param.fault : "control";
      for (char& ch : name) {
        if (ch == '/' || ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace priview::stream
