#include "common/failpoint.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace priview {
namespace {

// Every test disarms on exit so suites can run in any order.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !PRIVIEW_FAILPOINTS_ENABLED
    GTEST_SKIP() << "failpoints compiled out (PRIVIEW_FAILPOINTS=OFF)";
#endif
  }
  ~FailpointTest() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedSiteNeverFires) {
  EXPECT_FALSE(PRIVIEW_FAILPOINT("test/never-armed"));
  EXPECT_FALSE(failpoint::IsArmed("test/never-armed"));
}

TEST_F(FailpointTest, AlwaysFiresEveryHit) {
  ASSERT_TRUE(failpoint::Arm("test/fp", "always").ok());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(PRIVIEW_FAILPOINT("test/fp"));
  EXPECT_EQ(failpoint::HitCount("test/fp"), 5u);
}

TEST_F(FailpointTest, OffCountsButNeverFires) {
  ASSERT_TRUE(failpoint::Arm("test/fp", "off").ok());
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(PRIVIEW_FAILPOINT("test/fp"));
  EXPECT_EQ(failpoint::HitCount("test/fp"), 3u);
}

TEST_F(FailpointTest, NthHitFiresExactlyOnce) {
  ASSERT_TRUE(failpoint::Arm("test/fp", "hit=3").ok());
  EXPECT_FALSE(PRIVIEW_FAILPOINT("test/fp"));
  EXPECT_FALSE(PRIVIEW_FAILPOINT("test/fp"));
  EXPECT_TRUE(PRIVIEW_FAILPOINT("test/fp"));
  EXPECT_FALSE(PRIVIEW_FAILPOINT("test/fp"));
}

TEST_F(FailpointTest, FromHitFiresFromThereOn) {
  ASSERT_TRUE(failpoint::Arm("test/fp", "from=2").ok());
  EXPECT_FALSE(PRIVIEW_FAILPOINT("test/fp"));
  EXPECT_TRUE(PRIVIEW_FAILPOINT("test/fp"));
  EXPECT_TRUE(PRIVIEW_FAILPOINT("test/fp"));
}

TEST_F(FailpointTest, ProbabilisticIsSeededAndDeterministic) {
  auto run = [](uint64_t seed) {
    std::string spec = "p=0.5,seed=" + std::to_string(seed);
    EXPECT_TRUE(failpoint::Arm("test/fp", spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(PRIVIEW_FAILPOINT("test/fp"));
    return fired;
  };
  const std::vector<bool> a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);       // same seed, same pattern
  EXPECT_NE(a, c);       // different seed, different pattern
  int fired = 0;
  for (bool f : a) fired += f;
  EXPECT_GT(fired, 10);  // p=0.5 over 64 draws
  EXPECT_LT(fired, 54);
}

TEST_F(FailpointTest, ProbabilityZeroAndOneAreExact) {
  ASSERT_TRUE(failpoint::Arm("test/fp", "p=0,seed=1").ok());
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(PRIVIEW_FAILPOINT("test/fp"));
  ASSERT_TRUE(failpoint::Arm("test/fp", "p=1,seed=1").ok());
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(PRIVIEW_FAILPOINT("test/fp"));
}

TEST_F(FailpointTest, RearmingResetsHitCount) {
  ASSERT_TRUE(failpoint::Arm("test/fp", "always").ok());
  PRIVIEW_FAILPOINT("test/fp");
  PRIVIEW_FAILPOINT("test/fp");
  EXPECT_EQ(failpoint::HitCount("test/fp"), 2u);
  ASSERT_TRUE(failpoint::Arm("test/fp", "hit=1").ok());
  EXPECT_EQ(failpoint::HitCount("test/fp"), 0u);
  EXPECT_TRUE(PRIVIEW_FAILPOINT("test/fp"));
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  EXPECT_FALSE(failpoint::Arm("test/fp", "sometimes").ok());
  EXPECT_FALSE(failpoint::Arm("test/fp", "hit=0").ok());
  EXPECT_FALSE(failpoint::Arm("test/fp", "hit=x").ok());
  EXPECT_FALSE(failpoint::Arm("test/fp", "p=2").ok());
  EXPECT_FALSE(failpoint::Arm("test/fp", "p=0.5,seed=frog").ok());
  EXPECT_FALSE(failpoint::IsArmed("test/fp"));
}

TEST_F(FailpointTest, SpecStringArmsMultiplePoints) {
  ASSERT_TRUE(
      failpoint::ArmFromSpecString("test/a=always;test/b=hit=2;;").ok());
  EXPECT_TRUE(failpoint::IsArmed("test/a"));
  EXPECT_TRUE(failpoint::IsArmed("test/b"));
  EXPECT_TRUE(PRIVIEW_FAILPOINT("test/a"));
  EXPECT_FALSE(PRIVIEW_FAILPOINT("test/b"));
  EXPECT_TRUE(PRIVIEW_FAILPOINT("test/b"));
}

TEST_F(FailpointTest, SpecStringRejectsMalformedEntry) {
  EXPECT_FALSE(failpoint::ArmFromSpecString("=always").ok());
  EXPECT_FALSE(failpoint::ArmFromSpecString("test/a").ok());
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    failpoint::ScopedFailpoint scoped("test/fp", "always");
    ASSERT_TRUE(scoped.status().ok());
    EXPECT_TRUE(PRIVIEW_FAILPOINT("test/fp"));
  }
  EXPECT_FALSE(failpoint::IsArmed("test/fp"));
  EXPECT_FALSE(PRIVIEW_FAILPOINT("test/fp"));
}

TEST_F(FailpointTest, KnownFailpointsAreNonEmptyAndUnique) {
  const auto& points = failpoint::KnownFailpoints();
  EXPECT_GE(points.size(), 10u);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      EXPECT_NE(points[i], points[j]);
    }
  }
}

}  // namespace
}  // namespace priview
