// Bit-identity pins for the arena + SIMD solver ports. The fixtures in
// solver_golden.inc were captured from the pre-arena, heap-backed scalar
// implementations; every test here asserts the ported solvers reproduce
// them IEEE-754 bit-for-bit — at both SIMD levels, through both the
// allocation-free Into cores and the managed wrappers, warm and cold, and
// from concurrent request lanes.
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "core/reconstruct.h"
#include "fourier/wht.h"
#include "opt/ipf.h"
#include "opt/least_norm.h"
#include "opt/max_ent_dual.h"
#include "opt/simplex.h"
#include "solver_golden_instances.h"

namespace priview {
namespace {

#include "solver_golden.inc"

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

template <size_t N>
void ExpectCellBits(const MarginalTable& table, const uint64_t (&expected)[N],
                    const char* what) {
  ASSERT_EQ(table.size(), N) << what;
  for (size_t i = 0; i < N; ++i) {
    EXPECT_EQ(BitsOf(table.At(i)), expected[i])
        << what << " cell " << i << " diverges from the pre-port fixture";
  }
}

class SolverGoldenTest : public ::testing::TestWithParam<simd::Level> {
 protected:
  void SetUp() override { simd::SetLevelForTest(GetParam()); }
  void TearDown() override {
    simd::ResetLevelForTest();
    parallel::SetThreadCount(0);
  }
};

TEST_P(SolverGoldenTest, IpfMatchesPrePortFixture) {
  const std::vector<MarginalTable> views = golden::IpfViews();
  const std::vector<MarginalConstraint> cs =
      golden::MakeConstraints(views, golden::IpfTarget());
  Arena arena;
  // Twice on the same arena: the cold and the warm pass must agree.
  for (int pass = 0; pass < 2; ++pass) {
    const IpfResult r =
        MaxEntropyIpf(golden::IpfTarget(), golden::kIpfTotal, cs, arena);
    ExpectCellBits(r.table, kIpfCellBits, "IPF");
    EXPECT_EQ(r.iterations, kIpfIterations);
    EXPECT_EQ(r.converged, kIpfConverged);
    EXPECT_EQ(BitsOf(r.final_residual), kIpfResidualBits);
  }
}

TEST_P(SolverGoldenTest, MaxEntDualMatchesPrePortFixture) {
  const std::vector<MarginalTable> views = golden::DualViews();
  const std::vector<MarginalConstraint> cs =
      golden::MakeConstraints(views, golden::DualTarget());
  Arena arena;
  for (int pass = 0; pass < 2; ++pass) {
    const MaxEntDualResult r =
        MaxEntropyDual(golden::DualTarget(), golden::kDualTotal, cs, arena);
    ExpectCellBits(r.table, kDualCellBits, "max-ent dual");
    EXPECT_EQ(r.iterations, kDualIterations);
    EXPECT_EQ(r.converged, kDualConverged);
    EXPECT_EQ(BitsOf(r.final_residual), kDualResidualBits);
  }
}

TEST_P(SolverGoldenTest, LeastNormMatchesPrePortFixture) {
  const std::vector<MarginalTable> views = golden::LeastNormViews();
  const std::vector<MarginalConstraint> cs =
      golden::MakeConstraints(views, golden::LeastNormTarget());
  Arena arena;
  for (int pass = 0; pass < 2; ++pass) {
    const LeastNormResult r = LeastNormSolve(
        golden::LeastNormTarget(), golden::kLeastNormTotal, cs, arena);
    ExpectCellBits(r.table, kLeastNormCellBits, "least-norm");
    EXPECT_EQ(r.iterations, kLeastNormIterations);
    EXPECT_EQ(r.converged, kLeastNormConverged);
  }
}

TEST_P(SolverGoldenTest, SimplexMatchesPrePortFixture) {
  const LpProblem lp = golden::SimplexProblem();
  Arena arena;
  for (int pass = 0; pass < 2; ++pass) {
    const LpResult r = SolveLp(lp, arena);
    EXPECT_EQ(static_cast<int>(r.status), kSimplexStatus);
    EXPECT_EQ(BitsOf(r.objective_value), kSimplexObjectiveBits);
    ASSERT_EQ(r.x.size(), std::size(kSimplexXBits));
    for (size_t j = 0; j < r.x.size(); ++j) {
      EXPECT_EQ(BitsOf(r.x[j]), kSimplexXBits[j]) << "x[" << j << "]";
    }
  }
}

TEST_P(SolverGoldenTest, ReconstructionChainMatchesPrePortFixture) {
  const std::vector<MarginalTable> views = golden::ReconstructViews();
  const MarginalTable cme =
      ReconstructMarginal(views, golden::ReconstructTarget(),
                          golden::kReconstructTotal,
                          ReconstructionMethod::kMaxEntropy);
  ExpectCellBits(cme, kReconstructCmeBits, "reconstruct/CME");
  const MarginalTable cln =
      ReconstructMarginal(views, golden::ReconstructTarget(),
                          golden::kReconstructTotal,
                          ReconstructionMethod::kLeastNorm);
  ExpectCellBits(cln, kReconstructClnBits, "reconstruct/CLN");
  const MarginalTable lp =
      ReconstructMarginal(views, golden::ReconstructTarget(),
                          golden::kReconstructTotal,
                          ReconstructionMethod::kLinearProgram);
  ExpectCellBits(lp, kReconstructLpBits, "reconstruct/LP");
}

// The explicit-arena entry point must agree with the thread-local one
// (same chain, Rewind discipline instead of Reset).
TEST_P(SolverGoldenTest, ExplicitArenaOverloadMatches) {
  const std::vector<MarginalTable> views = golden::ReconstructViews();
  Arena arena;
  const ReconstructionResult r = ReconstructMarginalWithDiagnostics(
      views, golden::ReconstructTarget(), golden::kReconstructTotal,
      ReconstructionMethod::kMaxEntropy, arena);
  ExpectCellBits(r.table, kReconstructCmeBits, "reconstruct/CME (arena)");
  // Rewind discipline: the chain left no allocations behind (the result
  // table is heap-owned), so the arena is reusable as found.
  EXPECT_EQ(arena.resets(), 0u);
}

// Per-lane thread-local arenas: concurrent requests on distinct threads
// must each reproduce the fixture exactly — no cross-lane contamination at
// any thread count.
TEST_P(SolverGoldenTest, ConcurrentRequestLanesMatchFixture) {
  const std::vector<MarginalTable> views = golden::ReconstructViews();
  for (int threads : {1, 2, 4}) {
    std::vector<MarginalTable> answers(threads, MarginalTable(AttrSet{}));
    {
      std::vector<std::thread> lanes;
      lanes.reserve(threads);
      for (int t = 0; t < threads; ++t) {
        lanes.emplace_back([&views, &answers, t] {
          // Two requests per lane so the second runs on a warmed arena.
          (void)ReconstructMarginal(views, golden::ReconstructTarget(),
                                    golden::kReconstructTotal,
                                    ReconstructionMethod::kMaxEntropy);
          answers[t] = ReconstructMarginal(views, golden::ReconstructTarget(),
                                           golden::kReconstructTotal,
                                           ReconstructionMethod::kMaxEntropy);
        });
      }
      for (std::thread& lane : lanes) lane.join();
    }
    for (const MarginalTable& answer : answers) {
      ExpectCellBits(answer, kReconstructCmeBits, "concurrent lane");
    }
  }
}

// Same through the shared parallel pool (the AnswerBatch dispatch path).
TEST_P(SolverGoldenTest, PoolLanesMatchFixtureAtEveryThreadCount) {
  const std::vector<MarginalTable> views = golden::ReconstructViews();
  for (int threads : {1, 4}) {
    parallel::SetThreadCount(threads);
    constexpr size_t kRequests = 8;
    std::vector<MarginalTable> answers(kRequests, MarginalTable(AttrSet{}));
    parallel::ParallelFor(0, kRequests, 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        answers[i] = ReconstructMarginal(views, golden::ReconstructTarget(),
                                         golden::kReconstructTotal,
                                         ReconstructionMethod::kMaxEntropy);
      }
    });
    for (const MarginalTable& answer : answers) {
      ExpectCellBits(answer, kReconstructCmeBits, "pool lane");
    }
  }
}

// The WHT has no pre-port fixture of its own (it feeds the Fourier
// baseline, not the golden instances), so pin AVX2 against scalar
// directly: identical bits on both a smooth and a sign-alternating input.
TEST(WhtGoldenTest, Avx2MatchesScalarBitForBit) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  for (size_t n : {1u, 2u, 4u, 8u, 64u, 1u << 12}) {
    std::vector<double> scalar(n), avx2(n);
    for (size_t i = 0; i < n; ++i) {
      scalar[i] = 0.37 * static_cast<double>(i) - 11.25 +
                  ((i & 1) ? 1e-9 : -3.0);
      avx2[i] = scalar[i];
    }
    simd::SetLevelForTest(simd::Level::kScalar);
    Wht(scalar.data(), n);
    simd::SetLevelForTest(simd::Level::kAvx2);
    Wht(avx2.data(), n);
    simd::ResetLevelForTest();
    EXPECT_EQ(std::memcmp(scalar.data(), avx2.data(), n * sizeof(double)), 0)
        << "WHT diverges at n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Levels, SolverGoldenTest,
    ::testing::Values(simd::Level::kScalar, simd::Level::kAvx2),
    [](const ::testing::TestParamInfo<simd::Level>& info) {
      return simd::LevelName(info.param);
    });

}  // namespace
}  // namespace priview
