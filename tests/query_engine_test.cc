#include "core/query_engine.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "design/covering_design.h"

namespace priview {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : rng_(7), data_(MakeMsnbcLike(&rng_, 100000)) {
    const CoveringDesign design = MakeCoveringDesign(9, 6, 2, &rng_);
    PriViewOptions options;
    options.add_noise = false;  // exact views: engine answers are exact on
                                // covered scopes, which the tests exploit
    synopsis_ = std::make_unique<PriViewSynopsis>(
        PriViewSynopsis::Build(data_, design.blocks, options, &rng_));
    engine_ = std::make_unique<QueryEngine>(synopsis_.get());
  }

  Rng rng_;
  Dataset data_;
  std::unique_ptr<PriViewSynopsis> synopsis_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryEngineTest, ConjunctionCountMatchesData) {
  const AttrSet attrs = AttrSet::FromIndices({0, 2});
  for (uint64_t a = 0; a < 4; ++a) {
    EXPECT_NEAR(engine_->ConjunctionCount(attrs, a),
                data_.CountCell(attrs, a), 1e-6);
  }
}

TEST_F(QueryEngineTest, ProbabilitiesSumToOne) {
  const AttrSet attrs = AttrSet::FromIndices({1, 4, 5});
  double total = 0.0;
  for (uint64_t a = 0; a < 8; ++a) total += engine_->Probability(attrs, a);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(QueryEngineTest, ConditionalProbabilityMatchesBayes) {
  // P(a0=1 | a1=1) from the engine vs computed from raw counts.
  const AttrSet cond = AttrSet::FromIndices({1});
  const double got = engine_->ConditionalProbability(0, cond, 1);
  const MarginalTable joint = data_.CountMarginal(AttrSet::FromIndices({0, 1}));
  const double expected =
      joint.At(0b11) / (joint.At(0b10) + joint.At(0b11));
  EXPECT_NEAR(got, expected, 1e-9);
}

TEST_F(QueryEngineTest, ConditionalProbabilityZeroSupportIsHalf) {
  // Condition on an assignment with (essentially) no support by using a
  // synthetic empty synopsis view: fabricate via an impossible condition
  // on many attributes of a tiny dataset.
  Rng rng(9);
  Dataset tiny(4);
  tiny.Add(0b0000);
  tiny.Add(0b0000);
  PriViewOptions options;
  options.add_noise = false;
  const PriViewSynopsis synopsis = PriViewSynopsis::Build(
      tiny, {AttrSet::FromIndices({0, 1, 2, 3})}, options, &rng);
  const QueryEngine engine(&synopsis);
  EXPECT_DOUBLE_EQ(
      engine.ConditionalProbability(0, AttrSet::FromIndices({1, 2}), 0b11),
      0.5);
}

TEST_F(QueryEngineTest, LiftOfIndependentAttrsNearOne) {
  // Find a pair with near-independent behaviour in the raw data and check
  // the engine agrees about the lift.
  const double lift = engine_->Lift(0, 8);
  const MarginalTable joint = data_.CountMarginal(AttrSet::FromIndices({0, 8}));
  const double n = joint.Total();
  const double pa = (joint.At(0b01) + joint.At(0b11)) / n;
  const double pb = (joint.At(0b10) + joint.At(0b11)) / n;
  const double expected = (joint.At(0b11) / n) / (pa * pb);
  EXPECT_NEAR(lift, expected, 1e-6);
}

TEST_F(QueryEngineTest, MutualInformationNonNegativeAndSymmetric) {
  const double mi_ab = engine_->MutualInformation(2, 5);
  const double mi_ba = engine_->MutualInformation(5, 2);
  EXPECT_GE(mi_ab, 0.0);
  EXPECT_NEAR(mi_ab, mi_ba, 1e-12);
}

TEST_F(QueryEngineTest, MutualInformationDetectsCorrelation) {
  // Perfectly correlated attributes beat near-independent ones.
  Rng rng(10);
  Dataset corr(4);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t b = rng.Bernoulli(0.5) ? 0b0011 : 0b0000;
    const uint64_t c = rng.Bernoulli(0.5) ? 0b0100 : 0b0000;
    corr.Add(b | c);
  }
  PriViewOptions options;
  options.add_noise = false;
  const PriViewSynopsis synopsis = PriViewSynopsis::Build(
      corr, {AttrSet::FromIndices({0, 1, 2, 3})}, options, &rng);
  const QueryEngine engine(&synopsis);
  EXPECT_GT(engine.MutualInformation(0, 1), 0.5);   // ~ln 2
  EXPECT_LT(engine.MutualInformation(0, 2), 0.01);  // independent
}

// Regression suite for the zero/near-zero-support and negative-cell edge
// cases: noise can leave reconstructed cells slightly negative, and ratio
// statistics must stay inside their ranges instead of exploding on them.
class QueryEdgeCaseTest : public ::testing::Test {
 protected:
  // A synopsis whose single exact view carries hand-picked cells.
  static PriViewSynopsis FromCells(std::vector<double> cells) {
    MarginalTable view(AttrSet::FromIndices({0, 1}), std::move(cells));
    PriViewOptions options;
    options.add_noise = false;
    return PriViewSynopsis::FromViews(2, {view}, options);
  }
};

TEST_F(QueryEdgeCaseTest, NegativeCellsAreClampedBeforeDividing) {
  // cell(a0=0,a1=0) is negative, as post-noise views can be. Without
  // clamping, P(a1=1 | a0=0) = 20/15 > 1.
  const PriViewSynopsis synopsis = FromCells({-5.0, 10.0, 20.0, 30.0});
  const QueryEngine engine(&synopsis);
  const double p = engine.ConditionalProbability(
      1, AttrSet::FromIndices({0}), 0);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  EXPECT_DOUBLE_EQ(p, 1.0);  // 20 / (0 + 20) after the clamp
  const double lift = engine.Lift(0, 1);
  EXPECT_TRUE(std::isfinite(lift));
  EXPECT_GE(lift, 0.0);
}

TEST_F(QueryEdgeCaseTest, ConditionalOnNearZeroSupportIsHalf) {
  // Attribute 0's "=1" cells hold only negative-noise dust: conditioning
  // on it is conditioning on nothing, so the answer is the 0.5 prior.
  const PriViewSynopsis synopsis =
      FromCells({100.0, -1e-12, 50.0, 2e-13});
  const QueryEngine engine(&synopsis);
  EXPECT_DOUBLE_EQ(
      engine.ConditionalProbability(1, AttrSet::FromIndices({0}), 1), 0.5);
}

TEST_F(QueryEdgeCaseTest, LiftWithZeroSupportAttributeIsZero) {
  // Same dust scope: lift against an unsupported attribute is 0, not a
  // division-by-near-zero blowup.
  const PriViewSynopsis synopsis =
      FromCells({100.0, -1e-12, 50.0, 2e-13});
  const QueryEngine engine(&synopsis);
  const double lift = engine.Lift(0, 1);
  EXPECT_DOUBLE_EQ(lift, 0.0);
}

TEST_F(QueryEdgeCaseTest, LiftOfEmptySynopsisTotalIsZero) {
  const PriViewSynopsis synopsis = FromCells({0.0, 0.0, 0.0, 0.0});
  const QueryEngine engine(&synopsis);
  EXPECT_DOUBLE_EQ(engine.Lift(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(
      engine.ConditionalProbability(1, AttrSet::FromIndices({0}), 1), 0.5);
  EXPECT_DOUBLE_EQ(engine.Probability(AttrSet::FromIndices({0}), 1), 0.0);
  EXPECT_DOUBLE_EQ(engine.MutualInformation(0, 1), 0.0);
}

TEST_F(QueryEdgeCaseTest, TryVariantsAgreeWithLegacyOnValidInput) {
  const PriViewSynopsis synopsis = FromCells({10.0, 20.0, 30.0, 40.0});
  const QueryEngine engine(&synopsis);
  const AttrSet scope = AttrSet::FromIndices({0, 1});
  EXPECT_DOUBLE_EQ(engine.TryConjunctionCount(scope, 3).value(),
                   engine.ConjunctionCount(scope, 3));
  EXPECT_DOUBLE_EQ(engine.TryLift(0, 1).value(), engine.Lift(0, 1));
  EXPECT_DOUBLE_EQ(engine.TryMutualInformation(0, 1).value(),
                   engine.MutualInformation(0, 1));
}

TEST(CubeAlgebraTest, RollUpEqualsProjection) {
  MarginalTable cube(AttrSet::FromIndices({1, 3, 5}),
                     std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8});
  const MarginalTable rolled =
      cube::RollUp(cube, AttrSet::FromIndices({1, 5}));
  const MarginalTable projected = cube.Project(AttrSet::FromIndices({1, 5}));
  for (size_t i = 0; i < rolled.size(); ++i) {
    EXPECT_DOUBLE_EQ(rolled.At(i), projected.At(i));
  }
}

TEST(CubeAlgebraTest, SlicePartitionsTheCube) {
  MarginalTable cube(AttrSet::FromIndices({0, 2}),
                     std::vector<double>{1, 2, 3, 4});
  const MarginalTable s0 = cube::Slice(cube, 2, 0);
  const MarginalTable s1 = cube::Slice(cube, 2, 1);
  EXPECT_EQ(s0.attrs(), AttrSet::FromIndices({0}));
  EXPECT_DOUBLE_EQ(s0.Total() + s1.Total(), cube.Total());
  // Slice on attr2=0 keeps cells with index bit1 = 0: cells 1, 2.
  EXPECT_DOUBLE_EQ(s0.At(0), 1.0);
  EXPECT_DOUBLE_EQ(s0.At(1), 2.0);
  EXPECT_DOUBLE_EQ(s1.At(0), 3.0);
  EXPECT_DOUBLE_EQ(s1.At(1), 4.0);
}

TEST(CubeAlgebraTest, DiceMultipleAttributes) {
  MarginalTable cube(AttrSet::FromIndices({0, 1, 2}),
                     std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8});
  // Fix attrs {0, 2} to (1, 0): cells with bit0=1, bit2=0 -> cells 1, 3.
  const MarginalTable diced =
      cube::Dice(cube, AttrSet::FromIndices({0, 2}), 0b01);
  EXPECT_EQ(diced.attrs(), AttrSet::FromIndices({1}));
  EXPECT_DOUBLE_EQ(diced.At(0), 2.0);
  EXPECT_DOUBLE_EQ(diced.At(1), 4.0);
}

TEST(AnswerBatchTest, OneSolverInvocationPerDistinctTarget) {
  // Regression: a batch with duplicate targets must run the reconstruction
  // solver once per *distinct* target, not once per request. The counter
  // is the "reconstruct/primary-junk" failpoint armed "off": it is
  // evaluated exactly once per reconstruction (covered check or first
  // successful solver attempt) and never fires, so the hit-count delta is
  // the number of solves.
#if !PRIVIEW_FAILPOINTS_ENABLED
  GTEST_SKIP() << "failpoints compiled out (PRIVIEW_FAILPOINTS=OFF)";
#endif
  Rng rng(23);
  Dataset data = MakeMsnbcLike(&rng, 3000);
  PriViewOptions options;
  options.add_noise = false;
  const PriViewSynopsis synopsis = PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4})},
      options, &rng);
  const QueryEngine engine(&synopsis);

  failpoint::ScopedFailpoint scoped("reconstruct/primary-junk", "off");
  ASSERT_TRUE(scoped.status().ok());
  const uint64_t before = failpoint::HitCount("reconstruct/primary-junk");

  // Both distinct targets are uncovered (need a solver); T1 thrice, T2 once.
  const AttrSet t1 = AttrSet::FromIndices({0, 4});
  const AttrSet t2 = AttrSet::FromIndices({1, 3});
  const std::vector<StatusOr<MarginalTable>> answers =
      engine.AnswerBatch({t1, t1, t2, t1});
  ASSERT_EQ(answers.size(), 4u);
  for (const StatusOr<MarginalTable>& answer : answers) {
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  }
  EXPECT_EQ(answers[1].value().cells(), answers[0].value().cells());
  EXPECT_EQ(answers[3].value().cells(), answers[0].value().cells());
  EXPECT_EQ(failpoint::HitCount("reconstruct/primary-junk") - before, 2u)
      << "expected exactly one solve per distinct target";

  // The whole batch is now cached: a repeat costs zero solves.
  const std::vector<StatusOr<MarginalTable>> repeat =
      engine.AnswerBatch({t1, t2, t1});
  for (const StatusOr<MarginalTable>& answer : repeat) {
    ASSERT_TRUE(answer.ok());
  }
  EXPECT_EQ(failpoint::HitCount("reconstruct/primary-junk") - before, 2u);
}

TEST(CubeAlgebraTest, SliceThenRollUpCommutes) {
  Rng rng(11);
  MarginalTable cube(AttrSet::FromIndices({0, 1, 2, 3}));
  for (double& c : cube.cells()) c = rng.UniformDouble() * 10;
  // Slice on 3 then roll to {0}: equals roll to {0,3} then slice on 3.
  const MarginalTable a = cube::RollUp(cube::Slice(cube, 3, 1),
                                       AttrSet::FromIndices({0}));
  const MarginalTable b = cube::Slice(
      cube::RollUp(cube, AttrSet::FromIndices({0, 3})), 3, 1);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.At(i), b.At(i), 1e-10);
  }
}

}  // namespace
}  // namespace priview
