// Wire-protocol suite: encode/decode roundtrips for every message type,
// hostile-payload handling (truncation, trailing garbage, liar headers),
// and the framing layer over a real socketpair — including the torn-frame
// and oversized-frame failure modes the "serve/io-torn-frame" failpoint
// and a lying length header produce. The invariant throughout: transport
// damage is a descriptive Status, never a crash, never a hang.
#include "serve/wire_protocol.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"

namespace priview::serve {
namespace {

class SocketPair {
 public:
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a_ = fds[0];
    b_ = fds[1];
  }
  ~SocketPair() {
    CloseA();
    CloseB();
  }
  int a() const { return a_; }
  int b() const { return b_; }
  void CloseA() {
    if (a_ >= 0) ::close(a_);
    a_ = -1;
  }
  void CloseB() {
    if (b_ >= 0) ::close(b_);
    b_ = -1;
  }

 private:
  int a_ = -1;
  int b_ = -1;
};

TEST(WireProtocolTest, MarginalRequestRoundTrips) {
  WireRequest request;
  request.type = MessageType::kMarginal;
  request.synopsis = "msnbc-eps1";
  request.target_mask = 0b101101;
  request.deadline_ms = 250;

  StatusOr<WireRequest> decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MessageType::kMarginal);
  EXPECT_EQ(decoded.value().synopsis, "msnbc-eps1");
  EXPECT_EQ(decoded.value().target_mask, 0b101101u);
  EXPECT_EQ(decoded.value().deadline_ms, 250u);
}

TEST(WireProtocolTest, EveryRequestTypeRoundTrips) {
  WireRequest request;
  request.synopsis = "s";
  request.target_mask = 0b1111;
  request.aux_mask = 0b0101;
  request.assignment = 0b11;
  request.attr = 2;
  request.value = 1;
  request.deadline_ms = 42;
  for (MessageType type :
       {MessageType::kMarginal, MessageType::kConjunction, MessageType::kRollUp,
        MessageType::kSlice, MessageType::kDice, MessageType::kStats,
        MessageType::kList, MessageType::kMetrics}) {
    request.type = type;
    StatusOr<WireRequest> decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok())
        << "type " << int(type) << ": " << decoded.status().ToString();
    EXPECT_EQ(decoded.value().type, type);
  }
  // Field coverage on the widest request.
  request.type = MessageType::kDice;
  StatusOr<WireRequest> dice = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(dice.ok());
  EXPECT_EQ(dice.value().aux_mask, 0b0101u);
  EXPECT_EQ(dice.value().assignment, 0b11u);
}

TEST(WireProtocolTest, TableResponseRoundTripsBitIdentically) {
  MarginalTable table(AttrSet::FromIndices({1, 3, 4}),
                      {1.5, 0.0, -0.25, 3.0, 100.5, 7.0, 0.125, 2.0});
  const WireResponse sent =
      MakeTableResponse(table, /*tier=*/1, /*coalesced=*/true, /*epoch=*/9);

  StatusOr<WireResponse> decoded = DecodeResponse(EncodeResponse(sent));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MessageType::kTable);
  EXPECT_EQ(decoded.value().tier, 1);
  EXPECT_EQ(decoded.value().coalesced, 1);
  EXPECT_EQ(decoded.value().epoch, 9u);

  StatusOr<MarginalTable> back = decoded.value().ToTable();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().attrs(), table.attrs());
  EXPECT_EQ(back.value().cells(), table.cells());  // doubles bit-preserved
}

TEST(WireProtocolTest, ValueTextAndErrorResponsesRoundTrip) {
  WireResponse value;
  value.type = MessageType::kValue;
  value.tier = 2;
  value.epoch = 4;
  value.value = 1234.5678;
  StatusOr<WireResponse> v = DecodeResponse(EncodeResponse(value));
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v.value().value, 1234.5678);
  EXPECT_EQ(v.value().tier, 2);

  WireResponse text;
  text.type = MessageType::kText;
  text.text = "{\"admitted\": 3}";
  StatusOr<WireResponse> t = DecodeResponse(EncodeResponse(text));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().text, "{\"admitted\": 3}");

  const WireResponse error =
      MakeErrorResponse(Status::ResourceExhausted("queue full"));
  StatusOr<WireResponse> e = DecodeResponse(EncodeResponse(error));
  ASSERT_TRUE(e.ok());
  const Status status = e.value().ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.message(), "queue full");
}

TEST(WireProtocolTest, UnknownErrorCodeClampsToInternal) {
  WireResponse error;
  error.type = MessageType::kError;
  error.code = 9999;
  error.message = "from the future";
  StatusOr<WireResponse> decoded = DecodeResponse(EncodeResponse(error));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().ToStatus().code(), StatusCode::kInternal);
}

TEST(WireProtocolTest, TruncatedPayloadsFailWithStatusNotCrash) {
  WireRequest request;
  request.type = MessageType::kDice;
  request.synopsis = "name";
  request.target_mask = 0xff;
  const std::vector<uint8_t> full = EncodeRequest(request);
  // Every strict prefix must decode to an error, not UB.
  for (size_t len = 0; len < full.size(); ++len) {
    std::vector<uint8_t> prefix(full.begin(), full.begin() + len);
    EXPECT_FALSE(DecodeRequest(prefix).ok()) << "prefix length " << len;
  }

  MarginalTable table(AttrSet::FromIndices({0, 1}), {1, 2, 3, 4});
  const std::vector<uint8_t> response =
      EncodeResponse(MakeTableResponse(table, 0, false, 1));
  for (size_t len = 0; len < response.size(); ++len) {
    std::vector<uint8_t> prefix(response.begin(), response.begin() + len);
    EXPECT_FALSE(DecodeResponse(prefix).ok()) << "prefix length " << len;
  }
}

TEST(WireProtocolTest, TrailingGarbageRejected) {
  WireRequest request;
  request.type = MessageType::kStats;
  std::vector<uint8_t> bytes = EncodeRequest(request);
  bytes.push_back(0xAB);
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

TEST(WireProtocolTest, TableWithLyingCellCountRejected) {
  MarginalTable table(AttrSet::FromIndices({0, 1}), {1, 2, 3, 4});
  WireResponse response = MakeTableResponse(table, 0, false, 1);
  response.cells.pop_back();  // 3 cells for a 2-attribute scope
  StatusOr<WireResponse> decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());  // frames fine; semantic check is in ToTable
  EXPECT_FALSE(decoded.value().ToTable().ok());
}

TEST(WireFramingTest, FramesRoundTripOverASocketPair) {
  SocketPair pair;
  WireRequest request;
  request.type = MessageType::kMarginal;
  request.synopsis = "abc";
  request.target_mask = 7;

  // Several frames back to back: framing must preserve boundaries.
  for (int i = 0; i < 3; ++i) {
    request.deadline_ms = 10 * (i + 1);
    ASSERT_TRUE(WriteFrame(pair.a(), EncodeRequest(request)).ok());
  }
  for (int i = 0; i < 3; ++i) {
    std::vector<uint8_t> payload;
    bool clean_eof = true;
    ASSERT_TRUE(ReadFrame(pair.b(), &payload, &clean_eof).ok());
    EXPECT_FALSE(clean_eof);
    StatusOr<WireRequest> decoded = DecodeRequest(payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().deadline_ms, 10u * (i + 1));
  }
}

TEST(WireFramingTest, CleanCloseAtFrameBoundaryIsEofNotError) {
  SocketPair pair;
  ASSERT_TRUE(WriteFrame(pair.a(), EncodeRequest(WireRequest{})).ok());
  pair.CloseA();

  std::vector<uint8_t> payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(pair.b(), &payload, &clean_eof).ok());
  EXPECT_FALSE(clean_eof);  // the full frame first

  ASSERT_TRUE(ReadFrame(pair.b(), &payload, &clean_eof).ok());
  EXPECT_TRUE(clean_eof);  // then the clean boundary close
}

TEST(WireFramingTest, PeerDyingMidFrameIsDataLoss) {
  SocketPair pair;
  // A header promising 100 bytes, then only 10 delivered before close.
  const uint32_t promised = 100;
  uint8_t header[4];
  std::memcpy(header, &promised, 4);
  ASSERT_EQ(::write(pair.a(), header, 4), 4);
  uint8_t partial[10] = {};
  ASSERT_EQ(::write(pair.a(), partial, 10), 10);
  pair.CloseA();

  std::vector<uint8_t> payload;
  bool clean_eof = false;
  const Status read = ReadFrame(pair.b(), &payload, &clean_eof);
  EXPECT_EQ(read.code(), StatusCode::kDataLoss);
}

TEST(WireFramingTest, OversizedDeclaredLengthIsDataLoss) {
  SocketPair pair;
  const uint32_t liar = kMaxFramePayload + 1;
  uint8_t header[4];
  std::memcpy(header, &liar, 4);
  ASSERT_EQ(::write(pair.a(), header, 4), 4);

  std::vector<uint8_t> payload;
  bool clean_eof = false;
  const Status read = ReadFrame(pair.b(), &payload, &clean_eof);
  EXPECT_EQ(read.code(), StatusCode::kDataLoss);
}

TEST(WireFramingTest, TornFrameFailpointSurfacesOnBothEnds) {
#if !PRIVIEW_FAILPOINTS_ENABLED
  GTEST_SKIP() << "failpoints compiled out";
#endif
  SocketPair pair;
  failpoint::ScopedFailpoint scoped("serve/io-torn-frame", "always");
  ASSERT_TRUE(scoped.status().ok());

  // The writer learns immediately: the injected tear is an IOError.
  const Status written =
      WriteFrame(pair.a(), EncodeRequest(WireRequest{}));
  EXPECT_EQ(written.code(), StatusCode::kIOError);
  // A correct writer treats the connection as dead after a torn write.
  pair.CloseA();

  // The reader sees a frame that ends early: DataLoss, never a hang.
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  const Status read = ReadFrame(pair.b(), &payload, &clean_eof);
  EXPECT_EQ(read.code(), StatusCode::kDataLoss);
  failpoint::DisarmAll();
}

TEST(WireFramingTest, NonBlockingReaderWaitsForSlowWriter) {
  // Regression: a non-blocking fd used to spin ReadAll forever on EAGAIN.
  // ReadFrame must poll for readiness and return the complete frame even
  // when the bytes trickle in after the read starts.
  SocketPair pair;
  ASSERT_EQ(::fcntl(pair.b(), F_SETFL,
                    ::fcntl(pair.b(), F_GETFL) | O_NONBLOCK),
            0);

  WireRequest request;
  request.type = MessageType::kMarginal;
  request.synopsis = "slow-writer";
  request.target_mask = 0b111;
  const std::vector<uint8_t> bytes = EncodeRequest(request);
  std::vector<uint8_t> frame(4);
  const uint32_t len = static_cast<uint32_t>(bytes.size());
  std::memcpy(frame.data(), &len, 4);
  frame.insert(frame.end(), bytes.begin(), bytes.end());

  // Dribble the frame one byte at a time with pauses, so the reader hits
  // EAGAIN between nearly every byte.
  std::thread writer([&] {
    for (uint8_t byte : frame) {
      ASSERT_EQ(::write(pair.a(), &byte, 1), 1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<uint8_t> payload;
  bool clean_eof = true;
  const Status read = ReadFrame(pair.b(), &payload, &clean_eof);
  writer.join();
  ASSERT_TRUE(read.ok()) << read.ToString();
  EXPECT_FALSE(clean_eof);
  StatusOr<WireRequest> decoded = DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().synopsis, "slow-writer");
}

TEST(WireFramingTest, MidFrameStallHitsTheIoDeadline) {
  // A peer that starts a frame and then goes silent must not park the
  // reader thread forever: once the first byte has arrived, the io
  // deadline is armed and the stalled read fails DeadlineExceeded.
  SocketPair pair;
  ASSERT_EQ(::fcntl(pair.b(), F_SETFL,
                    ::fcntl(pair.b(), F_GETFL) | O_NONBLOCK),
            0);
  // Two header bytes, then nothing — mid-frame, not idle.
  const uint8_t partial[2] = {7, 0};
  ASSERT_EQ(::write(pair.a(), partial, sizeof(partial)), 2);
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  const auto start = std::chrono::steady_clock::now();
  const Status read =
      ReadFrame(pair.b(), &payload, &clean_eof, /*timeout_ms=*/50);
  EXPECT_EQ(read.code(), StatusCode::kDeadlineExceeded) << read.ToString();
  // The wait was bounded by the timeout, not by test patience.
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(10));
}

TEST(WireFramingTest, NonBlockingWriterSurvivesFullSocketBuffer) {
  // The mirror case: a non-blocking writer pushing a frame larger than
  // the socket buffer hits EAGAIN mid-frame and must wait for the reader
  // to drain instead of failing (or spinning).
  SocketPair pair;
  ASSERT_EQ(::fcntl(pair.a(), F_SETFL,
                    ::fcntl(pair.a(), F_GETFL) | O_NONBLOCK),
            0);

  std::vector<double> cells(1u << 16);
  for (size_t i = 0; i < cells.size(); ++i) cells[i] = double(i) * 0.25;
  MarginalTable table(AttrSet::Full(16), std::move(cells));
  const std::vector<uint8_t> bytes =
      EncodeResponse(MakeTableResponse(table, 0, false, 1));

  std::thread writer([&] {
    const Status written = WriteFrame(pair.a(), bytes);
    EXPECT_TRUE(written.ok()) << written.ToString();
  });
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(pair.b(), &payload, &clean_eof).ok());
  writer.join();
  EXPECT_EQ(payload, bytes);
}

TEST(WireProtocolTest, SeriesRequestRoundTripsEveryField) {
  WireRequest request;
  request.type = MessageType::kSeries;
  request.synopsis = "clicks";
  request.target_mask = 0b1011;
  request.last_n = 12;
  request.series_mode = uint8_t(SeriesMode::kDeltas);
  request.deadline_ms = 750;

  StatusOr<WireRequest> decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MessageType::kSeries);
  EXPECT_EQ(decoded.value().synopsis, "clicks");
  EXPECT_EQ(decoded.value().target_mask, 0b1011u);
  EXPECT_EQ(decoded.value().last_n, 12u);
  EXPECT_EQ(decoded.value().series_mode, uint8_t(SeriesMode::kDeltas));
  EXPECT_EQ(decoded.value().deadline_ms, 750u);

  // Truncation: every strict prefix is a typed failure, never UB.
  const std::vector<uint8_t> full = EncodeRequest(request);
  for (size_t len = 0; len < full.size(); ++len) {
    std::vector<uint8_t> prefix(full.begin(), full.begin() + len);
    EXPECT_FALSE(DecodeRequest(prefix).ok()) << "prefix length " << len;
  }

  WireRequest list;
  list.type = MessageType::kListSynopses;
  StatusOr<WireRequest> list_decoded = DecodeRequest(EncodeRequest(list));
  ASSERT_TRUE(list_decoded.ok());
  EXPECT_EQ(list_decoded.value().type, MessageType::kListSynopses);

  // Both new requests are reads against immutable releases: retry-safe.
  EXPECT_TRUE(IsIdempotentRequest(MessageType::kSeries));
  EXPECT_TRUE(IsIdempotentRequest(MessageType::kListSynopses));
}

TEST(WireProtocolTest, TableSeriesResponseRoundTripsBitIdentically) {
  WireResponse sent;
  sent.type = MessageType::kTableSeries;
  sent.tier = 1;
  sent.coalesced = 1;
  for (uint64_t epoch : {7u, 6u, 5u}) {  // newest first
    SeriesEntry entry;
    entry.epoch = epoch;
    entry.attrs_mask = 0b110;
    entry.cells = {1.5 * double(epoch), -0.25, 0.0, 1e9 + double(epoch)};
    sent.series.push_back(std::move(entry));
  }

  StatusOr<WireResponse> decoded = DecodeResponse(EncodeResponse(sent));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MessageType::kTableSeries);
  EXPECT_EQ(decoded.value().tier, 1);
  EXPECT_EQ(decoded.value().coalesced, 1);
  ASSERT_EQ(decoded.value().series.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.value().series[i].epoch, sent.series[i].epoch);
    EXPECT_EQ(decoded.value().series[i].attrs_mask, 0b110u);
    EXPECT_EQ(decoded.value().series[i].cells, sent.series[i].cells);
  }

  // Truncation sweep over the multi-entry payload.
  const std::vector<uint8_t> full = EncodeResponse(sent);
  for (size_t len = 0; len < full.size(); ++len) {
    std::vector<uint8_t> prefix(full.begin(), full.begin() + len);
    EXPECT_FALSE(DecodeResponse(prefix).ok()) << "prefix length " << len;
  }
}

TEST(WireProtocolTest, SynopsisListResponseRoundTrips) {
  WireResponse sent;
  sent.type = MessageType::kSynopsisList;
  SynopsisEntry a;
  a.name = "clicks";
  a.epoch = 42;
  a.install_unix_ms = 1754700000123ull;
  a.d = 16;
  a.views = 9;
  a.epsilon = 0.5;
  a.fully_intact = 1;
  SynopsisEntry b;
  b.name = "purchases";
  b.epoch = 3;
  b.d = 8;
  b.views = 4;
  b.epsilon = 1.25;
  b.fully_intact = 0;
  sent.synopses = {a, b};

  StatusOr<WireResponse> decoded = DecodeResponse(EncodeResponse(sent));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().synopses.size(), 2u);
  const SynopsisEntry& got = decoded.value().synopses[0];
  EXPECT_EQ(got.name, "clicks");
  EXPECT_EQ(got.epoch, 42u);
  EXPECT_EQ(got.install_unix_ms, 1754700000123ull);
  EXPECT_EQ(got.d, 16);
  EXPECT_EQ(got.views, 9u);
  EXPECT_DOUBLE_EQ(got.epsilon, 0.5);
  EXPECT_EQ(got.fully_intact, 1);
  EXPECT_EQ(decoded.value().synopses[1].name, "purchases");
  EXPECT_EQ(decoded.value().synopses[1].fully_intact, 0);

  for (size_t len = 0; len < EncodeResponse(sent).size(); ++len) {
    const std::vector<uint8_t> full = EncodeResponse(sent);
    std::vector<uint8_t> prefix(full.begin(), full.begin() + len);
    EXPECT_FALSE(DecodeResponse(prefix).ok()) << "prefix length " << len;
  }
}

TEST(WireProtocolTest, LyingSeriesCountsAreDataLossNotAllocation) {
  // A hostile header claiming 2^31 entries in a tiny payload must be
  // rejected before any entry-sized allocation happens.
  std::vector<uint8_t> payload;
  payload.push_back(uint8_t(MessageType::kTableSeries));
  payload.push_back(0);  // tier
  payload.push_back(0);  // coalesced
  const uint32_t liar = 0x80000000u;
  uint8_t liar_bytes[4];
  std::memcpy(liar_bytes, &liar, 4);
  for (uint8_t byte : liar_bytes) payload.push_back(byte);
  StatusOr<WireResponse> decoded = DecodeResponse(payload);
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);

  // Same for a single entry lying about its cell count.
  WireResponse sent;
  sent.type = MessageType::kTableSeries;
  SeriesEntry entry;
  entry.epoch = 1;
  entry.attrs_mask = 0b1;
  entry.cells = {1.0, 2.0};
  sent.series.push_back(entry);
  std::vector<uint8_t> bytes = EncodeResponse(sent);
  // The cell count u32 sits right before the 16 bytes of doubles.
  const uint32_t cell_liar = 0x10000000u;
  std::memcpy(bytes.data() + bytes.size() - 16 - 4, &cell_liar, 4);
  EXPECT_EQ(DecodeResponse(bytes).status().code(), StatusCode::kDataLoss);

  // And for the synopsis listing.
  std::vector<uint8_t> listing;
  listing.push_back(uint8_t(MessageType::kSynopsisList));
  for (uint8_t byte : liar_bytes) listing.push_back(byte);
  EXPECT_EQ(DecodeResponse(listing).status().code(), StatusCode::kDataLoss);
}

TEST(WireFramingTest, LargeFrameUnderTheCapRoundTrips) {
  SocketPair pair;
  // A 16-attribute table is 65536 doubles = 512 KiB of cells — a real
  // serving payload, well past the socket buffer, exercising the
  // short-write/short-read retry loops.
  std::vector<double> cells(1u << 16);
  for (size_t i = 0; i < cells.size(); ++i) cells[i] = double(i) * 0.5;
  MarginalTable table(AttrSet::Full(16), std::move(cells));
  const std::vector<uint8_t> bytes =
      EncodeResponse(MakeTableResponse(table, 0, false, 1));
  ASSERT_LE(bytes.size(), kMaxFramePayload);

  std::thread writer(
      [&] { EXPECT_TRUE(WriteFrame(pair.a(), bytes).ok()); });
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(pair.b(), &payload, &clean_eof).ok());
  writer.join();
  EXPECT_EQ(payload, bytes);
  StatusOr<WireResponse> decoded = DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok());
  StatusOr<MarginalTable> back = decoded.value().ToTable();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().cells(), table.cells());
}

}  // namespace
}  // namespace priview::serve
