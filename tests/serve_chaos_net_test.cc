// Network chaos harness: each transport failpoint armed against a live
// server, with the drill asserting three things every time — the defense
// fires (the eviction/shed counter for the right cause moves), the abused
// connection observably dies from the peer's side, and the server keeps
// serving fresh clients after the fault clears. This is the adversarial
// dual of serve_supervisor_test: there the hostile behavior is real
// (slowloris bytes, unread responses), here it is injected at the fault
// sites so the same defenses fire deterministically on healthy traffic.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/server_metrics.h"
#include "serve/wire_protocol.h"
#include "table/attr_set.h"

namespace priview {
namespace {

using serve::EvictionCause;
using serve::ServerMetrics;
using serve::ShedCause;
using std::chrono::milliseconds;

bool WaitFor(const std::function<bool()>& pred, milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(10));
  }
  return pred();
}

class ChaosNetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisarmAll();
    Rng rng(515);
    Dataset data = MakeMsnbcLike(&rng, 600);
    PriViewOptions options;
    options.add_noise = false;
    PriViewSynopsis synopsis = PriViewSynopsis::Build(
        data, {AttrSet::FromIndices({0, 1, 2})}, options, &rng);

    static int run = 0;
    serve::ServerOptions server_options;
    server_options.socket_path =
        ::testing::TempDir() + "/chaos_net_" + std::to_string(run++) + ".sock";
    server_options.io_timeout_ms = 300;
    server_options.supervisor.idle_timeout_ms = 300;
    server_options.supervisor.handler_threads = 2;
    server_ = std::make_unique<serve::PriViewServer>(server_options);
    ASSERT_TRUE(server_->registry().Install("chaos", std::move(synopsis)).ok());
    ASSERT_TRUE(server_->Start().ok());
    socket_path_ = server_options.socket_path;
  }

  void TearDown() override {
    failpoint::DisarmAll();
    if (server_ != nullptr) server_->Stop();
  }

  StatusOr<serve::PriViewClient> NewClient() {
    serve::ClientOptions options;
    options.socket_path = socket_path_;
    options.connect_timeout_ms = 2000;
    options.io_timeout_ms = 2000;
    return serve::PriViewClient::Connect(options);
  }

  /// One query attempt on a fresh client; true when it answered.
  bool RoundTripWorks() {
    StatusOr<serve::PriViewClient> client = NewClient();
    if (!client.ok()) return false;
    return client.value()
        .Marginal("chaos", AttrSet::FromIndices({0, 2}))
        .ok();
  }

  /// Retries RoundTripWorks until it succeeds — the post-drill recovery
  /// check (the first attempt may race the fault being disarmed).
  void ExpectServerRecovered(const std::string& drill) {
    EXPECT_TRUE(WaitFor([&] { return RoundTripWorks(); }, milliseconds(5000)))
        << drill << ": server did not recover after the fault cleared";
  }

  ServerMetrics::Snapshot Counters() {
    return server_->metrics().TakeSnapshot();
  }

  std::unique_ptr<serve::PriViewServer> server_;
  std::string socket_path_;
};

TEST_F(ChaosNetTest, AcceptEmfileShedsViaSpareFdAndKeepsAccepting) {
  // Every accept behaves as if the process were out of fds. The spare-fd
  // path must shed each connection (never spin, never stop the loop) and
  // the moment the "fd pressure" clears, accepts work again.
  {
    failpoint::ScopedFailpoint fault("serve/accept-emfile", "always");
    ASSERT_TRUE(fault.status().ok());
    for (int i = 0; i < 3; ++i) {
      EXPECT_FALSE(RoundTripWorks()) << "attempt " << i
                                     << " served despite EMFILE injection";
    }
    EXPECT_TRUE(WaitFor(
        [&] {
          return Counters().shed_accepts[int(ShedCause::kEmfile)] >= 3;
        },
        milliseconds(2000)));
    EXPECT_EQ(server_->supervisor()->open_connections(), 0u);
  }
  ExpectServerRecovered("accept-emfile");
}

TEST_F(ChaosNetTest, PeerStallDrillEvictsOnTheFrameDeadline) {
  // A healthy readable peer is treated as stalled mid-frame: the request
  // never gets an answer and the connection dies as a frame-stall
  // eviction — the same verdict a real slowloris earns.
  {
    failpoint::ScopedFailpoint fault("serve/peer-stall", "always");
    ASSERT_TRUE(fault.status().ok());
    EXPECT_FALSE(RoundTripWorks());
    EXPECT_TRUE(WaitFor(
        [&] {
          return Counters().evictions[int(EvictionCause::kFrameStall)] > 0;
        },
        milliseconds(2000)));
  }
  ExpectServerRecovered("peer-stall");
}

TEST_F(ChaosNetTest, HalfOpenDrillEvictsOnTheIdleDeadline) {
  // A freshly accepted peer is backdated into the idle past: the sweep
  // must reap it as an idle eviction without the peer sending a byte.
  {
    failpoint::ScopedFailpoint fault("serve/half-open", "always");
    ASSERT_TRUE(fault.status().ok());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    // The eviction is observable as EOF on our side.
    std::vector<uint8_t> payload;
    bool clean_eof = false;
    const Status st = serve::ReadFrame(fd, &payload, &clean_eof, 3000);
    EXPECT_TRUE(clean_eof || !st.ok());
    ::close(fd);
    EXPECT_TRUE(WaitFor(
        [&] { return Counters().evictions[int(EvictionCause::kIdle)] > 0; },
        milliseconds(2000)));
  }
  ExpectServerRecovered("half-open");
}

TEST_F(ChaosNetTest, SlowReaderDrillEvictsAtResponseCompletion) {
  // The completed response is treated as landing on a peer that stopped
  // draining: evicted as an egress overflow instead of being enqueued.
  {
    failpoint::ScopedFailpoint fault("serve/slow-reader", "always");
    ASSERT_TRUE(fault.status().ok());
    EXPECT_FALSE(RoundTripWorks());
    EXPECT_TRUE(WaitFor(
        [&] {
          return Counters().evictions[int(EvictionCause::kEgressOverflow)] >
                 0;
        },
        milliseconds(2000)));
  }
  ExpectServerRecovered("slow-reader");
}

TEST_F(ChaosNetTest, ProbabilisticTransportStormNeverKillsTheServer) {
  // All four transport faults armed probabilistically at once, a seeded
  // storm of requests driven through: individual requests may fail, the
  // server process must stay live, and once the storm lifts it must serve
  // cleanly with connections fully accounted for.
  {
    failpoint::ScopedFailpoint f1("serve/accept-emfile", "p=0.2,seed=11");
    failpoint::ScopedFailpoint f2("serve/peer-stall", "p=0.2,seed=22");
    failpoint::ScopedFailpoint f3("serve/half-open", "p=0.2,seed=33");
    failpoint::ScopedFailpoint f4("serve/slow-reader", "p=0.2,seed=44");
    ASSERT_TRUE(f1.status().ok());
    ASSERT_TRUE(f2.status().ok());
    ASSERT_TRUE(f3.status().ok());
    ASSERT_TRUE(f4.status().ok());
    int served = 0;
    for (int i = 0; i < 24; ++i) {
      if (RoundTripWorks()) ++served;
    }
    // With each fault at p=0.2 some requests get through; the exact count
    // is seed-determined, the invariant is that chaos is partial.
    EXPECT_GT(served, 0) << "storm killed every request";
  }
  ExpectServerRecovered("storm");
  // Health must report ready and every abused connection must be closed.
  StatusOr<serve::PriViewClient> client = NewClient();
  ASSERT_TRUE(client.ok());
  StatusOr<serve::HealthReport> health = client.value().Health();
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health.value().ready);
  EXPECT_TRUE(WaitFor(
      [&] { return server_->supervisor()->open_connections() <= 1; },
      milliseconds(2000)))
      << "storm leaked connections";
}

}  // namespace
}  // namespace priview
