// Unit coverage for the solver bump arena (common/arena.h): alignment,
// rewind/reset discipline, multi-block growth, high-water coalescing, and
// the priview_solver_arena_* metrics the reconstruction entry point
// publishes from it.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "core/reconstruct.h"
#include "obs/metrics_registry.h"
#include "solver_golden_instances.h"

namespace priview {
namespace {

TEST(ArenaTest, AllocationsAreVectorAligned) {
  Arena arena;
  for (size_t n : {1u, 3u, 7u, 64u}) {
    const std::span<double> s = arena.AllocSpan<double>(n);
    ASSERT_EQ(s.size(), n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(s.data()) % 32, 0u)
        << "double spans must be 32-byte aligned for AVX2 loads";
  }
  void* p = arena.AllocBytes(10, Arena::kMaxAlign);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Arena::kMaxAlign, 0u);
}

TEST(ArenaTest, FillOverloadInitializes) {
  Arena arena;
  const std::span<double> s = arena.AllocSpan<double>(17, 2.5);
  for (double v : s) EXPECT_EQ(v, 2.5);
}

TEST(ArenaTest, RewindReleasesScopeAllocations) {
  Arena arena;
  (void)arena.AllocSpan<double>(8);
  const size_t used_before = arena.used();
  {
    Arena::Rewind rewind(arena);
    (void)arena.AllocSpan<double>(1024);
    EXPECT_GT(arena.used(), used_before);
  }
  EXPECT_EQ(arena.used(), used_before);
  // The rewound storage is reused in place: same pointer comes back.
  const std::span<double> a = arena.AllocSpan<double>(16);
  {
    Arena::Rewind rewind(arena);
    EXPECT_EQ(arena.AllocSpan<double>(16).data(), a.data() + 16);
  }
}

TEST(ArenaTest, GrowsAcrossBlocksAndResetCoalesces) {
  Arena arena(/*initial_bytes=*/128);
  // Far more than one block's worth.
  constexpr size_t kSpans = 64;
  std::vector<std::span<double>> spans;
  for (size_t i = 0; i < kSpans; ++i) {
    spans.push_back(arena.AllocSpan<double>(32, static_cast<double>(i)));
  }
  // Growth must not move earlier allocations (spans stay valid).
  for (size_t i = 0; i < kSpans; ++i) {
    for (double v : spans[i]) {
      ASSERT_EQ(v, static_cast<double>(i));
    }
  }
  EXPECT_FALSE(arena.warm());
  EXPECT_GE(arena.high_water_bytes(), kSpans * 32 * sizeof(double));
  EXPECT_GE(arena.capacity(), arena.high_water_bytes());

  const size_t hwm = arena.high_water_bytes();
  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.resets(), 1u);
  EXPECT_EQ(arena.high_water_bytes(), hwm);
  EXPECT_TRUE(arena.warm()) << "Reset must coalesce to one high-water block";
  // A same-shaped cycle now fits the single block.
  for (size_t i = 0; i < kSpans; ++i) (void)arena.AllocSpan<double>(32);
  EXPECT_TRUE(arena.warm());
}

TEST(ArenaTest, UsedAndHighWaterTrackRewinds) {
  Arena arena;
  (void)arena.AllocSpan<uint8_t>(100);
  const size_t used_small = arena.used();
  {
    Arena::Rewind rewind(arena);
    (void)arena.AllocSpan<uint8_t>(5000);
    EXPECT_GE(arena.high_water_bytes(), arena.used());
  }
  EXPECT_EQ(arena.used(), used_small);
  // High water persists past the rewind: it records the deepest point.
  EXPECT_GE(arena.high_water_bytes(), 5000u);
}

TEST(ArenaTest, ThreadLocalArenaIsStable) {
  Arena& a = ThreadLocalArena();
  Arena& b = ThreadLocalArena();
  EXPECT_EQ(&a, &b);
}

// End-to-end: a reconstruction request through the no-arena entry point
// recycles the lane arena and publishes the arena gauges/counters.
TEST(ArenaMetricsTest, ReconstructPublishesArenaMetrics) {
  const std::vector<MarginalTable> views = golden::ReconstructViews();
  const uint64_t resets_before = ThreadLocalArena().resets();
  (void)ReconstructMarginal(views, golden::ReconstructTarget(),
                            golden::kReconstructTotal,
                            ReconstructionMethod::kMaxEntropy);
  EXPECT_EQ(ThreadLocalArena().resets(), resets_before + 1)
      << "the request entry point must Reset() the lane arena";

  const std::string scrape = obs::MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(scrape.find("priview_solver_arena_hwm_bytes"), std::string::npos)
      << scrape;
  EXPECT_NE(scrape.find("priview_solver_arena_resets_total"),
            std::string::npos)
      << scrape;
  // The high-water gauge reflects a real solve: strictly positive. Skip
  // past the # HELP/# TYPE lines to the sample line itself.
  const std::string sample = "\npriview_solver_arena_hwm_bytes ";
  const size_t pos = scrape.find(sample);
  ASSERT_NE(pos, std::string::npos) << scrape;
  const double hwm = std::stod(scrape.substr(pos + sample.size()));
  EXPECT_GT(hwm, 0.0);
}

}  // namespace
}  // namespace priview
