// Tracer suite: arming semantics, span recording into the global registry,
// nesting depth, early/idempotent End, the slow-span log, and the
// torn-span self-heal contract. Spans record into the process-wide
// registry, so every assertion is a delta against the pre-test value.
#include "obs/tracer.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "obs/metrics_registry.h"

namespace priview::obs {
namespace {

uint64_t SpanCount(const char* name) {
  return MetricsRegistry::Global()
      .GetHistogram("priview_span_duration_us", {{"span", name}})
      ->total_count();
}

class TracerTest : public ::testing::Test {
 protected:
  ~TracerTest() override { Tracer::Global().Disarm(); }
};

TEST_F(TracerTest, DisarmedSpanIsInactiveAndRecordsNothing) {
  ASSERT_FALSE(Tracer::Global().armed());
  const uint64_t before = SpanCount("obs-test/disarmed");
  {
    TraceSpan span("obs-test/disarmed");
    EXPECT_FALSE(span.active());
    span.Annotate("ignored");
  }
  EXPECT_EQ(SpanCount("obs-test/disarmed"), before);
}

TEST_F(TracerTest, ArmedSpanRecordsOneObservation) {
  Tracer::Global().Arm();
  const uint64_t before = SpanCount("obs-test/armed");
  {
    TraceSpan span("obs-test/armed");
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(SpanCount("obs-test/armed"), before + 1);
}

TEST_F(TracerTest, EndIsIdempotent) {
  Tracer::Global().Arm();
  const uint64_t before = SpanCount("obs-test/idem");
  TraceSpan span("obs-test/idem");
  span.End();
  span.End();             // explicit double end
  EXPECT_FALSE(span.active());
  // ... and the destructor must not add a third.
  {
    TraceSpan inner("obs-test/idem");
    inner.End();
  }
  EXPECT_EQ(SpanCount("obs-test/idem"), before + 2);
}

TEST_F(TracerTest, NestedSpansEachRecord) {
  Tracer::Global().Arm();
  const uint64_t outer_before = SpanCount("obs-test/outer");
  const uint64_t inner_before = SpanCount("obs-test/inner");
  {
    TraceSpan outer("obs-test/outer");
    {
      TraceSpan inner("obs-test/inner");
    }
    {
      TraceSpan inner("obs-test/inner");
    }
  }
  EXPECT_EQ(SpanCount("obs-test/outer"), outer_before + 1);
  EXPECT_EQ(SpanCount("obs-test/inner"), inner_before + 2);
}

TEST_F(TracerTest, SpanStartedArmedRecordsEvenIfDisarmedMidFlight) {
  // Dropping the in-flight span would skew _count against _sum; the
  // contract is that a span started under an armed tracer completes.
  Tracer::Global().Arm();
  const uint64_t before = SpanCount("obs-test/midflight");
  {
    TraceSpan span("obs-test/midflight");
    Tracer::Global().Disarm();
  }
  EXPECT_EQ(SpanCount("obs-test/midflight"), before + 1);
}

TEST_F(TracerTest, SlowLogCapturesThresholdedSpansWithDetailAndDepth) {
  TracerOptions options;
  options.slow_span_threshold_us = 500;
  Tracer::Global().Arm(options);
  EXPECT_EQ(Tracer::Global().slow_threshold_us(), 500u);
  {
    TraceSpan fast("obs-test/fast");  // well under 500us
  }
  EXPECT_TRUE(Tracer::Global().SlowEntries().empty());
  {
    TraceSpan outer("obs-test/slow-outer");
    TraceSpan slow("obs-test/slow");
    slow.Annotate("scope={0,3}");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::vector<SlowSpanEntry> entries = Tracer::Global().SlowEntries();
  ASSERT_GE(entries.size(), 1u);
  bool found = false;
  for (const SlowSpanEntry& entry : entries) {
    if (entry.name != "obs-test/slow") continue;
    found = true;
    EXPECT_EQ(entry.detail, "scope={0,3}");
    EXPECT_GE(entry.duration_us, 500u);
    EXPECT_EQ(entry.depth, 1);  // nested one level under slow-outer
  }
  EXPECT_TRUE(found);
  EXPECT_GE(Tracer::Global().SlowSpanCount(), 1u);
  Tracer::Global().ClearSlowLog();
  EXPECT_TRUE(Tracer::Global().SlowEntries().empty());
}

TEST_F(TracerTest, SlowLogRingBufferDropsOldestButKeepsTheTotal) {
  TracerOptions options;
  options.slow_span_threshold_us = 1;
  options.slow_log_capacity = 2;
  Tracer::Global().Arm(options);
  for (int i = 0; i < 3; ++i) {
    TraceSpan span("obs-test/ring");
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(Tracer::Global().SlowEntries().size(), 2u);
  EXPECT_EQ(Tracer::Global().SlowSpanCount(), 3u);
}

TEST_F(TracerTest, RearmingClearsTheSlowLog) {
  TracerOptions options;
  options.slow_span_threshold_us = 1;
  Tracer::Global().Arm(options);
  {
    TraceSpan span("obs-test/rearm");
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_FALSE(Tracer::Global().SlowEntries().empty());
  Tracer::Global().Arm(options);
  EXPECT_TRUE(Tracer::Global().SlowEntries().empty());
  EXPECT_EQ(Tracer::Global().SlowSpanCount(), 0u);
}

TEST_F(TracerTest, TornSpanIsCountedAndDepthSelfHeals) {
#if !PRIVIEW_FAILPOINTS_ENABLED
  GTEST_SKIP() << "failpoints compiled out (PRIVIEW_FAILPOINTS=OFF)";
#endif
  TracerOptions options;
  options.slow_span_threshold_us = 1;
  Tracer::Global().Arm(options);
  Counter* torn =
      MetricsRegistry::Global().GetCounter("priview_spans_torn_total");
  const uint64_t torn_before = torn->value();
  const uint64_t inner_before = SpanCount("obs-test/torn-inner");
  {
    TraceSpan outer("obs-test/torn-outer");
    {
      failpoint::ScopedFailpoint scoped("obs/span-torn", "always");
      ASSERT_TRUE(scoped.status().ok());
      TraceSpan inner("obs-test/torn-inner");
    }  // inner's End fires the failpoint: counted as torn, not recorded
  }  // outer's End (failpoint gone) restores the thread depth to 0
  EXPECT_EQ(torn->value(), torn_before + 1);
  EXPECT_EQ(SpanCount("obs-test/torn-inner"), inner_before);

  // Depth healed: a fresh top-level span runs at depth 0 again.
  Tracer::Global().ClearSlowLog();
  {
    TraceSpan fresh("obs-test/torn-fresh");
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const std::vector<SlowSpanEntry> entries = Tracer::Global().SlowEntries();
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries.back().name, "obs-test/torn-fresh");
  EXPECT_EQ(entries.back().depth, 0);
  failpoint::DisarmAll();
}

TEST_F(TracerTest, TornTopLevelSpanRestoresDepth) {
#if !PRIVIEW_FAILPOINTS_ENABLED
  GTEST_SKIP() << "failpoints compiled out (PRIVIEW_FAILPOINTS=OFF)";
#endif
  TracerOptions options;
  options.slow_span_threshold_us = 1;
  Tracer::Global().Arm(options);
  {
    failpoint::ScopedFailpoint scoped("obs/span-torn", "always");
    ASSERT_TRUE(scoped.status().ok());
    TraceSpan top("obs-test/torn-top");
  }  // a depth-0 tear: no enclosing span exists to heal the depth behind it
  // The torn span must restore the thread depth itself, so later spans on
  // this thread still report depth 0, not a permanent +1 skew.
  Tracer::Global().ClearSlowLog();
  {
    TraceSpan fresh("obs-test/after-top-tear");
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const std::vector<SlowSpanEntry> entries = Tracer::Global().SlowEntries();
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries.back().name, "obs-test/after-top-tear");
  EXPECT_EQ(entries.back().depth, 0);
  failpoint::DisarmAll();
}

TEST_F(TracerTest, ConcurrentArmedSpansAreRaceFree) {
  // Spans on many threads into one histogram family; under tsan this is
  // the race proof for Begin/End against Arm-time state.
  Tracer::Global().Arm();
  const uint64_t before = SpanCount("obs-test/mt");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span("obs-test/mt");
        TraceSpan nested("obs-test/mt-nested");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(SpanCount("obs-test/mt"), before + uint64_t{kThreads} * kPerThread);
}

}  // namespace
}  // namespace priview::obs
