// End-to-end serving suite: a real PriViewServer on a Unix-domain socket,
// real PriViewClients, multiple hosted synopses. Covers the full request
// surface (marginal / conjunction / roll-up / slice / dice / stats /
// list), error paths that must not kill the connection, hot-swap while
// clients stream queries, and shutdown behaviour.
#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "obs/tracer.h"
#include "serve/client.h"

namespace priview::serve {
namespace {

PriViewSynopsis MakeSynopsis(uint64_t seed, double epsilon = 1.0) {
  Rng rng(seed);
  Dataset data = MakeMsnbcLike(&rng, 5000);
  PriViewOptions options;
  options.add_noise = false;
  options.epsilon = epsilon;
  return PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4}),
       AttrSet::FromIndices({4, 5, 6})},
      options, &rng);
}

class ServeE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    socket_path_ = ::testing::TempDir() + "/priview_e2e_" +
                   std::to_string(::getpid()) + "_" +
                   std::to_string(counter.fetch_add(1)) + ".sock";
    ServerOptions options;
    options.socket_path = socket_path_;
    server_ = std::make_unique<PriViewServer>(options);
    ASSERT_TRUE(server_->registry().Install("eps1", MakeSynopsis(3, 1.0)).ok());
    ASSERT_TRUE(
        server_->registry().Install("eps05", MakeSynopsis(3, 0.5)).ok());
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  PriViewClient Connect() {
    StatusOr<PriViewClient> client = PriViewClient::Connect(socket_path_);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::string socket_path_;
  std::unique_ptr<PriViewServer> server_;
};

TEST_F(ServeE2ETest, TcpEndpointAnswersAndMatchesTheUnixSocket) {
  // A second server with both listeners: an ephemeral TCP port (0 = let
  // the kernel pick, read it back) alongside the usual Unix socket.
  ServerOptions options;
  options.socket_path = socket_path_ + ".tcp";
  options.tcp_port = 0;
  PriViewServer server(options);
  ASSERT_TRUE(server.registry().Install("tcp", MakeSynopsis(3, 1.0)).ok());
  ASSERT_TRUE(server.Start().ok());
  const int port = server.bound_tcp_port();
  ASSERT_GT(port, 0);

  ClientOptions copts;
  copts.tcp_host = "127.0.0.1";
  copts.tcp_port = port;
  StatusOr<PriViewClient> tcp_client = PriViewClient::Connect(copts);
  ASSERT_TRUE(tcp_client.ok()) << tcp_client.status().ToString();
  StatusOr<PriViewClient> unix_client =
      PriViewClient::Connect(options.socket_path);
  ASSERT_TRUE(unix_client.ok()) << unix_client.status().ToString();

  const AttrSet scope = AttrSet::FromIndices({0, 1, 2});
  StatusOr<ClientTable> via_tcp = tcp_client.value().Marginal("tcp", scope);
  StatusOr<ClientTable> via_unix = unix_client.value().Marginal("tcp", scope);
  ASSERT_TRUE(via_tcp.ok()) << via_tcp.status().ToString();
  ASSERT_TRUE(via_unix.ok()) << via_unix.status().ToString();
  EXPECT_EQ(via_tcp.value().tier, ServeTier::kFull);
  EXPECT_EQ(via_tcp.value().table.cells(), via_unix.value().table.cells());

  // Errors come back over TCP as responses, not dead sockets.
  EXPECT_EQ(
      tcp_client.value().Marginal("absent", scope).status().code(),
      StatusCode::kNotFound);
  StatusOr<ClientTable> again = tcp_client.value().Marginal("tcp", scope);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
  server.Stop();
}

TEST_F(ServeE2ETest, MarginalOverTheWireMatchesTheEngine) {
  PriViewClient client = Connect();
  const AttrSet scope = AttrSet::FromIndices({0, 1, 2});
  StatusOr<ClientTable> answer = client.Marginal("eps1", scope);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer.value().tier, ServeTier::kFull);
  EXPECT_EQ(answer.value().epoch, 1u);

  const StatusOr<MarginalTable> reference =
      server_->registry().Acquire("eps1").value()->engine().TryMarginal(scope);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(answer.value().table.cells(), reference.value().cells());
}

TEST_F(ServeE2ETest, BothHostedSynopsesAnswerIndependently) {
  PriViewClient client = Connect();
  const AttrSet scope = AttrSet::FromIndices({2, 3, 4});
  StatusOr<ClientTable> a = client.Marginal("eps1", scope);
  StatusOr<ClientTable> b = client.Marginal("eps05", scope);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().epoch, 1u);
  EXPECT_EQ(b.value().epoch, 2u);
  // Same data, noiseless: content agrees even though releases differ.
  EXPECT_EQ(a.value().table.cells(), b.value().table.cells());
}

TEST_F(ServeE2ETest, ConjunctionMatchesTheMarginalCell) {
  PriViewClient client = Connect();
  const AttrSet attrs = AttrSet::FromIndices({0, 2});
  StatusOr<ClientTable> table = client.Marginal("eps1", attrs);
  ASSERT_TRUE(table.ok());
  for (uint64_t assignment = 0; assignment < 4; ++assignment) {
    StatusOr<ClientValue> value =
        client.Conjunction("eps1", attrs, assignment);
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_DOUBLE_EQ(value.value().value, table.value().table.At(assignment));
  }
  // Out-of-range assignment: a clean error.
  EXPECT_EQ(client.Conjunction("eps1", attrs, 4).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(ServeE2ETest, CubeOpsMatchClientSideComputation) {
  PriViewClient client = Connect();
  const AttrSet cube = AttrSet::FromIndices({0, 1, 2});
  StatusOr<ClientTable> full = client.Marginal("eps1", cube);
  ASSERT_TRUE(full.ok());
  const MarginalTable& reference = full.value().table;

  const AttrSet keep = AttrSet::FromIndices({0, 2});
  StatusOr<ClientTable> rollup = client.RollUp("eps1", cube, keep);
  ASSERT_TRUE(rollup.ok()) << rollup.status().ToString();
  EXPECT_EQ(rollup.value().table.cells(),
            cube::RollUp(reference, keep).cells());

  StatusOr<ClientTable> slice = client.Slice("eps1", cube, /*attr=*/1,
                                             /*value=*/1);
  ASSERT_TRUE(slice.ok()) << slice.status().ToString();
  EXPECT_EQ(slice.value().table.cells(),
            cube::Slice(reference, 1, 1).cells());

  const AttrSet fixed = AttrSet::FromIndices({0, 1});
  StatusOr<ClientTable> dice = client.Dice("eps1", cube, fixed, 0b10);
  ASSERT_TRUE(dice.ok()) << dice.status().ToString();
  EXPECT_EQ(dice.value().table.cells(),
            cube::Dice(reference, fixed, 0b10).cells());
}

TEST_F(ServeE2ETest, InvalidCubeOpsRejectedBeforeAnySolve) {
  PriViewClient client = Connect();
  const AttrSet cube = AttrSet::FromIndices({0, 1});
  // keep not a subset of the cube scope.
  EXPECT_EQ(client.RollUp("eps1", cube, AttrSet::FromIndices({5}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // slice attribute outside the scope.
  EXPECT_EQ(client.Slice("eps1", cube, 5, 1).status().code(),
            StatusCode::kInvalidArgument);
  // dice values out of range for the fixed set.
  EXPECT_EQ(client.Dice("eps1", cube, AttrSet::FromIndices({0}), 0b10)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // The connection survived all three rejections.
  EXPECT_TRUE(client.Marginal("eps1", cube).ok());
}

TEST_F(ServeE2ETest, ListAndStatsReflectTheServer) {
  PriViewClient client = Connect();
  ASSERT_TRUE(client.Marginal("eps1", AttrSet::FromIndices({0})).ok());

  StatusOr<std::string> listed = client.List();
  ASSERT_TRUE(listed.ok());
  EXPECT_NE(listed.value().find("eps1"), std::string::npos);
  EXPECT_NE(listed.value().find("eps05"), std::string::npos);
  EXPECT_NE(listed.value().find("d=9"), std::string::npos);

  StatusOr<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("\"admitted\""), std::string::npos);
  EXPECT_NE(stats.value().find("\"connections_opened\""), std::string::npos);
}

TEST_F(ServeE2ETest, MetricsScrapeExposesPublishAndBrokerHistograms) {
  // Acceptance criterion: the wire `metrics` request returns a Prometheus
  // scrape carrying the publish-phase span histograms and the broker
  // queue-wait histogram, plus the slow-span log when the threshold is on.
  obs::TracerOptions trace_options;
  trace_options.slow_span_threshold_us = 1;  // everything is "slow"
  obs::Tracer::Global().Arm(trace_options);
  // A publish under armed tracing lands the per-phase spans in the
  // process-wide registry; Install runs the same build path.
  ASSERT_TRUE(server_->registry().Install("traced", MakeSynopsis(7, 1.0)).ok());

  PriViewClient client = Connect();
  // Generous deadline: under sanitizer builds on a loaded machine the
  // default 1 s budget can expire and fail the solve this test depends
  // on; deadline behavior has its own tests.
  ASSERT_TRUE(client
                  .Marginal("traced", AttrSet::FromIndices({0, 1}),
                            /*deadline_ms=*/30'000)
                  .ok());

  StatusOr<std::string> scrape = client.Metrics();
  // The dispatcher fulfills the answer promise before its broker/dispatch
  // span unwinds, so that span's registration can trail the unblocked
  // client by a hair. Eventual visibility is the scrape contract; poll
  // briefly instead of racing the dispatcher thread.
  for (int retry = 0;
       retry < 100 && scrape.ok() &&
       scrape.value().find("span=\"broker/dispatch\"") == std::string::npos;
       ++retry) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    scrape = client.Metrics();
  }
  obs::Tracer::Global().Disarm();
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  const std::string& text = scrape.value();
  const size_t npos = std::string::npos;

  // Server-side lifecycle counters and broker histograms.
  EXPECT_NE(text.find("priview_serve_requests_total{event=\"admitted\"}"),
            npos);
  EXPECT_NE(text.find("# TYPE priview_broker_queue_wait_us histogram"), npos);
  EXPECT_NE(text.find("priview_broker_queue_wait_us_bucket"), npos);
  EXPECT_NE(text.find("priview_broker_coalesce_width_count"), npos);
  EXPECT_NE(text.find("priview_broker_dispatch_latency_us_sum"), npos);
  EXPECT_NE(text.find("priview_broker_queue_depth"), npos);

  // Publish-phase histograms from the armed build, and the query span
  // from the marginal that just went through the broker.
  EXPECT_NE(text.find("# TYPE priview_span_duration_us histogram"), npos);
  EXPECT_NE(text.find("priview_span_duration_us_bucket{span=\"publish\""),
            npos);
  EXPECT_NE(text.find("span=\"publish/count\""), npos);
  // The broker's coalesced kFull dispatch answers through AnswerBatch,
  // whose misses run under query/solve spans.
  EXPECT_NE(text.find("span=\"query/solve\""), npos);
  EXPECT_NE(text.find("span=\"broker/dispatch\""), npos);

  // The slow-span log rides along as exposition comments.
  EXPECT_NE(text.find("# slow-span "), npos);

  // Stats (JSON) and metrics (Prometheus) stay distinct surfaces.
  StatusOr<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().find("# TYPE"), npos);
}

TEST_F(ServeE2ETest, MetricsScrapeExposesTransportSeries) {
  // The supervisor's transport series must render in the same kMetrics
  // scrape as the broker's: every eviction and shed cause pre-registered
  // (so dashboards see zeros before the first incident), the connection
  // gauges live, and every counter following the priview_*_total naming
  // convention.
  PriViewClient client = Connect();
  ASSERT_TRUE(
      client.Marginal("eps1", AttrSet::FromIndices({0, 1}), 30'000).ok());
  StatusOr<std::string> scrape = client.Metrics();
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  const std::string& text = scrape.value();
  const size_t npos = std::string::npos;

  EXPECT_NE(text.find("# TYPE priview_serve_evictions_total counter"), npos);
  for (const char* cause : {"frame-stall", "idle", "egress-overflow",
                            "pipeline-overflow", "protocol-error",
                            "shutdown"}) {
    EXPECT_NE(text.find("priview_serve_evictions_total{cause=\"" +
                        std::string(cause) + "\"}"),
              npos)
        << "missing eviction cause " << cause;
  }
  EXPECT_NE(text.find("# TYPE priview_serve_accepts_shed_total counter"),
            npos);
  for (const char* cause : {"conn-cap", "ip-cap", "emfile", "overload"}) {
    EXPECT_NE(text.find("priview_serve_accepts_shed_total{cause=\"" +
                        std::string(cause) + "\"}"),
              npos)
        << "missing shed cause " << cause;
  }

  // The connection gauges: this scrape rides an open connection, so the
  // open-connections gauge must read at least 1 (the metrics request
  // itself answers outside the broker, so inflight may already be 0).
  EXPECT_NE(text.find("# TYPE priview_serve_open_connections gauge"), npos);
  EXPECT_NE(text.find("# TYPE priview_serve_inflight_requests gauge"), npos);
  EXPECT_NE(text.find("# TYPE priview_serve_overload_shedding gauge"), npos);
  EXPECT_NE(text.find("# TYPE priview_serve_egress_buffer_hwm_bytes gauge"),
            npos);
  const size_t open_pos = text.find("\npriview_serve_open_connections ");
  ASSERT_NE(open_pos, npos);
  EXPECT_GE(std::stol(text.substr(
                open_pos + std::strlen("\npriview_serve_open_connections "))),
            1);

  // Naming hygiene, enforced mechanically: every series Prometheus calls
  // a counter must end in _total, and no gauge may claim that suffix.
  std::istringstream lines(text);
  std::string line;
  int counters_seen = 0;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string hash, type_kw, name, kind;
    if (!(fields >> hash >> type_kw >> name >> kind)) continue;
    if (hash != "#" || type_kw != "TYPE") continue;
    if (kind == "counter") {
      ++counters_seen;
      EXPECT_TRUE(name.size() > 6 &&
                  name.compare(name.size() - 6, 6, "_total") == 0)
          << "counter without _total suffix: " << name;
    } else if (kind == "gauge") {
      EXPECT_TRUE(name.size() <= 6 ||
                  name.compare(name.size() - 6, 6, "_total") != 0)
          << "gauge with counter suffix: " << name;
    }
  }
  EXPECT_GT(counters_seen, 0);
}

TEST_F(ServeE2ETest, UnknownSynopsisErrorKeepsTheConnectionUsable) {
  PriViewClient client = Connect();
  EXPECT_EQ(client.Marginal("ghost", AttrSet::FromIndices({0}))
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(client.Marginal("eps1", AttrSet::FromIndices({0})).ok());
  EXPECT_TRUE(client.connected());
}

TEST_F(ServeE2ETest, MalformedPayloadGetsAnErrorResponseNotADeadSocket) {
  // Speak the framing by hand: a well-framed but semantically garbage
  // payload must produce an error response and leave the stream usable.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  ASSERT_TRUE(WriteFrame(fd, {0x63}).ok());  // unknown message type
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(fd, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  StatusOr<WireResponse> error = DecodeResponse(payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().type, MessageType::kError);

  // Same connection, now a valid request: still served.
  WireRequest request;
  request.type = MessageType::kMarginal;
  request.synopsis = "eps1";
  request.target_mask = AttrSet::FromIndices({0, 1}).mask();
  ASSERT_TRUE(WriteFrame(fd, EncodeRequest(request)).ok());
  ASSERT_TRUE(ReadFrame(fd, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  StatusOr<WireResponse> answer = DecodeResponse(payload);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value().type, MessageType::kTable);
  ::close(fd);
  EXPECT_GE(server_->metrics().TakeSnapshot().frame_errors, 1u);
}

TEST_F(ServeE2ETest, HotSwapMidStreamNeverErrorsAQuery) {
  // Client threads stream marginals while the main thread hot-swaps the
  // same (bit-identical) release repeatedly. Acceptance criterion from
  // the issue: the swap never surfaces as a query error, and answers for
  // the unchanged synopsis stay bit-identical.
  const AttrSet scope = AttrSet::FromIndices({2, 3, 4});
  const std::vector<double> expected =
      MakeSynopsis(3, 1.0).Query(scope).cells();

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<uint64_t> max_epoch{0};
  std::vector<std::thread> streams;
  for (int t = 0; t < 3; ++t) {
    streams.emplace_back([&] {
      StatusOr<PriViewClient> client = PriViewClient::Connect(socket_path_);
      if (!client.ok()) {
        errors.fetch_add(1);
        return;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        StatusOr<ClientTable> answer = client.value().Marginal("eps1", scope);
        if (!answer.ok() || answer.value().table.cells() != expected) {
          errors.fetch_add(1);
        } else {
          uint64_t seen = max_epoch.load();
          while (seen < answer.value().epoch &&
                 !max_epoch.compare_exchange_weak(seen, answer.value().epoch)) {
          }
        }
      }
    });
  }
  for (int swap = 0; swap < 15; ++swap) {
    ASSERT_TRUE(server_->registry().Install("eps1", MakeSynopsis(3, 1.0)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // A query issued after the last swap must serve from a swapped-in epoch
  // (deterministic — the streaming threads' observations are best-effort).
  PriViewClient prober = Connect();
  StatusOr<ClientTable> probed = prober.Marginal("eps1", scope);
  ASSERT_TRUE(probed.ok());
  EXPECT_GT(probed.value().epoch, 2u);
  EXPECT_EQ(probed.value().table.cells(), expected);

  stop.store(true);
  for (std::thread& stream : streams) stream.join();
  EXPECT_EQ(errors.load(), 0);
  (void)max_epoch;
}

TEST_F(ServeE2ETest, SeriesOverTheWireMatchesEveryRetainedEpoch) {
  // A server retaining history answers windowed time-series queries; each
  // point must be bit-identical to the corresponding epoch's own engine.
  ServerOptions options;
  options.socket_path = socket_path_ + ".series";
  options.history_depth = 3;
  PriViewServer server(options);
  for (int epoch = 0; epoch < 3; ++epoch) {
    ASSERT_TRUE(server.registry().Install("ts", MakeSynopsis(3, 1.0)).ok());
  }
  ASSERT_TRUE(server.Start().ok());
  StatusOr<PriViewClient> client = PriViewClient::Connect(options.socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const AttrSet scope = AttrSet::FromIndices({0, 1, 2});
  StatusOr<ClientSeries> series = client.value().Series("ts", scope, 3);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_EQ(series.value().points.size(), 3u);
  EXPECT_EQ(series.value().tier, ServeTier::kFull);

  const auto hosts = server.registry().AcquireSeries("ts", 3).value();
  ASSERT_EQ(hosts.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(series.value().points[i].epoch, hosts[i]->epoch());
    EXPECT_EQ(series.value().points[i].table.cells(),
              hosts[i]->engine().TryMarginal(scope).value().cells());
  }
  EXPECT_GT(series.value().points[0].epoch, series.value().points[2].epoch);

  // Trend deltas over the wire: point 0 is the current level, later points
  // are (current - that epoch) cellwise.
  StatusOr<ClientSeries> deltas = client.value().TrendDeltas("ts", scope, 3);
  ASSERT_TRUE(deltas.ok()) << deltas.status().ToString();
  ASSERT_EQ(deltas.value().points.size(), 3u);
  EXPECT_EQ(deltas.value().points[0].table.cells(),
            series.value().points[0].table.cells());
  for (size_t i = 1; i < 3; ++i) {
    const std::vector<double>& current = series.value().points[0].table.cells();
    const std::vector<double>& older = series.value().points[i].table.cells();
    const std::vector<double>& got = deltas.value().points[i].table.cells();
    ASSERT_EQ(got.size(), current.size());
    for (size_t c = 0; c < got.size(); ++c) {
      EXPECT_DOUBLE_EQ(got[c], current[c] - older[c]);
    }
  }

  // A window wider than the retained history clamps instead of failing.
  EXPECT_EQ(client.value().Series("ts", scope, 50).value().points.size(), 3u);
  // Error paths answer as typed responses on a live connection.
  EXPECT_EQ(client.value().Series("ghost", scope, 2).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client.value().Series("ts", scope, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.value().connected());
  server.Stop();
}

TEST_F(ServeE2ETest, ListSynopsesReturnsTheTypedCatalog) {
  PriViewClient client = Connect();
  StatusOr<std::vector<SynopsisListing>> listed = client.ListSynopses();
  ASSERT_TRUE(listed.ok()) << listed.status().ToString();
  ASSERT_EQ(listed.value().size(), 2u);

  bool saw_eps1 = false;
  for (const SynopsisListing& entry : listed.value()) {
    EXPECT_TRUE(entry.name == "eps1" || entry.name == "eps05") << entry.name;
    EXPECT_GT(entry.epoch, 0u);
    EXPECT_GT(entry.install_unix_ms, 0u);
    EXPECT_EQ(entry.d, 9);
    EXPECT_EQ(entry.views, 3u);
    EXPECT_TRUE(entry.fully_intact);
    if (entry.name == "eps1") {
      saw_eps1 = true;
      EXPECT_DOUBLE_EQ(entry.epsilon, 1.0);
    } else {
      EXPECT_DOUBLE_EQ(entry.epsilon, 0.5);
    }
  }
  EXPECT_TRUE(saw_eps1);
}

TEST_F(ServeE2ETest, StopClosesClientsAndIsIdempotent) {
  PriViewClient client = Connect();
  ASSERT_TRUE(client.Marginal("eps1", AttrSet::FromIndices({0})).ok());
  server_->Stop();
  // The in-flight connection is gone: the next request fails transport.
  EXPECT_FALSE(client.Marginal("eps1", AttrSet::FromIndices({0})).ok());
  EXPECT_FALSE(client.connected());
  // And nobody new can connect.
  EXPECT_FALSE(PriViewClient::Connect(socket_path_).ok());
  server_->Stop();  // idempotent
}

}  // namespace
}  // namespace priview::serve
