// Cross-thread-count determinism of the publish path under the
// work-stealing, phase-overlapped scheduler: a full noisy publish and a
// delta-epoch rebuild must be bit-identical at 1/2/4/8/16 threads (with
// stealing enabled), and recovery from injected task faults must not
// perturb a single bit.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/synopsis.h"
#include "data/window.h"
#include "design/covering_design.h"
#include "stream/delta_counter.h"
#include "table/attr_set.h"
#include "table/dataset.h"

namespace priview {
namespace {

constexpr int kThreadMatrix[] = {1, 2, 4, 8, 16};

class PublishDeterminismTest : public ::testing::Test {
 protected:
  ~PublishDeterminismTest() override {
    failpoint::DisarmAll();
    parallel::SetThreadCount(0);
  }
};

Dataset RandomDataset(int d, size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data(d);
  const uint64_t mask = (d == 64) ? ~0ull : ((1ull << d) - 1);
  for (size_t i = 0; i < n; ++i) data.Add(rng.NextUint64() & mask);
  return data;
}

void ExpectBitIdentical(const PriViewSynopsis& got,
                        const PriViewSynopsis& want, int threads) {
  ASSERT_EQ(got.views().size(), want.views().size());
  EXPECT_EQ(got.total(), want.total()) << "threads=" << threads;
  for (size_t v = 0; v < want.views().size(); ++v) {
    ASSERT_EQ(got.views()[v].attrs().mask(), want.views()[v].attrs().mask());
    ASSERT_EQ(got.views()[v].cells(), want.views()[v].cells())
        << "view " << v << " threads=" << threads;
  }
}

TEST_F(PublishDeterminismTest, PublishIsBitIdenticalAcrossThreadCounts) {
  // d=20, ell=8 gives 256-cell views; enough views span several accumulator
  // groups, so the overlapped graph genuinely interleaves count, merge and
  // noise tasks instead of degenerating to one group.
  const Dataset data = RandomDataset(20, 20000, 404);
  Rng design_rng(7);
  const CoveringDesign design = MakeCoveringDesign(20, 8, 2, &design_rng);
  PriViewOptions options;
  options.epsilon = 0.9;

  std::vector<PriViewSynopsis> runs;
  for (int threads : kThreadMatrix) {
    parallel::SetThreadCount(threads);
    Rng rng(5150);  // fresh, identical seed per run
    runs.push_back(PriViewSynopsis::Build(data, design.blocks, options, &rng));
    if (runs.size() > 1) {
      ExpectBitIdentical(runs.back(), runs.front(), threads);
    }
  }
}

TEST_F(PublishDeterminismTest, DeltaEpochRebuildIsBitIdenticalAcrossThreads) {
  const int d = 16;
  Rng design_rng(23);
  const CoveringDesign design = MakeCoveringDesign(d, 6, 2, &design_rng);
  PriViewOptions options;
  options.epsilon = 1.2;

  // Three epochs of churn, replayed identically at every thread count: the
  // delta recounts ride the same scheduler as a from-scratch publish.
  Rng record_rng(88);
  const uint64_t mask = (1ull << d) - 1;
  std::vector<uint64_t> window;
  std::vector<EpochDelta> deltas(3);
  for (size_t e = 0; e < deltas.size(); ++e) {
    for (size_t i = 0; i < 4000; ++i) {
      deltas[e].added.push_back(record_rng.NextUint64() & mask);
    }
    if (e > 0) {
      // Retire records that entered in the previous epoch.
      deltas[e].removed.assign(deltas[e - 1].added.begin(),
                               deltas[e - 1].added.begin() + 1500);
    }
  }
  for (const EpochDelta& delta : deltas) {
    for (uint64_t r : delta.removed) {
      window.erase(std::find(window.begin(), window.end(), r));
    }
    window.insert(window.end(), delta.added.begin(), delta.added.end());
  }
  const Dataset window_data(d, window);

  std::vector<PriViewSynopsis> runs;
  for (int threads : kThreadMatrix) {
    parallel::SetThreadCount(threads);
    StatusOr<stream::DeltaViewCounter> counter =
        stream::DeltaViewCounter::Create(d, design.blocks);
    ASSERT_TRUE(counter.ok());
    for (const EpochDelta& delta : deltas) {
      counter.value().ApplyDelta(delta);
    }
    // The running counts equal a from-scratch window recount, bit for bit.
    const std::vector<MarginalTable> recount =
        window_data.CountMarginals(design.blocks);
    for (size_t v = 0; v < recount.size(); ++v) {
      ASSERT_EQ(counter.value().counts()[v].cells(), recount[v].cells())
          << "view " << v << " threads=" << threads;
    }
    Rng rng(31337);
    StatusOr<PriViewSynopsis> rebuilt = PriViewSynopsis::TryBuildFromCounts(
        d, counter.value().CountsCopy(), options, &rng);
    ASSERT_TRUE(rebuilt.ok());
    runs.push_back(std::move(rebuilt).value());
    if (runs.size() > 1) {
      ExpectBitIdentical(runs.back(), runs.front(), threads);
    }
  }

  // And the epoch rebuild equals the one-shot publish over the same
  // window: the two entry points share every post-count stage.
  parallel::SetThreadCount(4);
  Rng rng(31337);
  const PriViewSynopsis direct =
      PriViewSynopsis::Build(window_data, design.blocks, options, &rng);
  ExpectBitIdentical(direct, runs.front(), 4);
}

#if PRIVIEW_FAILPOINTS_ENABLED
TEST_F(PublishDeterminismTest, InjectedTaskFaultsLeavePublishBitIdentical) {
  const Dataset data = RandomDataset(18, 12000, 77);
  Rng design_rng(3);
  const CoveringDesign design = MakeCoveringDesign(18, 7, 2, &design_rng);
  PriViewOptions options;
  options.epsilon = 1.0;

  parallel::SetThreadCount(1);
  Rng clean_rng(900);
  const PriViewSynopsis clean =
      PriViewSynopsis::Build(data, design.blocks, options, &clean_rng);

  for (int threads : kThreadMatrix) {
    parallel::SetThreadCount(threads);
    failpoint::ScopedFailpoint scoped("parallel/task-throw", "p=0.5,seed=27");
    ASSERT_TRUE(scoped.status().ok());
    const uint64_t retries_before = parallel::InlineRetryCount();
    Rng rng(900);
    const PriViewSynopsis faulted =
        PriViewSynopsis::Build(data, design.blocks, options, &rng);
    ExpectBitIdentical(faulted, clean, threads);
    // The drill actually fired: recovery ran, and recovered bit-exactly.
    EXPECT_GT(parallel::InlineRetryCount(), retries_before)
        << "threads=" << threads;
  }
}
#endif  // PRIVIEW_FAILPOINTS_ENABLED

}  // namespace
}  // namespace priview
