// End-to-end release lifecycle: data owner runs the budgeted pipeline and
// saves the synopsis; analyst loads it and works through the query engine.
// This is the integration path the CLI tool drives.
#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pipeline.h"
#include "core/query_engine.h"
#include "core/serialization.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

namespace priview {
namespace {

TEST(ReleaseLifecycleTest, OwnerBuildsAnalystQueries) {
  // --- Owner side ---
  Rng owner_rng(2024);
  Dataset data = MakeKosarakLike(&owner_rng, 60000);
  PipelineOptions options;
  options.total_epsilon = 1.0;
  StatusOr<PipelineResult> built =
      BuildPriViewPipeline(data, options, &owner_rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  std::stringstream wire;  // stands in for the published file
  ASSERT_TRUE(WriteSynopsis(built.value().synopsis, &wire).ok());

  // --- Analyst side: no access to `data` beyond this point. ---
  StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&wire);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const PriViewSynopsis& synopsis = loaded.value();
  const QueryEngine engine(&synopsis);

  // Epsilon provenance survived the round trip.
  EXPECT_NEAR(synopsis.options().epsilon, 0.999, 1e-9);

  // Marginals across several k from one release.
  Rng qrng(9);
  const double n = static_cast<double>(data.size());
  for (int k : {2, 4, 6}) {
    for (AttrSet q : SampleQuerySets(32, k, 5, &qrng)) {
      const MarginalTable answer = synopsis.Query(q);
      const MarginalTable truth = data.CountMarginal(q);
      const MarginalTable uniform(
          q, n / static_cast<double>(size_t{1} << k));
      EXPECT_LT(answer.L2DistanceTo(truth), uniform.L2DistanceTo(truth))
          << "k=" << k << " q=" << q.ToString();
    }
  }

  // Engine-level statistics agree with direct reconstruction.
  const AttrSet pair = AttrSet::FromIndices({0, 1});
  const MarginalTable t = synopsis.Query(pair);
  EXPECT_NEAR(engine.ConjunctionCount(pair, 0b11), t.At(0b11), 1e-9);
  EXPECT_NEAR(engine.Probability(pair, 0b11),
              t.At(0b11) / synopsis.total(), 1e-12);

  // Popular-page lift should be finite and positive on the private view.
  const double lift = engine.Lift(0, 1);
  EXPECT_GT(lift, 0.0);
  EXPECT_LT(lift, 50.0);
}

TEST(ReleaseLifecycleTest, QueriesAreDeterministicPostRelease) {
  // Post-processing determinism: the same synopsis must answer the same
  // query identically every time (no hidden randomness on the read path).
  Rng rng(7);
  Dataset data = MakeMsnbcLike(&rng, 20000);
  PipelineOptions options;
  options.total_epsilon = 1.0;
  const PipelineResult built =
      BuildPriViewPipeline(data, options, &rng).value();
  const AttrSet q = AttrSet::FromIndices({0, 3, 6, 8});
  const MarginalTable a = built.synopsis.Query(q);
  const MarginalTable b = built.synopsis.Query(q);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.At(i), b.At(i));
  }
}

}  // namespace
}  // namespace priview
