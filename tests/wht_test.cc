#include "fourier/wht.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "table/dataset.h"

namespace priview {
namespace {

TEST(WhtTest, InvolutionUpToScale) {
  Rng rng(1);
  std::vector<double> data(32);
  for (double& v : data) v = rng.Normal();
  std::vector<double> twice = data;
  Wht(&twice);
  Wht(&twice);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(twice[i], 32.0 * data[i], 1e-9);
  }
}

TEST(WhtTest, MatchesNaiveTransform) {
  Rng rng(2);
  const int n = 16;
  std::vector<double> data(n);
  for (double& v : data) v = rng.Normal();
  std::vector<double> fast = data;
  Wht(&fast);
  for (int s = 0; s < n; ++s) {
    double naive = 0.0;
    for (int x = 0; x < n; ++x) {
      naive += data[x] *
               ((PopCount(static_cast<uint64_t>(x & s)) % 2 == 0) ? 1.0 : -1.0);
    }
    EXPECT_NEAR(fast[s], naive, 1e-9);
  }
}

TEST(WhtTest, CoefficientZeroIsTotal) {
  MarginalTable t(AttrSet::FromIndices({0, 1, 3}));
  Rng rng(3);
  for (double& c : t.cells()) c = rng.UniformDouble() * 100;
  const std::vector<double> f = FourierCoefficients(t);
  EXPECT_NEAR(f[0], t.Total(), 1e-9);
}

TEST(WhtTest, TableCoefficientsRoundTrip) {
  MarginalTable t(AttrSet::FromIndices({2, 5, 6, 9}));
  Rng rng(4);
  for (double& c : t.cells()) c = rng.Normal() * 10;
  const MarginalTable back =
      TableFromCoefficients(t.attrs(), FourierCoefficients(t));
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(back.At(i), t.At(i), 1e-9);
  }
}

TEST(WhtTest, MarginalCoefficientsAreParityCounts) {
  // f_S of a marginal equals (#even-parity records - #odd-parity records)
  // restricted to S's attributes.
  Rng rng(5);
  Dataset data(6);
  for (int i = 0; i < 500; ++i) data.Add(rng.NextUint64() & 0x3F);
  const AttrSet attrs = AttrSet::FromIndices({1, 2, 4});
  const MarginalTable t = data.CountMarginal(attrs);
  const std::vector<double> f = FourierCoefficients(t);
  // Check S = {attr 1, attr 4} = local mask 0b101.
  const uint64_t global_mask = AttrSet::FromIndices({1, 4}).mask();
  double expected = 0.0;
  for (uint64_t r : data.records()) {
    expected += (PopCount(r & global_mask) % 2 == 0) ? 1.0 : -1.0;
  }
  EXPECT_NEAR(f[0b101], expected, 1e-9);
}

TEST(WhtTest, SingleElementTransform) {
  std::vector<double> one = {7.0};
  Wht(&one);
  EXPECT_DOUBLE_EQ(one[0], 7.0);
}

}  // namespace
}  // namespace priview
