// Property tests for the table layer: randomized sweeps over scopes and
// cell contents, checking the algebraic identities everything downstream
// (consistency, IPF, cube ops) silently relies on.
#include <cmath>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "table/dataset.h"
#include "table/marginal_table.h"

namespace priview {
namespace {

MarginalTable RandomTable(AttrSet attrs, Rng* rng, bool allow_negative) {
  MarginalTable t(attrs);
  for (double& c : t.cells()) {
    c = allow_negative ? rng->Normal(0.0, 10.0) : rng->UniformDouble() * 10;
  }
  return t;
}

AttrSet RandomScope(int d, int k, Rng* rng) {
  return AttrSet::FromIndices(rng->SampleWithoutReplacement(d, k));
}

class TableProperties : public ::testing::TestWithParam<int> {};

TEST_P(TableProperties, ProjectionIsLinear) {
  Rng rng(100 + GetParam());
  const AttrSet attrs = RandomScope(12, 5, &rng);
  const MarginalTable a = RandomTable(attrs, &rng, true);
  const MarginalTable b = RandomTable(attrs, &rng, true);
  const AttrSet sub = RandomScope(12, 5, &rng).Intersect(attrs);

  MarginalTable sum(attrs);
  for (size_t i = 0; i < sum.size(); ++i) sum.At(i) = a.At(i) + b.At(i);
  const MarginalTable proj_sum = sum.Project(sub);
  const MarginalTable pa = a.Project(sub);
  const MarginalTable pb = b.Project(sub);
  for (size_t i = 0; i < proj_sum.size(); ++i) {
    EXPECT_NEAR(proj_sum.At(i), pa.At(i) + pb.At(i), 1e-9);
  }
}

TEST_P(TableProperties, ProjectionChainsCommute) {
  Rng rng(200 + GetParam());
  const AttrSet attrs = RandomScope(14, 6, &rng);
  const MarginalTable t = RandomTable(attrs, &rng, true);
  // Two nested sub-scopes: attrs ⊇ mid ⊇ low.
  std::vector<int> all = attrs.ToIndices();
  AttrSet mid = attrs;
  AttrSet low = attrs;
  // Drop random attributes to form mid and low.
  for (int a : all) {
    if (rng.Bernoulli(0.3)) mid = mid.Minus(AttrSet::FromIndices({a}));
  }
  for (int a : mid.ToIndices()) {
    if (rng.Bernoulli(0.4)) low = low.Minus(AttrSet::FromIndices({a}));
  }
  low = low.Intersect(mid);
  const MarginalTable direct = t.Project(low);
  const MarginalTable chained = t.Project(mid).Project(low);
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.At(i), chained.At(i), 1e-9);
  }
}

TEST_P(TableProperties, ProjectionPreservesTotal) {
  Rng rng(300 + GetParam());
  const AttrSet attrs = RandomScope(16, 7, &rng);
  const MarginalTable t = RandomTable(attrs, &rng, true);
  const AttrSet sub = RandomScope(16, 7, &rng).Intersect(attrs);
  EXPECT_NEAR(t.Project(sub).Total(), t.Total(), 1e-8);
}

TEST_P(TableProperties, CellIndexMaskRoundTrip) {
  Rng rng(400 + GetParam());
  const AttrSet attrs = RandomScope(20, 6, &rng);
  const MarginalTable t(attrs);
  const AttrSet sub = RandomScope(20, 6, &rng).Intersect(attrs);
  const uint64_t within = t.CellIndexMaskFor(sub);
  EXPECT_EQ(PopCount(within), sub.size());
  // The mask must select exactly the sub-attributes in cell-index space:
  // deposit a compact index through `within`, then through attrs' mask, and
  // check the resulting global bits lie exactly on sub's attributes.
  for (uint64_t v = 0; v < (uint64_t{1} << sub.size()); ++v) {
    const uint64_t cell_bits = DepositBits(v, within);
    const uint64_t global_bits = DepositBits(cell_bits, attrs.mask());
    EXPECT_EQ(global_bits & ~sub.mask(), 0u);
    EXPECT_EQ(ExtractBits(global_bits, sub.mask()), v);
  }
}

TEST_P(TableProperties, DatasetMarginalsAgreeWithProjection) {
  Rng rng(500 + GetParam());
  const int d = 10;
  Dataset data(d);
  for (int i = 0; i < 500; ++i) {
    data.Add(rng.NextUint64() & ((1ULL << d) - 1));
  }
  const AttrSet wide = RandomScope(d, 6, &rng);
  AttrSet narrow = wide;
  for (int a : wide.ToIndices()) {
    if (rng.Bernoulli(0.5)) narrow = narrow.Minus(AttrSet::FromIndices({a}));
  }
  const MarginalTable direct = data.CountMarginal(narrow);
  const MarginalTable projected = data.CountMarginal(wide).Project(narrow);
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct.At(i), projected.At(i));
  }
}

TEST_P(TableProperties, L2DistanceIsAMetric) {
  Rng rng(600 + GetParam());
  const AttrSet attrs = RandomScope(10, 4, &rng);
  const MarginalTable a = RandomTable(attrs, &rng, true);
  const MarginalTable b = RandomTable(attrs, &rng, true);
  const MarginalTable c = RandomTable(attrs, &rng, true);
  EXPECT_NEAR(a.L2DistanceTo(b), b.L2DistanceTo(a), 1e-12);
  EXPECT_GE(a.L2DistanceTo(b) + b.L2DistanceTo(c),
            a.L2DistanceTo(c) - 1e-9);
  EXPECT_NEAR(a.L2DistanceTo(a), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TableProperties, ::testing::Range(0, 12));

}  // namespace
}  // namespace priview
