#include "design/view_selection.h"

#include <cmath>

#include <gtest/gtest.h>

namespace priview {
namespace {

TEST(ViewSelectionTest, EllObjectivesMatchPaperTable) {
  // §4.5 table: 2^{l/2}/(l(l-1)) values for l = 5..12.
  EXPECT_NEAR(EllObjectivePairs(5), 0.283, 0.001);
  EXPECT_NEAR(EllObjectivePairs(6), 0.267, 0.001);
  EXPECT_NEAR(EllObjectivePairs(7), 0.269, 0.001);
  EXPECT_NEAR(EllObjectivePairs(8), 0.286, 0.001);
  EXPECT_NEAR(EllObjectivePairs(9), 0.314, 0.001);
  EXPECT_NEAR(EllObjectivePairs(10), 0.356, 0.001);
  EXPECT_NEAR(EllObjectivePairs(11), 0.411, 0.001);
  EXPECT_NEAR(EllObjectivePairs(12), 0.485, 0.001);

  EXPECT_NEAR(EllObjectiveTriples(5), 0.094, 0.001);
  EXPECT_NEAR(EllObjectiveTriples(6), 0.067, 0.001);
  EXPECT_NEAR(EllObjectiveTriples(7), 0.054, 0.001);
  EXPECT_NEAR(EllObjectiveTriples(8), 0.048, 0.001);
  EXPECT_NEAR(EllObjectiveTriples(9), 0.045, 0.001);
  EXPECT_NEAR(EllObjectiveTriples(10), 0.044, 0.001);
  EXPECT_NEAR(EllObjectiveTriples(11), 0.046, 0.001);
  EXPECT_NEAR(EllObjectiveTriples(12), 0.048, 0.001);
}

TEST(ViewSelectionTest, NoiseErrorMatchesPaperKosarakRow) {
  // §4.5 example: d = 32, N ≈ 900,000, eps = 1, ell = 8:
  //   t=2 (w=20)  err ≈ 0.00047
  //   t=3 (w=106) err ≈ 0.0011
  //   t=4 (w=620) err ≈ 0.0026
  const double n = 900000.0;
  EXPECT_NEAR(NoiseErrorEq5(n, 32, 1.0, 8, 20), 0.00047, 0.00003);
  EXPECT_NEAR(NoiseErrorEq5(n, 32, 1.0, 8, 106), 0.0011, 0.0001);
  EXPECT_NEAR(NoiseErrorEq5(n, 32, 1.0, 8, 620), 0.0026, 0.0002);
}

TEST(ViewSelectionTest, NoiseErrorScalesInverselyWithEpsilon) {
  const double e1 = NoiseErrorEq5(1e6, 32, 1.0, 8, 20);
  const double e01 = NoiseErrorEq5(1e6, 32, 0.1, 8, 20);
  EXPECT_NEAR(e01 / e1, 10.0, 1e-9);
}

TEST(ViewSelectionTest, NoiseErrorGrowsWithW) {
  EXPECT_LT(NoiseErrorEq5(1e6, 32, 1.0, 8, 20),
            NoiseErrorEq5(1e6, 32, 1.0, 8, 100));
}

TEST(ViewSelectionTest, SelectsHigherTWhenBudgetAllows) {
  Rng rng(1);
  // Huge dataset: even t = 4 noise error is tiny -> picks max_t.
  const ViewSelection big = SelectViews(16, 1e9, 1.0, &rng);
  int chosen_t = 0;
  for (const ViewCandidate& c : big.candidates) {
    if (c.design.blocks == big.design.blocks) chosen_t = c.t;
  }
  EXPECT_EQ(chosen_t, 4);
}

TEST(ViewSelectionTest, FallsBackToPairsUnderTightBudget) {
  Rng rng(2);
  // Tiny dataset at eps = 0.1: everything is over the ceiling -> t = 2.
  const ViewSelection tight = SelectViews(32, 10000, 0.1, &rng);
  EXPECT_EQ(tight.design.t, 2);
}

TEST(ViewSelectionTest, CandidatesCoverRequestedRange) {
  Rng rng(3);
  const ViewSelection sel = SelectViews(20, 1e6, 1.0, &rng);
  ASSERT_EQ(sel.candidates.size(), 3u);  // t = 2, 3, 4
  EXPECT_EQ(sel.candidates[0].t, 2);
  EXPECT_EQ(sel.candidates[1].t, 3);
  EXPECT_EQ(sel.candidates[2].t, 4);
  for (const ViewCandidate& c : sel.candidates) {
    EXPECT_TRUE(VerifyCovering(c.design));
    EXPECT_GT(c.noise_error, 0.0);
  }
}

TEST(ViewSelectionTest, EllClampedToD) {
  Rng rng(4);
  const ViewSelection sel = SelectViews(6, 1e6, 1.0, &rng);
  for (const ViewCandidate& c : sel.candidates) {
    EXPECT_EQ(c.design.ell, 6);
  }
}

}  // namespace
}  // namespace priview
