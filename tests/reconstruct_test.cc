#include "core/reconstruct.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/consistency.h"
#include "data/synthetic.h"
#include "table/dataset.h"

namespace priview {
namespace {

std::vector<MarginalTable> ExactViews(const Dataset& data,
                                      const std::vector<AttrSet>& scopes) {
  std::vector<MarginalTable> views;
  for (AttrSet s : scopes) views.push_back(data.CountMarginal(s));
  return views;
}

TEST(ReconstructTest, CoveredScopeIsExactProjection) {
  Rng rng(1);
  Dataset data(8);
  for (int i = 0; i < 2000; ++i) data.Add(rng.NextUint64() & 0xFF);
  const auto views = ExactViews(data, {AttrSet::FromIndices({0, 1, 2, 3}),
                                       AttrSet::FromIndices({4, 5, 6, 7})});
  const AttrSet target = AttrSet::FromIndices({1, 3});
  const MarginalTable answer = ReconstructMarginal(
      views, target, 2000.0, ReconstructionMethod::kMaxEntropy);
  const MarginalTable truth = data.CountMarginal(target);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(answer.At(i), truth.At(i), 1e-9);
  }
}

TEST(ReconstructTest, NoIntersectionGivesUniform) {
  Rng rng(2);
  Dataset data(6);
  for (int i = 0; i < 100; ++i) data.Add(rng.NextUint64() & 0x3F);
  const auto views = ExactViews(data, {AttrSet::FromIndices({0, 1})});
  for (auto method :
       {ReconstructionMethod::kMaxEntropy, ReconstructionMethod::kLeastNorm,
        ReconstructionMethod::kLinearProgram}) {
    const MarginalTable answer = ReconstructMarginal(
        views, AttrSet::FromIndices({4, 5}), 100.0, method);
    for (size_t i = 0; i < answer.size(); ++i) {
      EXPECT_NEAR(answer.At(i), 25.0, 1e-6)
          << ReconstructionMethodName(method);
    }
  }
}

TEST(ReconstructTest, IndependentAttributesRecoveredFromDisjointViews) {
  // If the data is an independent product, max entropy over 1-way pieces
  // recovers the joint.
  Rng rng(3);
  Dataset data(4);
  for (int i = 0; i < 50000; ++i) {
    uint64_t r = 0;
    if (rng.Bernoulli(0.3)) r |= 1;
    if (rng.Bernoulli(0.7)) r |= 2;
    if (rng.Bernoulli(0.5)) r |= 4;
    if (rng.Bernoulli(0.2)) r |= 8;
    data.Add(r);
  }
  const auto views = ExactViews(data, {AttrSet::FromIndices({0, 1}),
                                       AttrSet::FromIndices({2, 3})});
  const AttrSet target = AttrSet::FromIndices({0, 2});
  const MarginalTable answer = ReconstructMarginal(
      views, target, static_cast<double>(data.size()),
      ReconstructionMethod::kMaxEntropy);
  const MarginalTable truth = data.CountMarginal(target);
  // Sampling noise only: within ~1.5% of N.
  EXPECT_LT(answer.L2DistanceTo(truth) / data.size(), 0.015);
}

TEST(ReconstructTest, ChainDependencyRecoveredThroughOverlap) {
  // Correlated chain: x1 copies x0 w.p. 0.9, x2 copies x1 w.p. 0.9. Views
  // {0,1} and {1,2} overlap on x1; CME should capture the (conditional
  // independence) joint of {0,2} well.
  Rng rng(4);
  Dataset data(3);
  for (int i = 0; i < 50000; ++i) {
    const bool x0 = rng.Bernoulli(0.5);
    const bool x1 = rng.Bernoulli(0.9) ? x0 : !x0;
    const bool x2 = rng.Bernoulli(0.9) ? x1 : !x1;
    data.Add((x0 ? 1u : 0u) | (x1 ? 2u : 0u) | (x2 ? 4u : 0u));
  }
  const auto views = ExactViews(data, {AttrSet::FromIndices({0, 1}),
                                       AttrSet::FromIndices({1, 2})});
  const AttrSet target = AttrSet::FromIndices({0, 1, 2});
  const MarginalTable answer = ReconstructMarginal(
      views, target, static_cast<double>(data.size()),
      ReconstructionMethod::kMaxEntropy);
  const MarginalTable truth = data.CountMarginal(target);
  // Max entropy = conditional independence, which holds by construction.
  EXPECT_LT(answer.L2DistanceTo(truth) / data.size(), 0.02);
}

TEST(ReconstructTest, AllMethodsSatisfyCoveredConstraintsOnExactViews) {
  Rng rng(5);
  Dataset data = MakeMsnbcLike(&rng, 20000);
  std::vector<MarginalTable> views =
      ExactViews(data, {AttrSet::FromIndices({0, 1, 2, 3, 4, 5}),
                        AttrSet::FromIndices({3, 4, 5, 6, 7, 8}),
                        AttrSet::FromIndices({0, 1, 2, 6, 7, 8})});
  const AttrSet target = AttrSet::FromIndices({0, 3, 6, 8});
  const double n = static_cast<double>(data.size());
  for (auto method :
       {ReconstructionMethod::kMaxEntropy, ReconstructionMethod::kLeastNorm,
        ReconstructionMethod::kLinearProgram}) {
    const MarginalTable answer =
        ReconstructMarginal(views, target, n, method);
    EXPECT_NEAR(answer.Total(), n, n * 0.01)
        << ReconstructionMethodName(method);
    EXPECT_GE(answer.MinCell(), -1e-6) << ReconstructionMethodName(method);
    // Every view constraint (projection onto view ∩ target) is satisfied
    // closely, since exact views are mutually consistent.
    for (const MarginalTable& view : views) {
      const AttrSet common = view.attrs().Intersect(target);
      if (common.empty()) continue;
      const MarginalTable want = view.Project(common);
      const MarginalTable got = answer.Project(common);
      EXPECT_LT(got.LinfDistanceTo(want) / n, 0.01)
          << ReconstructionMethodName(method);
    }
  }
}

TEST(ReconstructTest, MaxEntropyBeatsUniformOnCorrelatedData) {
  Rng rng(6);
  Dataset data = MakeKosarakLike(&rng, 20000);
  std::vector<AttrSet> scopes;
  // Simple pair-covering views over the first 12 attributes.
  for (int start = 0; start < 12; start += 4) {
    scopes.push_back(
        AttrSet::FromIndices({start, start + 1, start + 2, start + 3}));
  }
  scopes.push_back(AttrSet::FromIndices({0, 4, 8, 11}));
  scopes.push_back(AttrSet::FromIndices({1, 5, 9, 10}));
  scopes.push_back(AttrSet::FromIndices({2, 6, 3, 7}));
  auto views = ExactViews(data, scopes);
  MakeConsistent(&views);

  const AttrSet target = AttrSet::FromIndices({0, 1, 4, 5});
  const MarginalTable truth = data.CountMarginal(target);
  const double n = static_cast<double>(data.size());
  const MarginalTable cme = ReconstructMarginal(
      views, target, n, ReconstructionMethod::kMaxEntropy);
  MarginalTable uniform(target, n / 16.0);
  EXPECT_LT(cme.L2DistanceTo(truth), uniform.L2DistanceTo(truth));
}

}  // namespace
}  // namespace priview
