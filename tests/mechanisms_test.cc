#include "dp/mechanisms.h"

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace priview {
namespace {

TEST(LaplaceMechanismTest, NoiseHasRightScale) {
  Rng rng(1);
  const double sensitivity = 3.0;
  const double epsilon = 0.5;
  // Variance should be 2 (sens/eps)^2 = 72.
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double noise = NoisyCount(0.0, sensitivity, epsilon, &rng);
    sum += noise;
    sum_sq += noise * noise;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(sum_sq / n - mean * mean, 72.0, 2.5);
}

TEST(LaplaceMechanismTest, TablePerturbedEverywhere) {
  Rng rng(2);
  MarginalTable t(AttrSet::FromIndices({0, 1, 2}), 10.0);
  AddLaplaceNoise(&t, 1.0, 1.0, &rng);
  for (double c : t.cells()) EXPECT_NE(c, 10.0);
}

TEST(LaplaceMechanismTest, ContingencyPerturbed) {
  Rng rng(2);
  ContingencyTable t(4);
  AddLaplaceNoise(&t, 1.0, 1.0, &rng);
  int nonzero = 0;
  for (double c : t.cells()) {
    if (c != 0.0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 16);
}

TEST(ExponentialMechanismTest, PrefersHighScores) {
  Rng rng(3);
  const std::vector<double> scores = {0.0, 0.0, 10.0, 0.0};
  int hits = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    if (ExponentialMechanism(scores, /*epsilon=*/2.0, /*sensitivity=*/1.0,
                             &rng) == 2) {
      ++hits;
    }
  }
  // exp(10) dwarfs exp(0); selection should be nearly always index 2.
  EXPECT_GT(hits, trials * 95 / 100);
}

TEST(ExponentialMechanismTest, UniformWhenScoresEqual) {
  Rng rng(4);
  const std::vector<double> scores = {5.0, 5.0, 5.0, 5.0};
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    ++counts[ExponentialMechanism(scores, 1.0, 1.0, &rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.02);
  }
}

TEST(ExponentialMechanismTest, HandlesExtremeScores) {
  Rng rng(5);
  // Would overflow exp() without max-subtraction.
  const std::vector<double> scores = {1e6, 1e6 - 1.0};
  const int pick = ExponentialMechanism(scores, 1.0, 1.0, &rng);
  EXPECT_TRUE(pick == 0 || pick == 1);
}

TEST(BudgetAccountantTest, TracksSpending) {
  BudgetAccountant budget(1.0);
  EXPECT_TRUE(budget.Spend(0.4).ok());
  EXPECT_TRUE(budget.Spend(0.6).ok());
  EXPECT_NEAR(budget.remaining(), 0.0, 1e-12);
  EXPECT_EQ(budget.Spend(0.1).code(), StatusCode::kResourceExhausted);
}

TEST(BudgetAccountantTest, RejectsNonPositive) {
  BudgetAccountant budget(1.0);
  EXPECT_EQ(budget.Spend(0.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(budget.Spend(-0.5).code(), StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(budget.spent(), 0.0);
}

TEST(BudgetAccountantTest, ToleratesFloatSplit) {
  BudgetAccountant budget(1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(budget.Spend(0.1).ok()) << i;
  }
}

TEST(BudgetAccountantTest, ConcurrentSpendsNeverJointlyOverspend) {
  // 8 threads race 1000 spends of 0.001 each against a total of 4.0: only
  // 4000 can succeed. The CAS loop must make the accounting exact — the
  // successes sum to the total and the rest are typed refusals, with no
  // silent overspend in any interleaving.
  BudgetAccountant budget(4.0);
  constexpr int kThreads = 8;
  constexpr int kSpendsPerThread = 1000;
  std::atomic<int> granted{0};
  std::atomic<int> refused{0};
  std::vector<std::thread> spenders;
  for (int t = 0; t < kThreads; ++t) {
    spenders.emplace_back([&] {
      for (int i = 0; i < kSpendsPerThread; ++i) {
        const Status spent = budget.Spend(0.001);
        if (spent.ok()) {
          granted.fetch_add(1);
        } else {
          EXPECT_EQ(spent.code(), StatusCode::kResourceExhausted);
          refused.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& spender : spenders) spender.join();
  EXPECT_EQ(granted.load() + refused.load(), kThreads * kSpendsPerThread);
  // Every grant landed within the total (up to the documented float
  // slack), and all 4000 affordable grants went through.
  EXPECT_LE(budget.spent(), budget.total() * (1.0 + 1e-9));
  EXPECT_EQ(granted.load(), 4000);
  EXPECT_NEAR(budget.spent(), 4.0, 1e-9);
}

TEST(BudgetAccountantTest, CarveChildDebitsParentUpFront) {
  BudgetAccountant parent(2.0);
  StatusOr<BudgetAccountant> child = parent.CarveChild(0.5);
  ASSERT_TRUE(child.ok()) << child.status().ToString();
  // The parent paid the whole carve at carve time...
  EXPECT_NEAR(parent.spent(), 0.5, 1e-12);
  EXPECT_NEAR(parent.remaining(), 1.5, 1e-12);
  // ...and the child holds exactly that much, independent of the parent.
  EXPECT_DOUBLE_EQ(child.value().total(), 0.5);
  EXPECT_DOUBLE_EQ(child.value().spent(), 0.0);
  EXPECT_TRUE(child.value().Spend(0.3).ok());
  EXPECT_NEAR(parent.spent(), 0.5, 1e-12);  // child spending is prepaid
  EXPECT_EQ(child.value().Spend(0.3).code(), StatusCode::kResourceExhausted);

  // Under-spending a child is the child's loss, not a parent refund: the
  // schedule guarantee is sum(children) <= total, not exact exhaustion.
  StatusOr<BudgetAccountant> second = parent.CarveChild(1.5);
  ASSERT_TRUE(second.ok());
  EXPECT_NEAR(parent.remaining(), 0.0, 1e-12);

  // A carve the parent cannot afford is a typed refusal that spends
  // nothing — never a silently over-provisioned child.
  StatusOr<BudgetAccountant> third = parent.CarveChild(0.1);
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NEAR(parent.remaining(), 0.0, 1e-12);
  EXPECT_EQ(parent.CarveChild(-1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BudgetAccountantTest, ConcurrentCarvesRespectTheParentTotal) {
  // Racing carves of 0.25 from a total of 1.0: exactly 4 children can
  // exist, and their totals sum to the parent's budget.
  BudgetAccountant parent(1.0);
  constexpr int kThreads = 16;
  std::atomic<int> carved{0};
  std::vector<std::thread> carvers;
  for (int t = 0; t < kThreads; ++t) {
    carvers.emplace_back([&] {
      StatusOr<BudgetAccountant> child = parent.CarveChild(0.25);
      if (child.ok()) {
        carved.fetch_add(1);
        EXPECT_DOUBLE_EQ(child.value().total(), 0.25);
      } else {
        EXPECT_EQ(child.status().code(), StatusCode::kResourceExhausted);
      }
    });
  }
  for (std::thread& carver : carvers) carver.join();
  EXPECT_EQ(carved.load(), 4);
  EXPECT_NEAR(parent.remaining(), 0.0, 1e-9);
}

}  // namespace
}  // namespace priview
