#include "dp/mechanisms.h"

#include <cmath>

#include <gtest/gtest.h>

namespace priview {
namespace {

TEST(LaplaceMechanismTest, NoiseHasRightScale) {
  Rng rng(1);
  const double sensitivity = 3.0;
  const double epsilon = 0.5;
  // Variance should be 2 (sens/eps)^2 = 72.
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double noise = NoisyCount(0.0, sensitivity, epsilon, &rng);
    sum += noise;
    sum_sq += noise * noise;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(sum_sq / n - mean * mean, 72.0, 2.5);
}

TEST(LaplaceMechanismTest, TablePerturbedEverywhere) {
  Rng rng(2);
  MarginalTable t(AttrSet::FromIndices({0, 1, 2}), 10.0);
  AddLaplaceNoise(&t, 1.0, 1.0, &rng);
  for (double c : t.cells()) EXPECT_NE(c, 10.0);
}

TEST(LaplaceMechanismTest, ContingencyPerturbed) {
  Rng rng(2);
  ContingencyTable t(4);
  AddLaplaceNoise(&t, 1.0, 1.0, &rng);
  int nonzero = 0;
  for (double c : t.cells()) {
    if (c != 0.0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 16);
}

TEST(ExponentialMechanismTest, PrefersHighScores) {
  Rng rng(3);
  const std::vector<double> scores = {0.0, 0.0, 10.0, 0.0};
  int hits = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    if (ExponentialMechanism(scores, /*epsilon=*/2.0, /*sensitivity=*/1.0,
                             &rng) == 2) {
      ++hits;
    }
  }
  // exp(10) dwarfs exp(0); selection should be nearly always index 2.
  EXPECT_GT(hits, trials * 95 / 100);
}

TEST(ExponentialMechanismTest, UniformWhenScoresEqual) {
  Rng rng(4);
  const std::vector<double> scores = {5.0, 5.0, 5.0, 5.0};
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    ++counts[ExponentialMechanism(scores, 1.0, 1.0, &rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.02);
  }
}

TEST(ExponentialMechanismTest, HandlesExtremeScores) {
  Rng rng(5);
  // Would overflow exp() without max-subtraction.
  const std::vector<double> scores = {1e6, 1e6 - 1.0};
  const int pick = ExponentialMechanism(scores, 1.0, 1.0, &rng);
  EXPECT_TRUE(pick == 0 || pick == 1);
}

TEST(BudgetAccountantTest, TracksSpending) {
  BudgetAccountant budget(1.0);
  EXPECT_TRUE(budget.Spend(0.4).ok());
  EXPECT_TRUE(budget.Spend(0.6).ok());
  EXPECT_NEAR(budget.remaining(), 0.0, 1e-12);
  EXPECT_EQ(budget.Spend(0.1).code(), StatusCode::kResourceExhausted);
}

TEST(BudgetAccountantTest, RejectsNonPositive) {
  BudgetAccountant budget(1.0);
  EXPECT_EQ(budget.Spend(0.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(budget.Spend(-0.5).code(), StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(budget.spent(), 0.0);
}

TEST(BudgetAccountantTest, ToleratesFloatSplit) {
  BudgetAccountant budget(1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(budget.Spend(0.1).ok()) << i;
  }
}

}  // namespace
}  // namespace priview
