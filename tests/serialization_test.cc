#include "core/serialization.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "design/covering_design.h"

namespace priview {
namespace {

PriViewSynopsis MakeTestSynopsis() {
  Rng rng(1);
  Dataset data = MakeMsnbcLike(&rng, 20000);
  const CoveringDesign design = MakeCoveringDesign(9, 6, 2, &rng);
  PriViewOptions options;
  options.epsilon = 0.7;
  return PriViewSynopsis::Build(data, design.blocks, options, &rng);
}

TEST(SerializationTest, RoundTripIsExact) {
  const PriViewSynopsis original = MakeTestSynopsis();
  std::stringstream stream;
  ASSERT_TRUE(WriteSynopsis(original, &stream).ok());
  StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const PriViewSynopsis& copy = loaded.value();
  EXPECT_EQ(copy.d(), original.d());
  EXPECT_DOUBLE_EQ(copy.options().epsilon, 0.7);
  ASSERT_EQ(copy.views().size(), original.views().size());
  for (size_t v = 0; v < copy.views().size(); ++v) {
    EXPECT_EQ(copy.views()[v].attrs(), original.views()[v].attrs());
    for (size_t c = 0; c < copy.views()[v].size(); ++c) {
      // Hex-float serialization: bit-exact round trip.
      EXPECT_EQ(copy.views()[v].At(c), original.views()[v].At(c));
    }
  }
  EXPECT_DOUBLE_EQ(copy.total(), original.total());
}

TEST(SerializationTest, QueriesIdenticalAfterRoundTrip) {
  const PriViewSynopsis original = MakeTestSynopsis();
  std::stringstream stream;
  ASSERT_TRUE(WriteSynopsis(original, &stream).ok());
  const PriViewSynopsis copy = ReadSynopsis(&stream).value();
  const AttrSet scope = AttrSet::FromIndices({0, 3, 6, 8});
  const MarginalTable a = original.Query(scope);
  const MarginalTable b = copy.Query(scope);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.At(i), b.At(i));
  }
}

TEST(SerializationTest, FileRoundTrip) {
  const PriViewSynopsis original = MakeTestSynopsis();
  const std::string path = ::testing::TempDir() + "/synopsis.pv";
  ASSERT_TRUE(SaveSynopsis(original, path).ok());
  StatusOr<PriViewSynopsis> loaded = LoadSynopsis(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().views().size(), original.views().size());
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsWrongMagic) {
  std::stringstream stream("not-a-synopsis v1\n");
  EXPECT_FALSE(ReadSynopsis(&stream).ok());
}

TEST(SerializationTest, RejectsWrongVersion) {
  std::stringstream stream("priview-synopsis v99\nd 4\n");
  EXPECT_FALSE(ReadSynopsis(&stream).ok());
}

TEST(SerializationTest, RejectsBadDimension) {
  std::stringstream stream("priview-synopsis v1\nd 200\nepsilon 1\nviews 1\n");
  EXPECT_FALSE(ReadSynopsis(&stream).ok());
}

TEST(SerializationTest, RejectsOutOfRangeAttribute) {
  std::stringstream stream(
      "priview-synopsis v1\nd 4\nepsilon 1\nviews 1\n"
      "view 0 9\n0x0p+0 0x0p+0 0x0p+0 0x0p+0\n");
  const auto result = ReadSynopsis(&stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializationTest, RejectsCellCountMismatch) {
  std::stringstream stream(
      "priview-synopsis v1\nd 4\nepsilon 1\nviews 1\n"
      "view 0 1\n0x0p+0 0x0p+0 0x0p+0\n");  // 3 cells, needs 4
  EXPECT_FALSE(ReadSynopsis(&stream).ok());
}

TEST(SerializationTest, RejectsTruncatedFile) {
  std::stringstream stream("priview-synopsis v1\nd 4\nepsilon 1\nviews 2\n"
                           "view 0 1\n0x0p+0 0x0p+0 0x0p+0 0x0p+0\n");
  EXPECT_FALSE(ReadSynopsis(&stream).ok());
}

TEST(SerializationTest, RejectsGarbageCell) {
  std::stringstream stream(
      "priview-synopsis v1\nd 4\nepsilon 1\nviews 1\n"
      "view 0 1\n0x0p+0 frog 0x0p+0 0x0p+0\n");
  EXPECT_FALSE(ReadSynopsis(&stream).ok());
}

TEST(SerializationTest, MissingFileIsIOError) {
  const auto result = LoadSynopsis(::testing::TempDir() + "/nope.pv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace priview
