#include "core/serialization.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "design/covering_design.h"

namespace priview {
namespace {

PriViewSynopsis MakeTestSynopsis() {
  Rng rng(1);
  Dataset data = MakeMsnbcLike(&rng, 20000);
  const CoveringDesign design = MakeCoveringDesign(9, 6, 2, &rng);
  PriViewOptions options;
  options.epsilon = 0.7;
  return PriViewSynopsis::Build(data, design.blocks, options, &rng);
}

TEST(SerializationTest, RoundTripIsExact) {
  const PriViewSynopsis original = MakeTestSynopsis();
  std::stringstream stream;
  ASSERT_TRUE(WriteSynopsis(original, &stream).ok());
  StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const PriViewSynopsis& copy = loaded.value();
  EXPECT_EQ(copy.d(), original.d());
  EXPECT_DOUBLE_EQ(copy.options().epsilon, 0.7);
  ASSERT_EQ(copy.views().size(), original.views().size());
  for (size_t v = 0; v < copy.views().size(); ++v) {
    EXPECT_EQ(copy.views()[v].attrs(), original.views()[v].attrs());
    for (size_t c = 0; c < copy.views()[v].size(); ++c) {
      // Hex-float serialization: bit-exact round trip.
      EXPECT_EQ(copy.views()[v].At(c), original.views()[v].At(c));
    }
  }
  EXPECT_DOUBLE_EQ(copy.total(), original.total());
}

TEST(SerializationTest, QueriesIdenticalAfterRoundTrip) {
  const PriViewSynopsis original = MakeTestSynopsis();
  std::stringstream stream;
  ASSERT_TRUE(WriteSynopsis(original, &stream).ok());
  const PriViewSynopsis copy = ReadSynopsis(&stream).value();
  const AttrSet scope = AttrSet::FromIndices({0, 3, 6, 8});
  const MarginalTable a = original.Query(scope);
  const MarginalTable b = copy.Query(scope);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.At(i), b.At(i));
  }
}

TEST(SerializationTest, FileRoundTrip) {
  const PriViewSynopsis original = MakeTestSynopsis();
  const std::string path = ::testing::TempDir() + "/synopsis.pv";
  ASSERT_TRUE(SaveSynopsis(original, path).ok());
  StatusOr<PriViewSynopsis> loaded = LoadSynopsis(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().views().size(), original.views().size());
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsWrongMagic) {
  std::stringstream stream("not-a-synopsis v1\n");
  EXPECT_FALSE(ReadSynopsis(&stream).ok());
}

TEST(SerializationTest, RejectsWrongVersion) {
  std::stringstream stream("priview-synopsis v99\nd 4\n");
  EXPECT_FALSE(ReadSynopsis(&stream).ok());
}

TEST(SerializationTest, RejectsBadDimension) {
  std::stringstream stream("priview-synopsis v1\nd 200\nepsilon 1\nviews 1\n");
  EXPECT_FALSE(ReadSynopsis(&stream).ok());
}

TEST(SerializationTest, RejectsOutOfRangeAttribute) {
  std::stringstream stream(
      "priview-synopsis v1\nd 4\nepsilon 1\nviews 1\n"
      "view 0 9\n0x0p+0 0x0p+0 0x0p+0 0x0p+0\n");
  const auto result = ReadSynopsis(&stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializationTest, RejectsCellCountMismatch) {
  std::stringstream stream(
      "priview-synopsis v1\nd 4\nepsilon 1\nviews 1\n"
      "view 0 1\n0x0p+0 0x0p+0 0x0p+0\n");  // 3 cells, needs 4
  EXPECT_FALSE(ReadSynopsis(&stream).ok());
}

TEST(SerializationTest, RejectsTruncatedFile) {
  std::stringstream stream("priview-synopsis v1\nd 4\nepsilon 1\nviews 2\n"
                           "view 0 1\n0x0p+0 0x0p+0 0x0p+0 0x0p+0\n");
  EXPECT_FALSE(ReadSynopsis(&stream).ok());
}

TEST(SerializationTest, RejectsGarbageCell) {
  std::stringstream stream(
      "priview-synopsis v1\nd 4\nepsilon 1\nviews 1\n"
      "view 0 1\n0x0p+0 frog 0x0p+0 0x0p+0\n");
  EXPECT_FALSE(ReadSynopsis(&stream).ok());
}

TEST(SerializationTest, MissingFileIsIOError) {
  const auto result = LoadSynopsis(::testing::TempDir() + "/nope.pv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(SerializationTest, WritesV2WithChecksums) {
  const PriViewSynopsis original = MakeTestSynopsis();
  std::stringstream stream;
  ASSERT_TRUE(WriteSynopsis(original, &stream).ok());
  const std::string bytes = stream.str();
  EXPECT_EQ(bytes.rfind("priview-synopsis v2\n", 0), 0u);
  // One vsum per view plus the trailing filesum.
  size_t vsums = 0;
  for (size_t at = bytes.find("\nvsum "); at != std::string::npos;
       at = bytes.find("\nvsum ", at + 1)) {
    ++vsums;
  }
  EXPECT_EQ(vsums, original.views().size());
  EXPECT_NE(bytes.find("\nfilesum "), std::string::npos);
}

TEST(SerializationTest, CleanLoadReportsFullyIntact) {
  const PriViewSynopsis original = MakeTestSynopsis();
  std::stringstream stream;
  ASSERT_TRUE(WriteSynopsis(original, &stream).ok());
  LoadReport report;
  ASSERT_TRUE(ReadSynopsis(&stream, ReadOptions{}, &report).ok());
  EXPECT_EQ(report.format_version, 2);
  EXPECT_FALSE(report.legacy_format);
  EXPECT_TRUE(report.file_checksum_ok);
  EXPECT_EQ(report.views_loaded, report.views_declared);
  EXPECT_TRUE(report.fully_intact()) << report.ToString();
}

TEST(SerializationTest, LegacyV1FileLoadsWithVersionGatedWarning) {
  // A checksum-free v1 file (the pre-checksum format) must still load;
  // the LoadReport flags that its integrity could not be verified.
  std::stringstream stream(
      "priview-synopsis v1\nd 4\nepsilon 0.5\nviews 2\n"
      "view 0 1\n0x1p+3 0x1p+2 0x1p+1 0x1p+0\n"
      "view 2 3\n0x1p+2 0x1p+2 0x1p+2 0x1p+1\n");
  LoadReport report;
  StatusOr<PriViewSynopsis> loaded =
      ReadSynopsis(&stream, ReadOptions{}, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(report.format_version, 1);
  EXPECT_TRUE(report.legacy_format);
  EXPECT_FALSE(report.fully_intact());
  ASSERT_EQ(report.warnings.size(), 1u);
  EXPECT_NE(report.warnings[0].find("legacy"), std::string::npos);
  EXPECT_EQ(loaded.value().d(), 4);
  EXPECT_EQ(loaded.value().views().size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.value().views()[0].At(0), 8.0);
  EXPECT_DOUBLE_EQ(loaded.value().options().epsilon, 0.5);
}

TEST(SerializationTest, ChecksumMismatchIsDataLossStrict) {
  const PriViewSynopsis original = MakeTestSynopsis();
  std::stringstream stream;
  ASSERT_TRUE(WriteSynopsis(original, &stream).ok());
  std::string bytes = stream.str();
  // Corrupt one cell byte inside the first view's cells line.
  const size_t cells_pos = bytes.find('\n', bytes.find("\nview ") + 1) + 1;
  ASSERT_LT(cells_pos, bytes.size());
  bytes[cells_pos] ^= 0x01;
  std::stringstream corrupted(bytes);
  StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(SerializationTest, RecoveryDropsDamagedViewAndServesTheRest) {
  const PriViewSynopsis original = MakeTestSynopsis();
  std::stringstream stream;
  ASSERT_TRUE(WriteSynopsis(original, &stream).ok());
  std::string bytes = stream.str();
  const size_t cells_pos = bytes.find('\n', bytes.find("\nview ") + 1) + 1;
  bytes[cells_pos] ^= 0x01;
  std::stringstream corrupted(bytes);
  ReadOptions options;
  options.recover = true;
  LoadReport report;
  StatusOr<PriViewSynopsis> loaded =
      ReadSynopsis(&corrupted, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().views().size(), original.views().size() - 1);
  EXPECT_EQ(report.views_loaded, report.views_declared - 1);
  EXPECT_EQ(report.dropped.size(), 1u);
  EXPECT_FALSE(report.fully_intact());
  // The degraded synopsis still answers queries.
  const MarginalTable answer =
      loaded.value().Query(AttrSet::FromIndices({0, 3}));
  for (size_t i = 0; i < answer.size(); ++i) {
    EXPECT_TRUE(std::isfinite(answer.At(i)));
  }
}

TEST(SerializationTest, RecoveryStillFailsWhenNothingSurvives) {
  std::stringstream stream(
      "priview-synopsis v2\nd 4\nepsilon 1\nviews 1\n"
      "view 0 1\n0x0p+0 0x0p+0 0x0p+0 0x0p+0\n"
      "vsum 0000000000000000\n"  // wrong digest
      "filesum 0000000000000000\n");
  ReadOptions options;
  options.recover = true;
  LoadReport report;
  StatusOr<PriViewSynopsis> loaded = ReadSynopsis(&stream, options, &report);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(SerializationTest, RecoveryIsOffByDefault) {
  // Strict is the default so a corrupted artifact cannot be consumed
  // silently: recovery must be an explicit opt-in.
  const ReadOptions defaults;
  EXPECT_FALSE(defaults.recover);
}

}  // namespace
}  // namespace priview
