#include "common/linalg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace priview {
namespace {

TEST(MatrixTest, IdentityAndMultiply) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Matrix i3 = Matrix::Identity(3);
  const Matrix product = a.Multiply(i3);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(product(r, c), a(r, c));
    }
  }
}

TEST(MatrixTest, MultiplyKnown) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(1);
  Matrix a(4, 7);
  for (auto& v : a.data()) v = rng.UniformDouble();
  const Matrix att = a.Transposed().Transposed();
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 7; ++c) EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
  }
}

TEST(MatrixTest, MatVecAndTransposedMatVec) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const std::vector<double> x = {1.0, 0.0, -1.0};
  const std::vector<double> y = a.MatVec(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  const std::vector<double> z = a.TransposedMatVec({1.0, 1.0});
  ASSERT_EQ(z.size(), 3u);
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(MatrixTest, GramRowsMatchesMultiply) {
  Rng rng(2);
  Matrix a(5, 8);
  for (auto& v : a.data()) v = rng.Normal();
  const Matrix gram = a.GramRows();
  const Matrix expected = a.Multiply(a.Transposed());
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_NEAR(gram(r, c), expected(r, c), 1e-12);
    }
  }
}

TEST(MatrixTest, Norms) {
  Matrix a(2, 2);
  a(0, 0) = 3;
  a(0, 1) = -4;
  a(1, 0) = 0;
  a(1, 1) = 12;
  EXPECT_DOUBLE_EQ(a.FrobeniusSquared(), 9 + 16 + 144);
  EXPECT_DOUBLE_EQ(a.MaxColumnL1(), 16.0);
}

TEST(CholeskyTest, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] => x = [1.5, 2].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(a));
  const std::vector<double> x = chol.Solve({10.0, 9.0});
  EXPECT_NEAR(x[0], 1.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(CholeskyTest, RandomSpdRoundTrip) {
  Rng rng(3);
  const int n = 20;
  Matrix b(n, n);
  for (auto& v : b.data()) v = rng.Normal();
  Matrix a = b.Multiply(b.Transposed());
  for (int i = 0; i < n; ++i) a(i, i) += 1.0;  // ensure SPD
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(a));
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.Normal();
  const std::vector<double> rhs = a.MatVec(x_true);
  const std::vector<double> x = chol.Solve(rhs);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  Cholesky chol;
  EXPECT_FALSE(chol.Factor(a));
}

TEST(CholeskyTest, RidgeRescuesSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 1;  // rank 1
  Cholesky chol;
  EXPECT_TRUE(chol.Factor(a, 1e-6));
}

TEST(VectorOpsTest, NormAndDot) {
  EXPECT_DOUBLE_EQ(NormSquared({3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
}

}  // namespace
}  // namespace priview
