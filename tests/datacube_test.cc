#include "baselines/datacube.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/combinatorics.h"
#include "common/rng.h"
#include "core/error_model.h"
#include "data/synthetic.h"

namespace priview {
namespace {

TEST(DataCubeTest, ExpectedErrorMatchesClosedForm) {
  // One full cuboid over d = 4, queries = all pairs: 6 * 2^4 * 2/eps^2.
  const std::vector<AttrSet> selection = {AttrSet::Full(4)};
  std::vector<AttrSet> queries;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      queries.push_back(AttrSet::FromIndices({a, b}));
    }
  }
  EXPECT_DOUBLE_EQ(DataCubeExpectedError(selection, queries, 1.0),
                   6.0 * 16.0 * 2.0);
}

TEST(DataCubeTest, UncoveredQueryIsInfinite) {
  const std::vector<AttrSet> selection = {AttrSet::FromIndices({0, 1})};
  const std::vector<AttrSet> queries = {AttrSet::FromIndices({2, 3})};
  EXPECT_TRUE(std::isinf(DataCubeExpectedError(selection, queries, 1.0)));
}

TEST(DataCubeTest, ChoosesFlatForUniformWorkloadAtSmallD) {
  // §3.4: for a low-dimensional binary dataset and the all-k-way workload,
  // the greedy principles pick the full contingency table (= Flat).
  std::vector<AttrSet> queries;
  ForEachSubsetMask(9, 2, [&](uint64_t m) { queries.push_back(AttrSet(m)); });
  const std::vector<AttrSet> selection = SelectCuboids(9, queries, 1.0);
  ASSERT_EQ(selection.size(), 1u);
  EXPECT_EQ(selection[0], AttrSet::Full(9));
}

TEST(DataCubeTest, ChoosesSmallCuboidForLocalizedWorkload) {
  // All queries inside {0,1,2}: publishing just that cuboid beats the full
  // table (2^3 vs 2^9 per query at the same budget).
  std::vector<AttrSet> queries = {AttrSet::FromIndices({0, 1}),
                                  AttrSet::FromIndices({0, 2}),
                                  AttrSet::FromIndices({1, 2})};
  const std::vector<AttrSet> selection = SelectCuboids(9, queries, 1.0);
  ASSERT_EQ(selection.size(), 1u);
  EXPECT_EQ(selection[0], AttrSet::FromIndices({0, 1, 2}));
}

TEST(DataCubeTest, SplitWorkloadEscapesTheFullTable) {
  // Two distant query clusters. The one-cuboid-at-a-time greedy lands on
  // the clusters' union cuboid {0,1,2,7,8,9} (2^6 per query, single-cuboid
  // budget) — an 8x improvement over the full table; the globally optimal
  // two-cuboid split needs a simultaneous add the greedy doesn't attempt
  // (the same greediness limitation [8] itself has).
  std::vector<AttrSet> queries = {AttrSet::FromIndices({0, 1, 2}),
                                  AttrSet::FromIndices({7, 8, 9})};
  const std::vector<AttrSet> selection = SelectCuboids(10, queries, 1.0);
  for (AttrSet q : queries) {
    bool covered = false;
    for (AttrSet s : selection) {
      if (q.IsSubsetOf(s)) covered = true;
    }
    EXPECT_TRUE(covered);
  }
  EXPECT_LT(DataCubeExpectedError(selection, queries, 1.0),
            DataCubeExpectedError({AttrSet::Full(10)}, queries, 1.0));
  ASSERT_EQ(selection.size(), 1u);
  EXPECT_EQ(selection[0], AttrSet::FromIndices({0, 1, 2, 7, 8, 9}));
}

TEST(DataCubeTest, MechanismMatchesFlatErrorProfileAtD9) {
  Rng rng(1);
  Dataset data = MakeMsnbcLike(&rng, 300000);
  DataCubeMechanism datacube;
  datacube.Fit(data, 1.0, 2, &rng);
  // Selection collapses to the full table...
  ASSERT_EQ(datacube.selection().size(), 1u);
  EXPECT_EQ(datacube.selection()[0], AttrSet::Full(9));
  // ...so error matches the Flat ESE scale.
  const AttrSet q = AttrSet::FromIndices({2, 6});
  const MarginalTable truth = data.CountMarginal(q);
  double total_sq = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    DataCubeMechanism mech;
    mech.Fit(data, 1.0, 2, &rng);
    const double dist = mech.Query(q).L2DistanceTo(truth);
    total_sq += dist * dist;
  }
  const double measured = total_sq / trials;
  const double predicted = FlatEse(9, 1.0);
  EXPECT_GT(measured, 0.5 * predicted);
  EXPECT_LT(measured, 2.0 * predicted);
}

TEST(DataCubeTest, MultiCuboidAnswersAreConsistent) {
  Rng rng(2);
  Dataset data(10);
  for (int i = 0; i < 5000; ++i) data.Add(rng.NextUint64() & 0x3FF);
  DataCubeMechanism datacube;
  // Localized workload via k = 3 on d = 10 keeps the full table optimal;
  // instead drive a custom fit through SelectCuboids + manual check that
  // Query picks the smallest covering cuboid.
  datacube.Fit(data, 1.0, 3, &rng);
  const MarginalTable answer = datacube.Query(AttrSet::FromIndices({0, 5}));
  EXPECT_EQ(answer.attrs(), AttrSet::FromIndices({0, 5}));
  EXPECT_EQ(answer.size(), 4u);
}

}  // namespace
}  // namespace priview
