#include "table/attr_set.h"

#include <gtest/gtest.h>

namespace priview {
namespace {

TEST(AttrSetTest, FromIndicesAndBack) {
  const AttrSet s = AttrSet::FromIndices({5, 1, 8});
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.ToIndices(), (std::vector<int>{1, 5, 8}));
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Contains(8));
  EXPECT_FALSE(s.Contains(0));
}

TEST(AttrSetTest, FullSet) {
  EXPECT_EQ(AttrSet::Full(0).size(), 0);
  EXPECT_EQ(AttrSet::Full(9).size(), 9);
  EXPECT_EQ(AttrSet::Full(64).size(), 64);
}

TEST(AttrSetTest, SetAlgebra) {
  const AttrSet a = AttrSet::FromIndices({1, 2, 3});
  const AttrSet b = AttrSet::FromIndices({3, 4});
  EXPECT_EQ(a.Intersect(b), AttrSet::FromIndices({3}));
  EXPECT_EQ(a.Union(b), AttrSet::FromIndices({1, 2, 3, 4}));
  EXPECT_EQ(a.Minus(b), AttrSet::FromIndices({1, 2}));
  EXPECT_TRUE(AttrSet::FromIndices({2, 3}).IsSubsetOf(a));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(AttrSet().IsSubsetOf(a));
  EXPECT_TRUE(AttrSet().empty());
}

TEST(AttrSetTest, ToString) {
  EXPECT_EQ(AttrSet::FromIndices({2, 0, 7}).ToString(), "{0,2,7}");
  EXPECT_EQ(AttrSet().ToString(), "{}");
}

TEST(AttrSetTest, Ordering) {
  const AttrSet a(0b01), b(0b10);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a == AttrSet::FromIndices({0}));
  EXPECT_TRUE(a != b);
}

}  // namespace
}  // namespace priview
