#include "common/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace priview {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(13), 13u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformOpenNeverZero) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.UniformOpen(), 0.0);
    EXPECT_LT(rng.UniformOpen(), 1.0);
  }
}

TEST(RngTest, LaplaceMeanAndVariance) {
  Rng rng(42);
  const double scale = 3.0;
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Laplace(scale);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  // Var of Laplace(b) is 2 b^2 = 18.
  EXPECT_NEAR(variance, 18.0, 0.6);
}

TEST(RngTest, LaplaceSymmetric) {
  Rng rng(42);
  int positive = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Laplace(1.0) > 0) ++positive;
  }
  EXPECT_NEAR(static_cast<double>(positive) / n, 0.5, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  const double rate = 2.0;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(rate);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(sum_sq / n - mean * mean, 9.0, 0.2);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(3);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<int> sample = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (size_t i = 1; i < sample.size(); ++i) {
      EXPECT_LT(sample[i - 1], sample[i]);  // sorted
    }
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(17);
  const std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementUnbiased) {
  // Each element of [0, 10) should appear in a 3-sample with prob 0.3.
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    for (int v : rng.SampleWithoutReplacement(10, 3)) ++counts[v];
  }
  for (int v = 0; v < 10; ++v) {
    EXPECT_NEAR(static_cast<double>(counts[v]) / trials, 0.3, 0.02);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.Fork();
  // The child stream should not equal the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace priview
