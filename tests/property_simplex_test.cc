// Randomized verification of the simplex solver against brute force:
// for tiny LPs the optimum lies at a vertex — an intersection of
// constraint/axis hyperplanes — so enumerating all candidate vertices and
// taking the best feasible one gives an independent ground truth.
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/linalg.h"
#include "common/rng.h"
#include "opt/simplex.h"

namespace priview {
namespace {

// Solves a tiny LP (n variables, inequality rows + x >= 0) by enumerating
// all vertices: choose n hyperplanes among {rows} ∪ {axes}, solve, check
// feasibility. Returns nullopt if no feasible vertex exists (infeasible or
// unbounded-without-vertex never arises in the generated instances since
// objective coefficients are positive -> bounded below on the feasible
// set, and the region is in the positive orthant).
std::optional<double> BruteForceLp(const LpProblem& lp) {
  const int n = lp.num_vars;
  const int m = static_cast<int>(lp.rows.size());
  const int planes = m + n;  // rows then axes
  std::vector<int> choice(n);
  double best = std::numeric_limits<double>::infinity();
  bool found = false;

  // Enumerate n-subsets of planes (n <= 3, planes <= 9: trivial).
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  while (true) {
    // Build the n x n system.
    Matrix a(n, n);
    std::vector<double> b(n);
    for (int r = 0; r < n; ++r) {
      const int plane = idx[r];
      if (plane < m) {
        for (int c = 0; c < n; ++c) a(r, c) = lp.rows[plane].coeffs[c];
        b[r] = lp.rows[plane].rhs;
      } else {
        a(r, plane - m) = 1.0;
        b[r] = 0.0;
      }
    }
    // Solve via normal equations (works when a is invertible; the ridge 0
    // Cholesky of aᵀa fails for singular a, which we just skip).
    const Matrix at = a.Transposed();
    Cholesky chol;
    if (chol.Factor(at.GramRows(), 1e-12)) {
      const std::vector<double> rhs = at.MatVec(b);
      const std::vector<double> x = chol.Solve(rhs);
      // Check it actually solves ax=b (Gram trick can hide rank issues).
      const std::vector<double> ax = a.MatVec(x);
      bool exact = true;
      for (int r = 0; r < n; ++r) {
        if (std::fabs(ax[r] - b[r]) > 1e-6) exact = false;
      }
      if (exact) {
        bool feasible = true;
        for (int j = 0; j < n && feasible; ++j) {
          if (x[j] < -1e-7) feasible = false;
        }
        for (int r = 0; r < m && feasible; ++r) {
          double dot = 0.0;
          for (int j = 0; j < n; ++j) dot += lp.rows[r].coeffs[j] * x[j];
          if (dot > lp.rows[r].rhs + 1e-7) feasible = false;
        }
        if (feasible) {
          double value = 0.0;
          for (int j = 0; j < n; ++j) value += lp.objective[j] * x[j];
          best = std::min(best, value);
          found = true;
        }
      }
    }
    // Next combination.
    int i = n - 1;
    while (i >= 0 && idx[i] == planes - n + i) --i;
    if (i < 0) break;
    ++idx[i];
    for (int j = i + 1; j < n; ++j) idx[j] = idx[j - 1] + 1;
  }
  if (!found) return std::nullopt;
  return best;
}

class SimplexVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(SimplexVsBruteForce, AgreesOnRandomLps) {
  Rng rng(7000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(2));  // 2..3
    const int m = 2 + static_cast<int>(rng.UniformInt(5));  // 2..6
    LpProblem lp;
    lp.num_vars = n;
    lp.objective.resize(n);
    // Positive objective -> bounded below over the positive orthant.
    for (double& c : lp.objective) c = 0.1 + rng.UniformDouble();
    for (int r = 0; r < m; ++r) {
      std::vector<double> row(n);
      for (double& v : row) v = rng.Normal();
      // Mix of <= and >= rows with moderate rhs.
      if (rng.Bernoulli(0.5)) {
        lp.AddLe(std::move(row), rng.Normal() * 2.0 + 1.0);
      } else {
        lp.AddGe(std::move(row), rng.Normal() * 2.0 - 1.0);
      }
    }

    // Brute force operates on <= rows only; convert.
    LpProblem le_only = lp;
    le_only.rows.clear();
    for (const auto& row : lp.rows) {
      if (row.relation == LpProblem::Relation::kLe) {
        le_only.rows.push_back(row);
      } else {
        std::vector<double> flipped = row.coeffs;
        for (double& v : flipped) v = -v;
        le_only.AddLe(std::move(flipped), -row.rhs);
      }
    }

    const std::optional<double> brute = BruteForceLp(le_only);
    const LpResult solved = SolveLp(lp);
    if (brute.has_value()) {
      ASSERT_EQ(solved.status, LpStatus::kOptimal)
          << "trial " << trial;
      EXPECT_NEAR(solved.objective_value, *brute, 1e-5)
          << "trial " << trial;
    } else {
      EXPECT_EQ(solved.status, LpStatus::kInfeasible) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexVsBruteForce, ::testing::Range(0, 8));

}  // namespace
}  // namespace priview
