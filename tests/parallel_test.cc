// Unit tests for the parallel execution substrate: coverage and chunking of
// ParallelFor, the determinism contract of ParallelReduce across thread
// counts, thread-count override plumbing, nesting, exception propagation,
// and the task-throw failpoint's inline-retry recovery.
#include "common/parallel.h"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"

namespace priview {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  ~ParallelTest() override {
    failpoint::DisarmAll();
    parallel::SetThreadCount(0);
  }
};

TEST_F(ParallelTest, ThreadCountOverride) {
  parallel::SetThreadCount(3);
  EXPECT_EQ(parallel::ThreadCount(), 3);
  EXPECT_EQ(parallel::MaxWorkerSlots(), 3);
  parallel::SetThreadCount(0);
  EXPECT_GE(parallel::ThreadCount(), 1);
}

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    parallel::SetThreadCount(threads);
    for (size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
      for (size_t grain : {1ul, 3ul, 64ul, 5000ul}) {
        std::vector<std::atomic<int>> hits(n);
        parallel::ParallelFor(0, n, grain, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
        });
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "n=" << n << " grain=" << grain << " threads=" << threads;
        }
      }
    }
  }
}

TEST_F(ParallelTest, ChunkIndicesAreStableAcrossThreadCounts) {
  // The chunk an index lands in must depend only on (range, grain).
  const size_t n = 257, grain = 16;
  std::vector<size_t> chunk_of_first(n);
  parallel::SetThreadCount(1);
  parallel::ParallelForChunks(0, n, grain,
                              [&](size_t chunk, size_t b, size_t e) {
                                for (size_t i = b; i < e; ++i)
                                  chunk_of_first[i] = chunk;
                              });
  parallel::SetThreadCount(4);
  parallel::ParallelForChunks(0, n, grain,
                              [&](size_t chunk, size_t b, size_t e) {
                                for (size_t i = b; i < e; ++i)
                                  EXPECT_EQ(chunk_of_first[i], chunk);
                              });
}

TEST_F(ParallelTest, ReduceIsBitIdenticalAcrossThreadCounts) {
  // Non-associative floating-point sum: chunk partials folded in order
  // must give the same bits at any thread count.
  const size_t n = 10007;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = std::sin(static_cast<double>(i)) * 1e6;
  }
  const auto sum_range = [&](size_t b, size_t e) {
    double s = 0.0;
    for (size_t i = b; i < e; ++i) s += values[i];
    return s;
  };
  const auto combine = [](double x, double y) { return x + y; };
  parallel::SetThreadCount(1);
  const double serial =
      parallel::ParallelReduce<double>(0, n, 128, 0.0, sum_range, combine);
  for (int threads : {2, 8}) {
    parallel::SetThreadCount(threads);
    const double parallel_sum =
        parallel::ParallelReduce<double>(0, n, 128, 0.0, sum_range, combine);
    EXPECT_EQ(serial, parallel_sum) << "threads=" << threads;
  }
}

TEST_F(ParallelTest, WorkerSlotsAreUniqueAmongConcurrentChunks) {
  parallel::SetThreadCount(4);
  const int slots = parallel::MaxWorkerSlots();
  std::vector<std::atomic<int>> in_use(static_cast<size_t>(slots));
  std::atomic<bool> collision{false};
  parallel::ParallelForWorkers(0, 64, 1, [&](int slot, size_t, size_t) {
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, slots);
    if (in_use[slot].fetch_add(1) != 0) collision = true;
    std::this_thread::yield();
    in_use[slot].fetch_sub(1);
  });
  EXPECT_FALSE(collision.load());
}

TEST_F(ParallelTest, NestedRegionsRunInline) {
  parallel::SetThreadCount(4);
  std::atomic<size_t> total{0};
  parallel::ParallelFor(0, 8, 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      // A nested region must complete without deadlock.
      parallel::ParallelFor(0, 10, 1,
                            [&](size_t nb, size_t ne) { total += ne - nb; });
    }
  });
  EXPECT_EQ(total.load(), 80u);
}

TEST_F(ParallelTest, ConcurrentDispatchersDoNotDeadlock) {
  parallel::SetThreadCount(4);
  std::vector<std::thread> callers;
  std::atomic<size_t> total{0};
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        parallel::ParallelFor(0, 100, 7,
                              [&](size_t b, size_t e) { total += e - b; });
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(total.load(), 4u * 20u * 100u);
}

TEST_F(ParallelTest, GenuineExceptionPropagatesToCaller) {
  parallel::SetThreadCount(2);
  EXPECT_THROW(
      parallel::ParallelFor(0, 16, 1,
                            [&](size_t b, size_t) {
                              if (b == 5) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
}

#if PRIVIEW_FAILPOINTS_ENABLED
TEST_F(ParallelTest, InjectedTaskThrowIsRecoveredByInlineRetry) {
  for (int threads : {1, 4}) {
    parallel::SetThreadCount(threads);
    const uint64_t retries_before = parallel::InlineRetryCount();
    failpoint::ScopedFailpoint scoped("parallel/task-throw", "always");
    ASSERT_TRUE(scoped.status().ok());
    std::vector<std::atomic<int>> hits(100);
    parallel::ParallelFor(0, 100, 8, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    // Every index still processed exactly once, via the retry path.
    for (size_t i = 0; i < 100; ++i) ASSERT_EQ(hits[i].load(), 1);
    EXPECT_GT(parallel::InlineRetryCount(), retries_before)
        << "threads=" << threads;
  }
}

TEST_F(ParallelTest, IntermittentTaskThrowKeepsReduceDeterministic) {
  const size_t n = 4096;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = 1.0 / (1.0 + static_cast<double>(i));
  const auto sum_range = [&](size_t b, size_t e) {
    double s = 0.0;
    for (size_t i = b; i < e; ++i) s += values[i];
    return s;
  };
  const auto combine = [](double x, double y) { return x + y; };
  parallel::SetThreadCount(1);
  const double clean =
      parallel::ParallelReduce<double>(0, n, 64, 0.0, sum_range, combine);
  parallel::SetThreadCount(4);
  failpoint::ScopedFailpoint scoped("parallel/task-throw", "p=0.5,seed=11");
  ASSERT_TRUE(scoped.status().ok());
  const double faulted =
      parallel::ParallelReduce<double>(0, n, 64, 0.0, sum_range, combine);
  EXPECT_EQ(clean, faulted);
}
#endif  // PRIVIEW_FAILPOINTS_ENABLED

}  // namespace
}  // namespace priview
