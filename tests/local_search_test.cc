#include "design/local_search.h"

#include <gtest/gtest.h>

namespace priview {
namespace {

TEST(LocalSearchTest, NeverWorseAndAlwaysVerified) {
  Rng rng(1);
  const CoveringDesign greedy = GreedyCoveringDesign(16, 6, 2, &rng);
  LocalSearchOptions options;
  options.moves_per_attempt = 20000;
  const CoveringDesign improved =
      ImproveCoveringDesign(greedy, &rng, options);
  EXPECT_LE(improved.w(), greedy.w());
  EXPECT_TRUE(VerifyCovering(improved));
  EXPECT_EQ(improved.d, greedy.d);
  EXPECT_EQ(improved.ell, greedy.ell);
  EXPECT_EQ(improved.t, greedy.t);
}

TEST(LocalSearchTest, RemovesPaddedRedundantBlocks) {
  // A cover with duplicated blocks must lose at least the duplicates.
  Rng rng(2);
  CoveringDesign padded = GreedyCoveringDesign(12, 6, 2, &rng);
  const int original_w = padded.w();
  padded.blocks.push_back(padded.blocks[0]);
  padded.blocks.push_back(padded.blocks[1]);
  padded.blocks.push_back(padded.blocks[0]);
  LocalSearchOptions options;
  options.moves_per_attempt = 5000;
  const CoveringDesign improved =
      ImproveCoveringDesign(padded, &rng, options);
  EXPECT_LE(improved.w(), original_w);
  EXPECT_TRUE(VerifyCovering(improved));
}

TEST(LocalSearchTest, ReducesLooseCoverOnSmallInstance) {
  // d = 9, ell = 6, t = 2: optimum is 3 (the catalog design). Greedy from
  // a bad seed often lands at 4-5; local search should recover ground.
  Rng rng(12);
  CoveringDesign loose{9, 6, 2, {}};
  // Hand-build a deliberately wasteful 6-block cover: catalog's 3 blocks
  // plus 3 noise blocks.
  loose.blocks = {AttrSet::FromIndices({0, 1, 2, 3, 4, 5}),
                  AttrSet::FromIndices({3, 4, 5, 6, 7, 8}),
                  AttrSet::FromIndices({0, 1, 2, 6, 7, 8}),
                  AttrSet::FromIndices({0, 2, 4, 6, 8, 1}),
                  AttrSet::FromIndices({1, 3, 5, 7, 0, 2}),
                  AttrSet::FromIndices({2, 4, 6, 8, 0, 3})};
  ASSERT_TRUE(VerifyCovering(loose));
  LocalSearchOptions options;
  options.moves_per_attempt = 30000;
  options.max_failed_attempts = 2;
  const CoveringDesign improved = ImproveCoveringDesign(loose, &rng, options);
  EXPECT_LE(improved.w(), 4);
  EXPECT_TRUE(VerifyCovering(improved));
}

TEST(LocalSearchTest, SingleBlockIsFixedPoint) {
  Rng rng(3);
  CoveringDesign trivial{6, 6, 2, {AttrSet::Full(6)}};
  const CoveringDesign improved = ImproveCoveringDesign(trivial, &rng);
  EXPECT_EQ(improved.w(), 1);
}

}  // namespace
}  // namespace priview
