// Work-stealing scheduler internals: FunctionRef dispatch, the cache-aware
// grain heuristic, steal/overflow accounting, QueueDepth correctness under
// concurrent dispatchers, and the TaskGraph dependency mode (ordering,
// overlap determinism, exception cancellation, failpoint recovery).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/function_ref.h"
#include "common/parallel.h"

namespace priview {
namespace {

class ParallelStealTest : public ::testing::Test {
 protected:
  ~ParallelStealTest() override {
    failpoint::DisarmAll();
    parallel::SetThreadCount(0);
  }
};

int FreeFunctionDouble(int x) { return 2 * x; }

TEST_F(ParallelStealTest, FunctionRefCallsThroughWithoutOwnership) {
  int counter = 0;
  const auto add = [&counter](int x) { return counter += x; };
  FunctionRef<int(int)> ref(add);
  EXPECT_EQ(ref(3), 3);
  EXPECT_EQ(ref(4), 7);
  EXPECT_EQ(counter, 7);

  FunctionRef<int(int)> fn(FreeFunctionDouble);
  EXPECT_EQ(fn(21), 42);

  // Trivially copyable two-word value: copies alias the same callable.
  FunctionRef<int(int)> copy = ref;
  EXPECT_EQ(copy(1), 8);
  EXPECT_EQ(counter, 8);
}

TEST_F(ParallelStealTest, CacheAwareGrainInvariants) {
  // Never zero, even for degenerate inputs.
  EXPECT_GE(parallel::CacheAwareGrain(0, 8, 0), 1u);
  EXPECT_GE(parallel::CacheAwareGrain(1, 0, 0), 1u);

  const size_t grain = parallel::CacheAwareGrain(1 << 22, 8, 16 << 10);
  // Floor: at least ~32KB of streamed data per chunk.
  EXPECT_GE(grain * 8, size_t{32} << 10);
  // Ceiling: one chunk's stream never exceeds the 1MB block cap.
  EXPECT_LE(grain * 8, size_t{1} << 20);

  // Small inputs split for balance but respect the overhead floor.
  const size_t small = parallel::CacheAwareGrain(10000, 8, 0);
  EXPECT_GE(small * 8, size_t{32} << 10);

  // Thread-count independence: the grain is part of the determinism
  // contract, so overriding the pool size must not change it.
  parallel::SetThreadCount(1);
  const size_t at1 = parallel::CacheAwareGrain(1 << 20, 8, 4096);
  parallel::SetThreadCount(16);
  EXPECT_EQ(parallel::CacheAwareGrain(1 << 20, 8, 4096), at1);
}

TEST_F(ParallelStealTest, StealsHappenWhenWorkIsImbalanced) {
  parallel::SetThreadCount(2);
  const uint64_t steals_before = parallel::StealCount();
  // Two threads, one worker lane: every chunk is dealt to lane 1, so any
  // chunk the dispatching caller executes is by definition a steal. Chunks
  // long enough that the caller reaches the deque before it drains.
  std::atomic<size_t> done{0};
  parallel::ParallelFor(0, 32, 1, [&](size_t, size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 32u);
  EXPECT_GT(parallel::StealCount(), steals_before);
}

TEST_F(ParallelStealTest, OversizedDispatchSpillsToOverflowAndCompletes) {
  parallel::SetThreadCount(2);
  const uint64_t overflows_before = parallel::OverflowCount();
  // One worker lane, 4000 single-index chunks: the 2048-slot ring cannot
  // hold them, so the tail must spill — and still execute exactly once.
  const size_t n = 4000;
  std::vector<std::atomic<int>> hits(n);
  parallel::ParallelFor(0, n, 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  EXPECT_GT(parallel::OverflowCount(), overflows_before);
}

TEST_F(ParallelStealTest, QueueDepthIsZeroAfterConcurrentDispatchers) {
  // The old counter assumed one region at a time; concurrent dispatchers
  // (serve handlers + the stream publisher) made it drift. Hammer it from
  // four threads and require an exact return to zero.
  parallel::SetThreadCount(4);
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([] {
      for (int round = 0; round < 50; ++round) {
        parallel::ParallelFor(0, 64, 3, [&](size_t, size_t) {});
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(parallel::QueueDepth(), 0u);
  for (int p = 0; p < parallel::kNumPhases; ++p) {
    EXPECT_EQ(parallel::PhaseOccupancy(static_cast<parallel::Phase>(p)), 0)
        << parallel::PhaseName(static_cast<parallel::Phase>(p));
  }
}

TEST_F(ParallelStealTest, PhaseNamesAreStable) {
  EXPECT_STREQ(parallel::PhaseName(parallel::Phase::kGeneric), "generic");
  EXPECT_STREQ(parallel::PhaseName(parallel::Phase::kCount), "count");
  EXPECT_STREQ(parallel::PhaseName(parallel::Phase::kMerge), "merge");
  EXPECT_STREQ(parallel::PhaseName(parallel::Phase::kNoise), "noise");
  EXPECT_STREQ(parallel::PhaseName(parallel::Phase::kRipple), "ripple");
  EXPECT_STREQ(parallel::PhaseName(parallel::Phase::kConsistency),
               "consistency");
  EXPECT_STREQ(parallel::PhaseName(parallel::Phase::kSolve), "solve");
}

TEST_F(ParallelStealTest, TaskGraphRespectsDependencies) {
  for (int threads : {1, 4}) {
    parallel::SetThreadCount(threads);
    // Diamond per lane: a -> {b, c} -> d, 16 lanes. Each node stamps a
    // sequence number; prerequisites must stamp first.
    const int lanes = 16;
    std::atomic<uint64_t> clock{0};
    std::vector<uint64_t> stamp(static_cast<size_t>(lanes) * 4, 0);
    parallel::TaskGraph graph;
    for (int lane = 0; lane < lanes; ++lane) {
      const size_t base = static_cast<size_t>(lane) * 4;
      const auto stamper = [&stamp, &clock](size_t at) {
        stamp[at] = clock.fetch_add(1) + 1;
      };
      const auto a = graph.AddTask(parallel::Phase::kCount,
                                   [=](int) { stamper(base + 0); });
      const auto b = graph.AddTask(parallel::Phase::kMerge,
                                   [=](int) { stamper(base + 1); });
      const auto c = graph.AddTask(parallel::Phase::kMerge,
                                   [=](int) { stamper(base + 2); });
      const auto d = graph.AddTask(parallel::Phase::kNoise,
                                   [=](int) { stamper(base + 3); });
      graph.DependsOn(b, a);
      graph.DependsOn(c, a);
      graph.DependsOn(d, b);
      graph.DependsOn(d, c);
    }
    EXPECT_EQ(graph.size(), static_cast<size_t>(lanes) * 4);
    graph.Run();
    for (int lane = 0; lane < lanes; ++lane) {
      const size_t base = static_cast<size_t>(lane) * 4;
      ASSERT_GT(stamp[base + 0], 0u);
      EXPECT_LT(stamp[base + 0], stamp[base + 1]);
      EXPECT_LT(stamp[base + 0], stamp[base + 2]);
      EXPECT_GT(stamp[base + 3], stamp[base + 1]);
      EXPECT_GT(stamp[base + 3], stamp[base + 2]);
    }
  }
}

TEST_F(ParallelStealTest, TaskGraphAccumulationIsThreadCountInvariant) {
  // A miniature count -> merge -> finalize pipeline over exact integers:
  // the merged totals must be identical at every thread count.
  std::vector<double> reference;
  for (int threads : {1, 2, 4, 8, 16}) {
    parallel::SetThreadCount(threads);
    const int slots = parallel::MaxWorkerSlots();
    const size_t groups = 4, chunks = 32;
    std::vector<std::vector<double>> acc(
        static_cast<size_t>(slots), std::vector<double>(groups, 0.0));
    std::vector<double> merged(groups, 0.0);
    parallel::TaskGraph graph;
    std::vector<parallel::TaskGraph::NodeId> count_ids(groups * chunks);
    for (size_t r = 0; r < chunks; ++r) {
      for (size_t g = 0; g < groups; ++g) {
        count_ids[r * groups + g] =
            graph.AddTask(parallel::Phase::kCount, [&acc, g, r](int slot) {
              acc[static_cast<size_t>(slot)][g] +=
                  static_cast<double>(r * 31 + g * 7 + 1);
            });
      }
    }
    for (size_t g = 0; g < groups; ++g) {
      const auto merge = graph.AddTask(
          parallel::Phase::kMerge, [&acc, &merged, g, slots](int) {
            for (int s = 0; s < slots; ++s) merged[g] += acc[s][g];
          });
      for (size_t r = 0; r < chunks; ++r) {
        graph.DependsOn(merge, count_ids[r * groups + g]);
      }
    }
    graph.Run();
    if (reference.empty()) {
      reference = merged;
    } else {
      EXPECT_EQ(merged, reference) << "threads=" << threads;
    }
  }
}

TEST_F(ParallelStealTest, TaskGraphPropagatesGenuineExceptions) {
  for (int threads : {1, 4}) {
    parallel::SetThreadCount(threads);
    parallel::TaskGraph graph;
    std::atomic<bool> downstream_ran{false};
    const auto boom = graph.AddTask(parallel::Phase::kGeneric, [](int) {
      throw std::runtime_error("graph boom");
    });
    const auto after = graph.AddTask(
        parallel::Phase::kGeneric,
        [&downstream_ran](int) { downstream_ran = true; });
    graph.DependsOn(after, boom);
    EXPECT_THROW(graph.Run(), std::runtime_error);
    // A node downstream of the failure must have been cancelled.
    EXPECT_FALSE(downstream_ran.load()) << "threads=" << threads;
  }
}

#if PRIVIEW_FAILPOINTS_ENABLED
TEST_F(ParallelStealTest, TaskGraphRecoversInjectedFaults) {
  for (int threads : {1, 4}) {
    parallel::SetThreadCount(threads);
    const uint64_t retries_before = parallel::InlineRetryCount();
    failpoint::ScopedFailpoint scoped("parallel/task-throw", "always");
    ASSERT_TRUE(scoped.status().ok());
    const size_t n = 64;
    std::vector<std::atomic<int>> hits(n);
    parallel::TaskGraph graph;
    parallel::TaskGraph::NodeId prev = 0;
    for (size_t i = 0; i < n; ++i) {
      const auto id = graph.AddTask(parallel::Phase::kGeneric,
                                    [&hits, i](int) { hits[i].fetch_add(1); });
      // Chain half the nodes so recovery is exercised on gating nodes too
      // (a deferred retry would deadlock their dependents).
      if (i % 2 == 1) graph.DependsOn(id, prev);
      prev = id;
    }
    graph.Run();
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads;
    }
    EXPECT_GT(parallel::InlineRetryCount(), retries_before);
  }
}
#endif  // PRIVIEW_FAILPOINTS_ENABLED

}  // namespace
}  // namespace priview
