// RetryPolicy unit suite: the classifier's retry/never-retry split, the
// attempt cap, the deterministic jittered backoff schedule, and the
// overall wall-clock budget. The schedule tests pin determinism — two
// controllers forked from same-seed policies must agree backoff for
// backoff, because reproducible retries are what make the resilient
// client testable at all.
#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace priview {
namespace {

using std::chrono::milliseconds;

TEST(RetryClassifierTest, TransportDamageIsRetryable) {
  EXPECT_TRUE(IsRetryableStatus(Status::Unavailable("refused")));
  EXPECT_TRUE(IsRetryableStatus(Status::IOError("torn write")));
  EXPECT_TRUE(IsRetryableStatus(Status::DataLoss("bad checksum")));
}

TEST(RetryClassifierTest, DeterministicFailuresAreNot) {
  EXPECT_FALSE(IsRetryableStatus(Status::InvalidArgument("bad scope")));
  EXPECT_FALSE(IsRetryableStatus(Status::NotFound("no such synopsis")));
  EXPECT_FALSE(IsRetryableStatus(Status::OutOfRange("assignment")));
  EXPECT_FALSE(IsRetryableStatus(Status::FailedPrecondition("not connected")));
  EXPECT_FALSE(IsRetryableStatus(Status::Internal("bug")));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
}

TEST(RetryClassifierTest, ResourceExhaustedIsNeverRetryable) {
  // Admission control shedding load: a retry amplifies exactly the
  // overload being shed. Not retryable in either phase.
  const Status shed = Status::ResourceExhausted("queue full");
  EXPECT_FALSE(IsRetryableStatus(shed, /*connect_phase=*/false));
  EXPECT_FALSE(IsRetryableStatus(shed, /*connect_phase=*/true));
}

TEST(RetryClassifierTest, DeadlineExceededOnlyRetryableWhileConnecting) {
  const Status late = Status::DeadlineExceeded("connect timed out");
  EXPECT_FALSE(IsRetryableStatus(late, /*connect_phase=*/false));
  EXPECT_TRUE(IsRetryableStatus(late, /*connect_phase=*/true));
}

TEST(RetryControllerTest, AttemptCapIsHonored) {
  RetryOptions options;
  options.max_attempts = 3;
  options.jitter = 0.0;
  RetryPolicy policy(options);
  RetryController call = policy.NewCall();

  const Status failure = Status::Unavailable("down");
  call.BeginAttempt();
  EXPECT_TRUE(call.ShouldRetry(failure));
  call.BeginAttempt();
  EXPECT_TRUE(call.ShouldRetry(failure));
  call.BeginAttempt();
  // Three attempts started = the cap; no fourth is granted even for a
  // retryable failure.
  EXPECT_FALSE(call.ShouldRetry(failure));
  EXPECT_EQ(call.attempts_started(), 3);
}

TEST(RetryControllerTest, SingleAttemptPolicyNeverRetries) {
  RetryOptions options;
  options.max_attempts = 1;
  RetryPolicy policy(options);
  EXPECT_FALSE(policy.enabled());
  RetryController call = policy.NewCall();
  call.BeginAttempt();
  EXPECT_FALSE(call.ShouldRetry(Status::Unavailable("down")));
}

TEST(RetryControllerTest, BackoffGrowsGeometricallyAndCaps) {
  RetryOptions options;
  options.max_attempts = 8;
  options.initial_backoff = milliseconds{10};
  options.max_backoff = milliseconds{50};
  options.multiplier = 2.0;
  options.jitter = 0.0;  // exact schedule
  RetryPolicy policy(options);
  RetryController call = policy.NewCall();
  EXPECT_EQ(call.NextBackoff(), milliseconds{10});
  EXPECT_EQ(call.NextBackoff(), milliseconds{20});
  EXPECT_EQ(call.NextBackoff(), milliseconds{40});
  EXPECT_EQ(call.NextBackoff(), milliseconds{50});  // capped
  EXPECT_EQ(call.NextBackoff(), milliseconds{50});
}

TEST(RetryControllerTest, JitterStaysWithinTheConfiguredBand) {
  RetryOptions options;
  options.initial_backoff = milliseconds{100};
  options.max_backoff = milliseconds{100};
  options.jitter = 0.2;
  RetryPolicy policy(options);
  RetryController call = policy.NewCall();
  for (int i = 0; i < 32; ++i) {
    const milliseconds b = call.NextBackoff();
    EXPECT_GE(b, milliseconds{80});
    EXPECT_LE(b, milliseconds{120});
  }
}

TEST(RetryControllerTest, SameSeedSameSchedule) {
  RetryOptions options;
  options.seed = 424242;
  options.jitter = 0.3;
  options.max_backoff = milliseconds{400};

  const auto schedule = [&options] {
    RetryPolicy policy(options);
    RetryController call = policy.NewCall();
    std::vector<milliseconds> backoffs;
    for (int i = 0; i < 6; ++i) backoffs.push_back(call.NextBackoff());
    return backoffs;
  };
  EXPECT_EQ(schedule(), schedule());
}

TEST(RetryControllerTest, DistinctCallsGetDistinctJitterStreams) {
  RetryOptions options;
  options.seed = 7;
  options.jitter = 0.3;
  options.max_backoff = milliseconds{4000};
  options.max_attempts = 16;
  RetryPolicy policy(options);
  RetryController a = policy.NewCall();
  RetryController b = policy.NewCall();
  // Forked streams: the two calls should not march in lockstep. With 30%
  // jitter over a growing base, six equal draws in a row from independent
  // streams is vanishingly unlikely.
  bool diverged = false;
  for (int i = 0; i < 6; ++i) {
    if (a.NextBackoff() != b.NextBackoff()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RetryControllerTest, OverallBudgetStopsRetries) {
  RetryOptions options;
  options.max_attempts = 100;
  options.initial_backoff = milliseconds{50};
  options.max_backoff = milliseconds{50};
  options.jitter = 0.0;
  options.overall_budget = milliseconds{1};  // the next backoff never fits
  RetryPolicy policy(options);
  RetryController call = policy.NewCall();
  call.BeginAttempt();
  EXPECT_FALSE(call.ShouldRetry(Status::Unavailable("down")))
      << "a 50ms backoff must not be granted inside a 1ms budget";
}

TEST(RetryControllerTest, ZeroBudgetMeansAttemptCapOnly) {
  RetryOptions options;
  options.max_attempts = 2;
  options.overall_budget = milliseconds{0};
  RetryPolicy policy(options);
  RetryController call = policy.NewCall();
  call.BeginAttempt();
  EXPECT_TRUE(call.ShouldRetry(Status::Unavailable("down")));
}

TEST(RetryControllerTest, DecorrelatedJitterStaysWithinBounds) {
  // Decorrelated jitter contract (per backoff i, with prev_0 = initial):
  //   b_i = min(cap, uniform(initial, max(initial, 3 * b_{i-1}))).
  // Every draw must be >= initial and <= cap, and the upper bound of each
  // draw is pinned by the previous draw, not by an attempt-indexed base.
  RetryOptions options;
  options.jitter_mode = JitterMode::kDecorrelated;
  options.initial_backoff = milliseconds{10};
  options.max_backoff = milliseconds{500};
  options.max_attempts = 64;
  RetryPolicy policy(options);
  RetryController call = policy.NewCall();
  milliseconds prev = options.initial_backoff;
  for (int i = 0; i < 48; ++i) {
    const milliseconds b = call.NextBackoff();
    EXPECT_GE(b, options.initial_backoff);
    EXPECT_LE(b, options.max_backoff);
    const milliseconds high = std::max(options.initial_backoff, 3 * prev);
    EXPECT_LE(b, std::min(high, options.max_backoff))
        << "draw " << i << " exceeded 3x the previous backoff";
    prev = b;
  }
}

TEST(RetryControllerTest, DecorrelatedJitterIsDeterministicPerSeed) {
  RetryOptions options;
  options.jitter_mode = JitterMode::kDecorrelated;
  options.seed = 99;
  options.initial_backoff = milliseconds{10};
  options.max_backoff = milliseconds{2000};
  options.max_attempts = 16;

  const auto schedule = [&options] {
    RetryPolicy policy(options);
    RetryController call = policy.NewCall();
    std::vector<milliseconds> backoffs;
    for (int i = 0; i < 8; ++i) backoffs.push_back(call.NextBackoff());
    return backoffs;
  };
  EXPECT_EQ(schedule(), schedule());

  RetryOptions other = options;
  other.seed = 100;
  RetryPolicy policy(other);
  RetryController call = policy.NewCall();
  std::vector<milliseconds> different;
  for (int i = 0; i < 8; ++i) different.push_back(call.NextBackoff());
  EXPECT_NE(schedule(), different) << "distinct seeds produced one schedule";
}

TEST(RetryControllerTest, DecorrelatedJitterSpreadsIndependentCalls) {
  // The fleet-level property decorrelated jitter buys: two clients cut
  // off at the same instant must not march through the same backoff
  // schedule. Forked per-call streams + draw-dependent ranges make equal
  // schedules vanishingly unlikely.
  RetryOptions options;
  options.jitter_mode = JitterMode::kDecorrelated;
  options.initial_backoff = milliseconds{10};
  options.max_backoff = milliseconds{4000};
  options.max_attempts = 16;
  RetryPolicy policy(options);
  RetryController a = policy.NewCall();
  RetryController b = policy.NewCall();
  bool diverged = false;
  for (int i = 0; i < 8; ++i) {
    if (a.NextBackoff() != b.NextBackoff()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace priview
