#include "data/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace priview {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(IoTest, RoundTrip) {
  Rng rng(1);
  Dataset data(12);
  for (int i = 0; i < 500; ++i) data.Add(rng.NextUint64() & 0xFFF);
  const std::string path = TempPath("roundtrip.dat");
  ASSERT_TRUE(WriteTransactions(data, path).ok());
  const StatusOr<Dataset> back = ReadTransactions(path, 12);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().records(), data.records());
  std::remove(path.c_str());
}

TEST(IoTest, EmptyLinesAreEmptyRecords) {
  const std::string path = TempPath("empty_lines.dat");
  {
    std::ofstream out(path);
    out << "0 2\n\n1\n";
  }
  const StatusOr<Dataset> data = ReadTransactions(path, 4);
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data.value().size(), 3u);
  EXPECT_EQ(data.value().records()[0], 0b0101u);
  EXPECT_EQ(data.value().records()[1], 0u);
  EXPECT_EQ(data.value().records()[2], 0b0010u);
  std::remove(path.c_str());
}

TEST(IoTest, RejectsOutOfRangeAttribute) {
  const std::string path = TempPath("bad_attr.dat");
  {
    std::ofstream out(path);
    out << "0 9\n";
  }
  const StatusOr<Dataset> data = ReadTransactions(path, 8);
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIOError) {
  const StatusOr<Dataset> data =
      ReadTransactions(TempPath("does_not_exist.dat"), 8);
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kIOError);
}

TEST(IoTest, RejectsBadDimension) {
  EXPECT_FALSE(ReadTransactions(TempPath("x.dat"), 0).ok());
  EXPECT_FALSE(ReadTransactions(TempPath("x.dat"), 65).ok());
}

}  // namespace
}  // namespace priview
