// SynopsisStore unit suite: durable install/retire round trips across
// reopen, manifest replay (torn tails, corrupt records, damaged header),
// and the recovery scan's quarantine decisions. Crash-at-failpoint
// matrices live in store_crash_test.cc; this file covers the sunny path
// plus hand-corrupted journals and directories.
#include "store/synopsis_store.h"

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "serve/synopsis_registry.h"
#include "table/attr_set.h"

namespace priview::store {
namespace {

PriViewSynopsis MakeSynopsis(uint64_t seed = 42) {
  Rng rng(seed);
  Dataset data = MakeMsnbcLike(&rng, 1500);
  PriViewOptions options;
  options.add_noise = false;
  return PriViewSynopsis::Build(
      data, {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4})},
      options, &rng);
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/store_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    options_.dir = dir_;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string ManifestPath() const { return dir_ + "/MANIFEST"; }
  std::string ReadManifest() const {
    std::ifstream in(ManifestPath(), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
  void WriteFile(const std::string& path, const std::string& bytes) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  std::string dir_;
  StoreOptions options_;
};

TEST_F(StoreTest, MethodsRequireOpen) {
  SynopsisStore store(options_);
  EXPECT_EQ(store.Install("a", MakeSynopsis()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.Retire("a").code(), StatusCode::kFailedPrecondition);
  serve::SynopsisRegistry registry;
  EXPECT_EQ(store.Recover(&registry).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(StoreTest, RejectsHostileNames) {
  SynopsisStore store(options_);
  ASSERT_TRUE(store.Open().ok());
  const PriViewSynopsis synopsis = MakeSynopsis();
  for (const std::string& name :
       {std::string(""), std::string(".."), std::string("."),
        std::string("../escape"), std::string("a/b"), std::string("a b")}) {
    EXPECT_EQ(store.Install(name, synopsis).code(),
              StatusCode::kInvalidArgument)
        << "name accepted: '" << name << "'";
  }
}

TEST_F(StoreTest, FreshStoreRecoversEmpty) {
  SynopsisStore store(options_);
  ASSERT_TRUE(store.Open().ok());
  serve::SynopsisRegistry registry;
  StatusOr<RecoveryReport> report = store.Recover(&registry);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().records_replayed, 0u);
  EXPECT_TRUE(report.value().quarantined.empty());
  EXPECT_EQ(registry.size(), 0u);
}

TEST_F(StoreTest, InstallSurvivesReopen) {
  {
    SynopsisStore store(options_);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Install("release", MakeSynopsis()).ok());
    EXPECT_EQ(store.Current().count("release"), 1u);
    EXPECT_EQ(store.next_seq(), 2u);
  }
  SynopsisStore reopened(options_);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.Current().count("release"), 1u);
  EXPECT_EQ(reopened.next_seq(), 2u);

  serve::SynopsisRegistry registry;
  StatusOr<RecoveryReport> report = reopened.Recover(&registry);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().records_replayed, 1u);
  EXPECT_EQ(report.value().last_durable_seq, 1u);
  EXPECT_EQ(report.value().loads.count("release"), 1u);
  EXPECT_TRUE(report.value().quarantined.empty());
  EXPECT_EQ(registry.size(), 1u);
  // And what came back answers queries like the original.
  EXPECT_FALSE(report.value().ToString().empty());
}

TEST_F(StoreTest, ReinstallSupersedesAndReclaimsTheOldFile) {
  SynopsisStore store(options_);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Install("release", MakeSynopsis(1)).ok());
  const std::string first_file = store.Current().at("release");
  ASSERT_TRUE(store.Install("release", MakeSynopsis(2)).ok());
  const std::string second_file = store.Current().at("release");
  EXPECT_NE(first_file, second_file);
  // The superseded file is reclaimed immediately; only the current release
  // remains on disk.
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/" + first_file));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/" + second_file));

  SynopsisStore reopened(options_);
  ASSERT_TRUE(reopened.Open().ok());
  serve::SynopsisRegistry registry;
  StatusOr<RecoveryReport> report = reopened.Recover(&registry);
  ASSERT_TRUE(report.ok());
  // Two installs plus the gc record reclaiming the superseded file.
  EXPECT_EQ(report.value().records_replayed, 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST_F(StoreTest, RetentionDepthGarbageCollectsBeyondTheWindow) {
  // retention_depth = 2: the current release plus one predecessor stay on
  // disk; the third install must journal a `gc` record for the oldest file
  // and unlink it, so the directory and the manifest always agree.
  options_.retention_depth = 2;
  SynopsisStore store(options_);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Install("release", MakeSynopsis(1)).ok());
  const auto first = store.History("release");
  ASSERT_EQ(first.size(), 1u);
  const std::string first_file = first[0].second;

  ASSERT_TRUE(store.Install("release", MakeSynopsis(2)).ok());
  // Both releases retained: within the window, nothing reclaimed yet.
  EXPECT_EQ(store.History("release").size(), 2u);
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/" + first_file));

  ASSERT_TRUE(store.Install("release", MakeSynopsis(3)).ok());
  const auto history = store.History("release");
  ASSERT_EQ(history.size(), 2u);
  // Oldest-first, strictly increasing seqs, back entry is current.
  EXPECT_LT(history[0].first, history[1].first);
  EXPECT_EQ(history[1].second, store.Current().at("release"));
  // The evicted release is gone from disk; the retained two remain.
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/" + first_file));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/" + history[0].second));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/" + history[1].second));

  // Replay agrees: 3 installs + 1 gc, and a registry retaining history
  // rebuilds exactly the two surviving epochs at their install seqs.
  SynopsisStore reopened(options_);
  ASSERT_TRUE(reopened.Open().ok());
  serve::SynopsisRegistry registry;
  registry.set_history_depth(4);
  StatusOr<RecoveryReport> report = reopened.Recover(&registry);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().records_replayed, 4u);
  EXPECT_TRUE(report.value().quarantined.empty());
  const auto series = registry.AcquireSeries("release", 4);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series.value().size(), 2u);  // newest first
  EXPECT_EQ(series.value()[0]->epoch(), history[1].first);
  EXPECT_EQ(series.value()[1]->epoch(), history[0].first);
}

TEST_F(StoreTest, RetireJournalsAndUnlinks) {
  SynopsisStore store(options_);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Install("release", MakeSynopsis()).ok());
  const std::string file = store.Current().at("release");
  ASSERT_TRUE(store.Retire("release").ok());
  EXPECT_TRUE(store.Current().empty());
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/" + file));
  EXPECT_EQ(store.Retire("release").code(), StatusCode::kNotFound);

  SynopsisStore reopened(options_);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_TRUE(reopened.Current().empty());
  serve::SynopsisRegistry registry;
  StatusOr<RecoveryReport> report = reopened.Recover(&registry);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().records_replayed, 2u);
  EXPECT_EQ(registry.size(), 0u);
}

TEST_F(StoreTest, TornManifestTailIsTruncatedNotTrusted) {
  {
    SynopsisStore store(options_);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Install("a", MakeSynopsis(1)).ok());
    ASSERT_TRUE(store.Install("b", MakeSynopsis(2)).ok());
  }
  // Tear the journal: a record prefix with no trailing newline, as a crash
  // mid-append would leave it.
  {
    std::ofstream out(ManifestPath(), std::ios::binary | std::ios::app);
    out << "3 install c c.3.pv sum=0123";
  }
  SynopsisStore reopened(options_);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.Current().size(), 2u);
  EXPECT_EQ(reopened.Current().count("c"), 0u);
  serve::SynopsisRegistry registry;
  StatusOr<RecoveryReport> report = reopened.Recover(&registry);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().manifest_truncated);
  EXPECT_EQ(report.value().records_replayed, 2u);
  EXPECT_EQ(registry.size(), 2u);
  // The tear is gone from disk: a third open replays clean.
  SynopsisStore third(options_);
  ASSERT_TRUE(third.Open().ok());
  serve::SynopsisRegistry registry2;
  StatusOr<RecoveryReport> report2 = third.Recover(&registry2);
  ASSERT_TRUE(report2.ok());
  EXPECT_FALSE(report2.value().manifest_truncated);
}

TEST_F(StoreTest, CorruptRecordChecksumEndsReplay) {
  {
    SynopsisStore store(options_);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Install("a", MakeSynopsis()).ok());
  }
  {
    std::ofstream out(ManifestPath(), std::ios::binary | std::ios::app);
    out << "2 install evil evil.2.pv sum=0000000000000000\n";
  }
  SynopsisStore reopened(options_);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.Current().count("evil"), 0u);
  EXPECT_EQ(reopened.Current().count("a"), 1u);
  EXPECT_EQ(reopened.next_seq(), 2u);
}

TEST_F(StoreTest, DamagedHeaderQuarantinesTheWholeJournal) {
  std::string installed_file;
  {
    SynopsisStore store(options_);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Install("release", MakeSynopsis()).ok());
    installed_file = store.Current().at("release");
  }
  // Smash the journal head; the history below it is now untrustworthy.
  const std::string body = ReadManifest();
  WriteFile(ManifestPath(), "not-a-manifest\n" + body);

  SynopsisStore reopened(options_);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_TRUE(reopened.Current().empty());
  EXPECT_TRUE(
      std::filesystem::exists(dir_ + "/quarantine/MANIFEST.corrupt"));

  serve::SynopsisRegistry registry;
  StatusOr<RecoveryReport> report = reopened.Recover(&registry);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().warnings.empty());
  // The release file survives as quarantined evidence, not as a serving
  // synopsis backed by no journal.
  EXPECT_EQ(registry.size(), 0u);
  ASSERT_EQ(report.value().quarantined.size(), 1u);
  EXPECT_NE(report.value().quarantined[0].find("unjournaled orphan"),
            std::string::npos);
  EXPECT_TRUE(
      std::filesystem::exists(dir_ + "/quarantine/" + installed_file));
}

TEST_F(StoreTest, TornTempFileIsQuarantined) {
  SynopsisStore store(options_);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Install("release", MakeSynopsis()).ok());
  WriteFile(dir_ + "/release.9.pv.tmp", "half a synopsis");
  serve::SynopsisRegistry registry;
  StatusOr<RecoveryReport> report = store.Recover(&registry);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().quarantined.size(), 1u);
  EXPECT_NE(report.value().quarantined[0].find("torn install"),
            std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/release.9.pv.tmp"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/quarantine/release.9.pv.tmp"));
  EXPECT_EQ(registry.size(), 1u);  // the real release is unaffected
}

TEST_F(StoreTest, UnjournaledOrphanIsQuarantined) {
  SynopsisStore store(options_);
  ASSERT_TRUE(store.Open().ok());
  WriteFile(dir_ + "/ghost.5.pv", "no journal record points here");
  serve::SynopsisRegistry registry;
  StatusOr<RecoveryReport> report = store.Recover(&registry);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().quarantined.size(), 1u);
  EXPECT_NE(report.value().quarantined[0].find("unjournaled orphan"),
            std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/quarantine/ghost.5.pv"));
}

TEST_F(StoreTest, CorruptCurrentFileIsQuarantinedNotServed) {
  {
    SynopsisStore store(options_);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Install("release", MakeSynopsis()).ok());
  }
  SynopsisStore reopened(options_);
  ASSERT_TRUE(reopened.Open().ok());
  const std::string file = reopened.Current().at("release");
  WriteFile(dir_ + "/" + file, "rotten bits");

  serve::SynopsisRegistry registry;
  StatusOr<RecoveryReport> report = reopened.Recover(&registry);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(registry.size(), 0u);
  ASSERT_EQ(report.value().quarantined.size(), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/quarantine/" + file));
  // The store no longer claims it as current either.
  EXPECT_TRUE(reopened.Current().empty());
}

TEST_F(StoreTest, RecoverWithoutRegistryStillReconciles) {
  {
    SynopsisStore store(options_);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Install("release", MakeSynopsis()).ok());
  }
  SynopsisStore reopened(options_);
  ASSERT_TRUE(reopened.Open().ok());
  StatusOr<RecoveryReport> report = reopened.Recover(nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().loads.count("release"), 1u);
}

}  // namespace
}  // namespace priview::store
