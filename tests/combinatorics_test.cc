#include "common/combinatorics.h"

#include <set>

#include <gtest/gtest.h>

#include "common/bits.h"

namespace priview {
namespace {

TEST(CombinatoricsTest, BinomialKnownValues) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(5, 0), 1u);
  EXPECT_EQ(Binomial(5, 5), 1u);
  EXPECT_EQ(Binomial(5, 2), 10u);
  EXPECT_EQ(Binomial(32, 8), 10518300u);
  EXPECT_EQ(Binomial(45, 6), 8145060u);
  EXPECT_EQ(Binomial(10, 11), 0u);
}

TEST(CombinatoricsTest, BinomialDoubleMatchesExact) {
  for (int n = 0; n <= 40; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_DOUBLE_EQ(BinomialDouble(n, k),
                       static_cast<double>(Binomial(n, k)))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CombinatoricsTest, PascalIdentity) {
  for (int n = 1; n <= 30; ++n) {
    for (int k = 1; k <= n; ++k) {
      EXPECT_EQ(Binomial(n, k), Binomial(n - 1, k - 1) + Binomial(n - 1, k));
    }
  }
}

TEST(CombinatoricsTest, PrefixSum) {
  // Sum_{j<=2} C(4,j) = 1 + 4 + 6 = 11.
  EXPECT_DOUBLE_EQ(BinomialPrefixSum(4, 2), 11.0);
  // Full prefix equals 2^n.
  EXPECT_DOUBLE_EQ(BinomialPrefixSum(10, 10), 1024.0);
  // Barak coefficient count for d=9, k=4: 1+9+36+84+126 = 256.
  EXPECT_DOUBLE_EQ(BinomialPrefixSum(9, 4), 256.0);
}

TEST(CombinatoricsTest, AllSubsetsCountAndContent) {
  const auto subsets = AllSubsets(5, 3);
  EXPECT_EQ(subsets.size(), 10u);
  std::set<std::vector<int>> unique(subsets.begin(), subsets.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const auto& s : subsets) {
    ASSERT_EQ(s.size(), 3u);
    EXPECT_LT(s[0], s[1]);
    EXPECT_LT(s[1], s[2]);
    EXPECT_GE(s[0], 0);
    EXPECT_LT(s[2], 5);
  }
}

TEST(CombinatoricsTest, AllSubsetsEdgeCases) {
  EXPECT_EQ(AllSubsets(4, 0).size(), 1u);
  EXPECT_EQ(AllSubsets(4, 4).size(), 1u);
  EXPECT_TRUE(AllSubsets(3, 5).empty());
}

TEST(CombinatoricsTest, ForEachSubsetMaskMatchesBinomial) {
  for (int n = 1; n <= 16; ++n) {
    for (int k = 0; k <= n && k <= 4; ++k) {
      uint64_t count = 0;
      std::set<uint64_t> seen;
      ForEachSubsetMask(n, k, [&](uint64_t mask) {
        ++count;
        EXPECT_EQ(PopCount(mask), k);
        EXPECT_EQ(mask >> n, 0u);
        seen.insert(mask);
      });
      EXPECT_EQ(count, Binomial(n, k)) << "n=" << n << " k=" << k;
      EXPECT_EQ(seen.size(), count);
    }
  }
}

TEST(CombinatoricsTest, ForEachSubsetMaskLargeN) {
  uint64_t count = 0;
  ForEachSubsetMask(64, 2, [&](uint64_t) { ++count; });
  EXPECT_EQ(count, Binomial(64, 2));
}

}  // namespace
}  // namespace priview
