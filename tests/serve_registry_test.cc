// SynopsisRegistry suite: hosting lifecycle (install / acquire / list /
// remove / epochs), disk installs with LoadReport surfacing, and the two
// contracts serving depends on — a hot-swap never tears an in-flight
// query (refcounted acquires), and a failed or raced swap leaves the
// previous release live.
#include "serve/synopsis_registry.h"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "core/serialization.h"
#include "data/synthetic.h"

namespace priview::serve {
namespace {

// A deterministic noiseless synopsis: every install of MakeSynopsis(seed)
// with the same seed hosts bit-identical views, which the swap tests use
// to assert answers never change across an equivalent swap.
PriViewSynopsis MakeSynopsis(uint64_t seed, double epsilon = 1.0) {
  Rng rng(seed);
  Dataset data = MakeMsnbcLike(&rng, 5000);
  PriViewOptions options;
  options.add_noise = false;
  options.epsilon = epsilon;
  return PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4}),
       AttrSet::FromIndices({4, 5, 6})},
      options, &rng);
}

TEST(SynopsisRegistryTest, InstallAcquireListRemove) {
  SynopsisRegistry registry;
  EXPECT_EQ(registry.size(), 0u);

  ASSERT_TRUE(registry.Install("adult-eps1", MakeSynopsis(1)).ok());
  ASSERT_TRUE(registry.Install("adult-eps05", MakeSynopsis(1, 0.5)).ok());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.install_count(), 2u);

  StatusOr<std::shared_ptr<const HostedSynopsis>> hosted =
      registry.Acquire("adult-eps1");
  ASSERT_TRUE(hosted.ok());
  EXPECT_EQ(hosted.value()->name(), "adult-eps1");
  EXPECT_EQ(hosted.value()->synopsis().d(), 9);
  EXPECT_EQ(hosted.value()->epoch(), 1u);

  const std::vector<SynopsisInfo> listed = registry.List();
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].name, "adult-eps05");  // map order
  EXPECT_EQ(listed[1].name, "adult-eps1");
  EXPECT_DOUBLE_EQ(listed[0].epsilon, 0.5);

  EXPECT_TRUE(registry.Remove("adult-eps05").ok());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Remove("adult-eps05").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Acquire("adult-eps05").status().code(),
            StatusCode::kNotFound);
}

TEST(SynopsisRegistryTest, InvalidInstallsRejectedWithoutSideEffects) {
  SynopsisRegistry registry;
  EXPECT_EQ(registry.Install("", MakeSynopsis(1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.install_count(), 0u);
}

TEST(SynopsisRegistryTest, EpochsAreRegistryGlobalAndMonotonic) {
  SynopsisRegistry registry;
  ASSERT_TRUE(registry.Install("a", MakeSynopsis(1)).ok());
  ASSERT_TRUE(registry.Install("b", MakeSynopsis(2)).ok());
  ASSERT_TRUE(registry.Install("a", MakeSynopsis(3)).ok());  // hot-swap
  EXPECT_EQ(registry.Acquire("b").value()->epoch(), 2u);
  EXPECT_EQ(registry.Acquire("a").value()->epoch(), 3u);
  EXPECT_EQ(registry.install_count(), 3u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(SynopsisRegistryTest, InstallFromFileSurfacesTheLoadReport) {
  const PriViewSynopsis synopsis = MakeSynopsis(7);
  const std::string path = ::testing::TempDir() + "/registry_install.pv";
  ASSERT_TRUE(SaveSynopsis(synopsis, path).ok());

  SynopsisRegistry registry;
  StatusOr<LoadReport> report = registry.InstallFromFile("from-disk", path);
  std::remove(path.c_str());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().fully_intact());
  EXPECT_EQ(report.value().views_loaded, 3);

  StatusOr<std::shared_ptr<const HostedSynopsis>> hosted =
      registry.Acquire("from-disk");
  ASSERT_TRUE(hosted.ok());
  EXPECT_TRUE(hosted.value()->load_report().fully_intact());
  // The loaded release answers identically to the source synopsis.
  const AttrSet scope = AttrSet::FromIndices({0, 1, 2});
  EXPECT_EQ(hosted.value()->synopsis().Query(scope).cells(),
            synopsis.Query(scope).cells());
}

TEST(SynopsisRegistryTest, InstallFromMissingFileLeavesRegistryUntouched) {
  SynopsisRegistry registry;
  ASSERT_TRUE(registry.Install("live", MakeSynopsis(1)).ok());
  EXPECT_FALSE(
      registry.InstallFromFile("live", "/nonexistent/priview.pv").ok());
  // The failed install never disturbed the served release.
  EXPECT_EQ(registry.Acquire("live").value()->epoch(), 1u);
  EXPECT_EQ(registry.install_count(), 1u);
}

TEST(SynopsisRegistryTest, AcquiredReleaseSurvivesSwapAndRemove) {
  SynopsisRegistry registry;
  ASSERT_TRUE(registry.Install("s", MakeSynopsis(1)).ok());
  StatusOr<std::shared_ptr<const HostedSynopsis>> held = registry.Acquire("s");
  ASSERT_TRUE(held.ok());
  const AttrSet scope = AttrSet::FromIndices({0, 1, 2});
  const MarginalTable before = held.value()->engine().TryMarginal(scope).value();

  // Swap to different content, then remove entirely: the held release
  // must keep answering, bit-identically to before.
  ASSERT_TRUE(registry.Install("s", MakeSynopsis(99)).ok());
  ASSERT_TRUE(registry.Remove("s").ok());
  EXPECT_EQ(held.value()->epoch(), 1u);
  const MarginalTable after = held.value()->engine().TryMarginal(scope).value();
  EXPECT_EQ(after.cells(), before.cells());
}

TEST(SynopsisRegistryTest, SwapRaceFailpointKeepsPreviousReleaseLive) {
#if !PRIVIEW_FAILPOINTS_ENABLED
  GTEST_SKIP() << "failpoints compiled out";
#endif
  SynopsisRegistry registry;
  ASSERT_TRUE(registry.Install("s", MakeSynopsis(1)).ok());
  {
    failpoint::ScopedFailpoint scoped("serve/swap-race", "always");
    ASSERT_TRUE(scoped.status().ok());
    const Status swap = registry.Install("s", MakeSynopsis(2));
    EXPECT_EQ(swap.code(), StatusCode::kFailedPrecondition);
    EXPECT_FALSE(swap.message().empty());
    // Lost race: epoch 1 still serves.
    EXPECT_EQ(registry.Acquire("s").value()->epoch(), 1u);
    EXPECT_EQ(registry.install_count(), 1u);
  }
  // Fault cleared: the retry wins.
  ASSERT_TRUE(registry.Install("s", MakeSynopsis(2)).ok());
  EXPECT_EQ(registry.Acquire("s").value()->epoch(), 2u);
}

TEST(SynopsisRegistryTest, HotSwapUnderConcurrentQueriesIsNeverTorn) {
  // Readers hammer Acquire+query while a writer re-installs the same
  // (bit-identical) synopsis under the same name. Every answer must be
  // bit-identical to the reference — a torn swap, a dangling engine, or a
  // half-installed release would break that (and trip tsan).
  SynopsisRegistry registry;
  ASSERT_TRUE(registry.Install("hot", MakeSynopsis(5)).ok());
  const PriViewSynopsis reference = MakeSynopsis(5);
  const AttrSet scope = AttrSet::FromIndices({2, 3, 4});
  const std::vector<double> expected = reference.Query(scope).cells();

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        StatusOr<std::shared_ptr<const HostedSynopsis>> hosted =
            registry.Acquire("hot");
        if (!hosted.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        StatusOr<MarginalTable> answer =
            hosted.value()->engine().TryMarginal(scope);
        if (!answer.ok() || answer.value().cells() != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (int swap = 0; swap < 25; ++swap) {
    ASSERT_TRUE(registry.Install("hot", MakeSynopsis(5)).ok());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(registry.install_count(), 26u);
}

}  // namespace
}  // namespace priview::serve
