#include "metrics/metrics.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace priview {
namespace {

TEST(MetricsTest, NormalizedL2) {
  MarginalTable a(AttrSet::FromIndices({0}), std::vector<double>{3.0, 0.0});
  MarginalTable b(AttrSet::FromIndices({0}), std::vector<double>{0.0, 4.0});
  EXPECT_DOUBLE_EQ(NormalizedL2Error(a, b, 10.0), 0.5);
}

TEST(MetricsTest, KlOfIdenticalIsZero) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(MetricsTest, KlKnownValue) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> q = {0.25, 0.75};
  const double expected =
      0.5 * std::log(0.5 / 0.25) + 0.5 * std::log(0.5 / 0.75);
  EXPECT_NEAR(KlDivergence(p, q), expected, 1e-12);
}

TEST(MetricsTest, KlSkipsZeroP) {
  EXPECT_NEAR(KlDivergence({0.0, 1.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(MetricsTest, JensenShannonProperties) {
  const std::vector<double> p = {0.1, 0.9};
  const std::vector<double> q = {0.8, 0.2};
  const double js = JensenShannon(p, q);
  EXPECT_GT(js, 0.0);
  EXPECT_LE(js, std::log(2.0) + 1e-12);  // JS (nats) bounded by ln 2
  EXPECT_NEAR(JensenShannon(p, q), JensenShannon(q, p), 1e-12);  // symmetric
  EXPECT_NEAR(JensenShannon(p, p), 0.0, 1e-12);
}

TEST(MetricsTest, JensenShannonHandlesDisjointSupport) {
  // Exactly the case that breaks raw KL: q has zeros where p is positive.
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.0, 1.0};
  EXPECT_NEAR(JensenShannon(p, q), std::log(2.0), 1e-12);
}

TEST(MetricsTest, JensenShannonTablesNormalizes) {
  MarginalTable a(AttrSet::FromIndices({0}), std::vector<double>{30.0, 70.0});
  MarginalTable b(AttrSet::FromIndices({0}), std::vector<double>{3.0, 7.0});
  EXPECT_NEAR(JensenShannonTables(a, b), 0.0, 1e-12);
}

TEST(MetricsTest, SummarizeKnownQuartiles) {
  // 1..100: p25 = 25.75, median = 50.5, p75 = 75.25, p95 = 95.05.
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  const Candlestick c = Summarize(values);
  EXPECT_NEAR(c.p25, 25.75, 1e-9);
  EXPECT_NEAR(c.median, 50.5, 1e-9);
  EXPECT_NEAR(c.p75, 75.25, 1e-9);
  EXPECT_NEAR(c.p95, 95.05, 1e-9);
  EXPECT_NEAR(c.mean, 50.5, 1e-9);
}

TEST(MetricsTest, SummarizeSingleValue) {
  const Candlestick c = Summarize({7.0});
  EXPECT_DOUBLE_EQ(c.p25, 7.0);
  EXPECT_DOUBLE_EQ(c.median, 7.0);
  EXPECT_DOUBLE_EQ(c.p95, 7.0);
  EXPECT_DOUBLE_EQ(c.mean, 7.0);
}

TEST(MetricsTest, SummarizeUnsortedInput) {
  const Candlestick c = Summarize({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(c.median, 3.0);
  EXPECT_DOUBLE_EQ(c.mean, 3.0);
}

TEST(MetricsTest, SampleQuerySetsDistinctAndSized) {
  Rng rng(1);
  const std::vector<AttrSet> queries = SampleQuerySets(20, 4, 50, &rng);
  EXPECT_EQ(queries.size(), 50u);
  std::set<AttrSet> unique(queries.begin(), queries.end());
  EXPECT_EQ(unique.size(), 50u);
  for (AttrSet q : queries) {
    EXPECT_EQ(q.size(), 4);
    EXPECT_TRUE(q.IsSubsetOf(AttrSet::Full(20)));
  }
}

TEST(MetricsTest, ConsecutiveQuerySets) {
  const std::vector<AttrSet> queries = ConsecutiveQuerySets(6, 3);
  ASSERT_EQ(queries.size(), 4u);
  EXPECT_EQ(queries[0], AttrSet::FromIndices({0, 1, 2}));
  EXPECT_EQ(queries[3], AttrSet::FromIndices({3, 4, 5}));
}

}  // namespace
}  // namespace priview
