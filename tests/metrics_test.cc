#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

namespace priview {
namespace {

TEST(MetricsTest, NormalizedL2) {
  MarginalTable a(AttrSet::FromIndices({0}), std::vector<double>{3.0, 0.0});
  MarginalTable b(AttrSet::FromIndices({0}), std::vector<double>{0.0, 4.0});
  EXPECT_DOUBLE_EQ(NormalizedL2Error(a, b, 10.0), 0.5);
}

TEST(MetricsTest, KlOfIdenticalIsZero) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(MetricsTest, KlKnownValue) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> q = {0.25, 0.75};
  const double expected =
      0.5 * std::log(0.5 / 0.25) + 0.5 * std::log(0.5 / 0.75);
  EXPECT_NEAR(KlDivergence(p, q), expected, 1e-12);
}

TEST(MetricsTest, KlSkipsZeroP) {
  EXPECT_NEAR(KlDivergence({0.0, 1.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(MetricsTest, JensenShannonProperties) {
  const std::vector<double> p = {0.1, 0.9};
  const std::vector<double> q = {0.8, 0.2};
  const double js = JensenShannon(p, q);
  EXPECT_GT(js, 0.0);
  EXPECT_LE(js, std::log(2.0) + 1e-12);  // JS (nats) bounded by ln 2
  EXPECT_NEAR(JensenShannon(p, q), JensenShannon(q, p), 1e-12);  // symmetric
  EXPECT_NEAR(JensenShannon(p, p), 0.0, 1e-12);
}

TEST(MetricsTest, JensenShannonHandlesDisjointSupport) {
  // Exactly the case that breaks raw KL: q has zeros where p is positive.
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.0, 1.0};
  EXPECT_NEAR(JensenShannon(p, q), std::log(2.0), 1e-12);
}

TEST(MetricsTest, JensenShannonTablesNormalizes) {
  MarginalTable a(AttrSet::FromIndices({0}), std::vector<double>{30.0, 70.0});
  MarginalTable b(AttrSet::FromIndices({0}), std::vector<double>{3.0, 7.0});
  EXPECT_NEAR(JensenShannonTables(a, b), 0.0, 1e-12);
}

TEST(MetricsTest, SummarizeKnownQuartiles) {
  // 1..100: p25 = 25.75, median = 50.5, p75 = 75.25, p95 = 95.05.
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  const Candlestick c = Summarize(values);
  EXPECT_NEAR(c.p25, 25.75, 1e-9);
  EXPECT_NEAR(c.median, 50.5, 1e-9);
  EXPECT_NEAR(c.p75, 75.25, 1e-9);
  EXPECT_NEAR(c.p95, 95.05, 1e-9);
  EXPECT_NEAR(c.mean, 50.5, 1e-9);
}

TEST(MetricsTest, SummarizeSingleValue) {
  const Candlestick c = Summarize({7.0});
  EXPECT_DOUBLE_EQ(c.p25, 7.0);
  EXPECT_DOUBLE_EQ(c.median, 7.0);
  EXPECT_DOUBLE_EQ(c.p95, 7.0);
  EXPECT_DOUBLE_EQ(c.mean, 7.0);
}

TEST(MetricsTest, SummarizeUnsortedInput) {
  const Candlestick c = Summarize({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(c.median, 3.0);
  EXPECT_DOUBLE_EQ(c.mean, 3.0);
}

TEST(MetricsTest, SampleQuerySetsDistinctAndSized) {
  Rng rng(1);
  const std::vector<AttrSet> queries = SampleQuerySets(20, 4, 50, &rng);
  EXPECT_EQ(queries.size(), 50u);
  std::set<AttrSet> unique(queries.begin(), queries.end());
  EXPECT_EQ(unique.size(), 50u);
  for (AttrSet q : queries) {
    EXPECT_EQ(q.size(), 4);
    EXPECT_TRUE(q.IsSubsetOf(AttrSet::Full(20)));
  }
}

TEST(MetricsTest, SampleQuerySetsAtExactPopulationSize) {
  // count == C(6, 3) == 20: used to abort on the rejection-sampling
  // attempt limit; must now return the whole population.
  Rng rng(2);
  const std::vector<AttrSet> queries = SampleQuerySets(6, 3, 20, &rng);
  EXPECT_EQ(queries.size(), 20u);
  std::set<AttrSet> unique(queries.begin(), queries.end());
  EXPECT_EQ(unique.size(), 20u);
  for (AttrSet q : queries) EXPECT_EQ(q.size(), 3);
}

TEST(MetricsTest, SampleQuerySetsBeyondPopulationReturnsAll) {
  // count > C(5, 2) == 10: the population is all there is.
  Rng rng(3);
  const std::vector<AttrSet> queries = SampleQuerySets(5, 2, 1000, &rng);
  EXPECT_EQ(queries.size(), 10u);
  std::set<AttrSet> unique(queries.begin(), queries.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(MetricsTest, SampleQuerySetsOverPopulationAtDeepK) {
  // count > C(12, 6) == 924, a shape where the capped binomial's running
  // product crosses the cap mid-iteration. A premature saturation (on the
  // pre-division product rather than the true value) over-reports the
  // population, routes this into rejection sampling, and the sampler then
  // spins forever trying to collect 1000 distinct sets out of 924. The
  // fixed cap logic must report 924 exactly and return the population.
  Rng rng(7);
  const std::vector<AttrSet> queries = SampleQuerySets(12, 6, 1000, &rng);
  EXPECT_EQ(queries.size(), 924u);
  std::set<AttrSet> unique(queries.begin(), queries.end());
  EXPECT_EQ(unique.size(), 924u);
  for (AttrSet q : queries) {
    EXPECT_EQ(q.size(), 6);
    EXPECT_TRUE(q.IsSubsetOf(AttrSet::Full(12)));
  }
}

TEST(MetricsTest, SampleQuerySetsDenseAtDeepK) {
  // Same deep-k shape, count just over half the population: must land in
  // the dense enumerate-and-pick regime and return exactly `count`
  // distinct sets (quickly — no rejection-sampling tail near saturation).
  Rng rng(8);
  const std::vector<AttrSet> queries = SampleQuerySets(12, 6, 500, &rng);
  EXPECT_EQ(queries.size(), 500u);
  std::set<AttrSet> unique(queries.begin(), queries.end());
  EXPECT_EQ(unique.size(), 500u);
}

TEST(MetricsTest, SampleQuerySetsDenseNearPopulation) {
  // count just below C(8, 4) == 70 lands in the dense enumerate-and-pick
  // regime; the draw must still be distinct, sized, and in-universe.
  Rng rng(4);
  const std::vector<AttrSet> queries = SampleQuerySets(8, 4, 69, &rng);
  EXPECT_EQ(queries.size(), 69u);
  std::set<AttrSet> unique(queries.begin(), queries.end());
  EXPECT_EQ(unique.size(), 69u);
  for (AttrSet q : queries) {
    EXPECT_EQ(q.size(), 4);
    EXPECT_TRUE(q.IsSubsetOf(AttrSet::Full(8)));
  }
}

TEST(MetricsTest, SampleQuerySetsLargeUniverseStaysSparse) {
  // C(50, 5) overflows nothing here, but it is astronomically larger than
  // the request: the capped binomial must route this through rejection
  // sampling without ever materializing the population.
  Rng rng(5);
  const std::vector<AttrSet> queries = SampleQuerySets(50, 5, 64, &rng);
  EXPECT_EQ(queries.size(), 64u);
  std::set<AttrSet> unique(queries.begin(), queries.end());
  EXPECT_EQ(unique.size(), 64u);
}

TEST(MetricsTest, SampleQuerySetsZeroCountIsEmpty) {
  Rng rng(6);
  EXPECT_TRUE(SampleQuerySets(10, 3, 0, &rng).empty());
  EXPECT_TRUE(SampleQuerySets(10, 3, -5, &rng).empty());
}

TEST(MetricsTest, SummarizeTwoValuesInterpolates) {
  const Candlestick c = Summarize({10.0, 20.0});
  EXPECT_DOUBLE_EQ(c.p25, 12.5);
  EXPECT_DOUBLE_EQ(c.median, 15.0);
  EXPECT_DOUBLE_EQ(c.p75, 17.5);
  EXPECT_DOUBLE_EQ(c.p95, 19.5);
  EXPECT_DOUBLE_EQ(c.mean, 15.0);
}

TEST(MetricsTest, P95OnSmallSamplesStaysInRange) {
  // For n < 20 the p95 rank lands inside the top gap; it must interpolate
  // between the two largest order statistics, never past the max.
  for (int n = 1; n < 20; ++n) {
    std::vector<double> values;
    for (int i = 1; i <= n; ++i) values.push_back(i);
    const Candlestick c = Summarize(values);
    EXPECT_LE(c.p95, static_cast<double>(n)) << "n=" << n;
    EXPECT_GE(c.p95, n > 1 ? static_cast<double>(n - 1) : 1.0) << "n=" << n;
    EXPECT_GE(c.p95, c.p75) << "n=" << n;
  }
}

TEST(MetricsTest, PercentileOfSortedEndpoints) {
  const std::vector<double> sorted = {1.0, 2.0, 4.0, 8.0};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 100.0), 8.0);
  // rank 1.5: halfway between the 2nd and 3rd order statistics.
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 50.0), 3.0);
}

TEST(MetricsTest, PercentileMatchesNearestRankOracle) {
  // Property: the interpolated percentile is bracketed by the naive
  // nearest-rank order statistics on either side of the fractional rank,
  // for a sweep of sample sizes and percentiles (deterministic LCG data).
  uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 40);
  };
  for (int n : {1, 2, 3, 5, 7, 19, 20, 64, 100}) {
    std::vector<double> sorted;
    for (int i = 0; i < n; ++i) sorted.push_back(next());
    std::sort(sorted.begin(), sorted.end());
    for (double pct : {0.0, 1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0}) {
      const double value = PercentileOfSorted(sorted, pct);
      const double rank = pct / 100.0 * (n - 1);
      const size_t lo = static_cast<size_t>(rank);
      const size_t hi = std::min(lo + 1, sorted.size() - 1);
      EXPECT_GE(value, sorted[lo]) << "n=" << n << " pct=" << pct;
      EXPECT_LE(value, sorted[hi]) << "n=" << n << " pct=" << pct;
      // Nearest-rank oracle: ceil(pct/100 * n)-th order statistic (1-based)
      // never differs from the interpolated value by more than one gap.
      const size_t nearest =
          pct == 0.0 ? 0
                     : std::min(static_cast<size_t>(
                                    std::ceil(pct / 100.0 * n)) - 1,
                                sorted.size() - 1);
      const size_t gap_lo = nearest > 0 ? nearest - 1 : 0;
      const size_t gap_hi = std::min(nearest + 1, sorted.size() - 1);
      EXPECT_GE(value, sorted[gap_lo]) << "n=" << n << " pct=" << pct;
      EXPECT_LE(value, sorted[gap_hi]) << "n=" << n << " pct=" << pct;
    }
  }
}

TEST(MetricsTest, ConsecutiveQuerySets) {
  const std::vector<AttrSet> queries = ConsecutiveQuerySets(6, 3);
  ASSERT_EQ(queries.size(), 4u);
  EXPECT_EQ(queries[0], AttrSet::FromIndices({0, 1, 2}));
  EXPECT_EQ(queries[3], AttrSet::FromIndices({3, 4, 5}));
}

}  // namespace
}  // namespace priview
