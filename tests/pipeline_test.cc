#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

namespace priview {
namespace {

TEST(PipelineTest, EndToEndProducesUsableSynopsis) {
  Rng rng(1);
  Dataset data = MakeKosarakLike(&rng, 50000);
  PipelineOptions options;
  options.total_epsilon = 1.0;
  StatusOr<PipelineResult> result =
      BuildPriViewPipeline(data, options, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PipelineResult& r = result.value();

  // Budget adds up exactly.
  EXPECT_NEAR(r.count_epsilon + r.views_epsilon, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.count_epsilon, 0.001);

  // Noisy N is close at this epsilon and N.
  EXPECT_NEAR(r.noisy_count, 50000.0, 20000.0);

  // Selection produced a verified covering.
  EXPECT_TRUE(VerifyCovering(r.selection.design));

  // The synopsis answers queries sensibly.
  const AttrSet q = AttrSet::FromIndices({0, 1, 2, 3});
  const MarginalTable truth = data.CountMarginal(q);
  const MarginalTable uniform(q, 50000.0 / 16.0);
  EXPECT_LT(r.synopsis.Query(q).L2DistanceTo(truth),
            uniform.L2DistanceTo(truth));
}

TEST(PipelineTest, RejectsBadBudgetSplits) {
  Rng rng(2);
  Dataset data = MakeMsnbcLike(&rng, 1000);
  {
    PipelineOptions options;
    options.total_epsilon = 0.0;
    EXPECT_FALSE(BuildPriViewPipeline(data, options, &rng).ok());
  }
  {
    PipelineOptions options;
    options.total_epsilon = 0.5;
    options.count_epsilon = 0.5;  // nothing left for the views
    EXPECT_FALSE(BuildPriViewPipeline(data, options, &rng).ok());
  }
  {
    PipelineOptions options;
    options.count_epsilon = -1.0;
    EXPECT_FALSE(BuildPriViewPipeline(data, options, &rng).ok());
  }
}

TEST(PipelineTest, RejectsNullRng) {
  Rng rng(3);
  Dataset data = MakeMsnbcLike(&rng, 100);
  EXPECT_FALSE(BuildPriViewPipeline(data, PipelineOptions{}, nullptr).ok());
}

TEST(PipelineTest, TightBudgetStillSucceedsWithPairs) {
  Rng rng(4);
  Dataset data = MakeMsnbcLike(&rng, 5000);
  PipelineOptions options;
  options.total_epsilon = 0.05;  // very tight: forces t = 2
  StatusOr<PipelineResult> result =
      BuildPriViewPipeline(data, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().selection.design.t, 2);
}

TEST(PipelineTest, SelectionUsesNoisyCountNotTrueCount) {
  // With an absurdly small count budget, the noisy N can deviate wildly;
  // the pipeline must still produce a valid design (robustness property —
  // §4.5: "a rough estimate suffices").
  Rng rng(5);
  Dataset data = MakeMsnbcLike(&rng, 3000);
  PipelineOptions options;
  options.total_epsilon = 1.0;
  options.count_epsilon = 0.00001;
  StatusOr<PipelineResult> result =
      BuildPriViewPipeline(data, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(VerifyCovering(result.value().selection.design));
  EXPECT_GE(result.value().noisy_count, 1.0);
}

}  // namespace
}  // namespace priview
