#include "table/dataset.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "table/contingency_table.h"

namespace priview {
namespace {

Dataset SmallDataset() {
  // d = 3 records: 000, 101, 111, 101, 010.
  Dataset data(3);
  data.Add(0b000);
  data.Add(0b101);
  data.Add(0b111);
  data.Add(0b101);
  data.Add(0b010);
  return data;
}

TEST(DatasetTest, CountMarginalKnown) {
  const Dataset data = SmallDataset();
  const MarginalTable t = data.CountMarginal(AttrSet::FromIndices({0, 2}));
  // (a0, a2) pairs: (0,0), (1,1), (1,1), (1,1), (0,0).
  EXPECT_DOUBLE_EQ(t.At(0b00), 2.0);
  EXPECT_DOUBLE_EQ(t.At(0b01), 0.0);
  EXPECT_DOUBLE_EQ(t.At(0b10), 0.0);
  EXPECT_DOUBLE_EQ(t.At(0b11), 3.0);
  EXPECT_DOUBLE_EQ(t.Total(), 5.0);
}

TEST(DatasetTest, CountCellMatchesMarginal) {
  const Dataset data = SmallDataset();
  const AttrSet attrs = AttrSet::FromIndices({1, 2});
  const MarginalTable t = data.CountMarginal(attrs);
  for (uint64_t a = 0; a < t.size(); ++a) {
    EXPECT_DOUBLE_EQ(data.CountCell(attrs, a), t.At(a));
  }
}

TEST(DatasetTest, AttributeFrequency) {
  const Dataset data = SmallDataset();
  EXPECT_DOUBLE_EQ(data.AttributeFrequency(0), 3.0 / 5);
  EXPECT_DOUBLE_EQ(data.AttributeFrequency(1), 2.0 / 5);
  EXPECT_DOUBLE_EQ(data.AttributeFrequency(2), 3.0 / 5);
}

TEST(DatasetTest, MarginalConsistentAcrossScopes) {
  // Projecting a wider marginal must equal counting the narrower directly.
  Rng rng(8);
  Dataset data(10);
  for (int i = 0; i < 2000; ++i) {
    data.Add(rng.NextUint64() & 0x3FF);
  }
  const AttrSet wide = AttrSet::FromIndices({1, 3, 4, 8});
  const AttrSet narrow = AttrSet::FromIndices({3, 8});
  const MarginalTable direct = data.CountMarginal(narrow);
  const MarginalTable projected = data.CountMarginal(wide).Project(narrow);
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct.At(i), projected.At(i));
  }
}

TEST(ContingencyTableTest, MatchesDirectCounting) {
  Rng rng(9);
  Dataset data(8);
  for (int i = 0; i < 5000; ++i) data.Add(rng.NextUint64() & 0xFF);
  const ContingencyTable full = ContingencyTable::FromDataset(data);
  EXPECT_DOUBLE_EQ(full.Total(), 5000.0);
  const AttrSet attrs = AttrSet::FromIndices({0, 4, 7});
  const MarginalTable from_full = full.MarginalOf(attrs);
  const MarginalTable direct = data.CountMarginal(attrs);
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_full.At(i), direct.At(i));
  }
}

TEST(ContingencyTableTest, FullMarginalIsTableItself) {
  Rng rng(10);
  Dataset data(5);
  for (int i = 0; i < 100; ++i) data.Add(rng.NextUint64() & 0x1F);
  const ContingencyTable full = ContingencyTable::FromDataset(data);
  const MarginalTable m = full.MarginalOf(AttrSet::Full(5));
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.At(i), full.At(i));
  }
}

TEST(DatasetTest, D64Supported) {
  Dataset data(64);
  data.Add(~0ULL);
  data.Add(0);
  const MarginalTable t = data.CountMarginal(AttrSet::FromIndices({0, 63}));
  EXPECT_DOUBLE_EQ(t.At(0b00), 1.0);
  EXPECT_DOUBLE_EQ(t.At(0b11), 1.0);
}

}  // namespace
}  // namespace priview
