// IpfTinyMul is the exact integer soft-float multiply the AVX2 scale
// kernel uses to update subnormal-neighborhood cells without paying the
// FPU's denormal microcode assist. Its contract is absolute: whenever it
// returns true, *out must equal the hardware product RN(x*f) bit for bit.
// These tests check that contract differentially against the FPU across
// the regions that matter (the sticky bottom of the subnormal range, the
// subnormal/normal boundary, round-to-nearest-even ties) plus broad random
// sweeps, and then pin the end-to-end story: an IPF instance engineered to
// park cells at the minimum subnormal must still produce bit-identical
// tables at both SIMD levels.
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/simd.h"
#include "opt/constraint.h"
#include "opt/ipf.h"
#include "opt/solver_kernels.h"
#include "table/marginal_table.h"

namespace priview {
namespace {

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double FromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Whenever IpfTinyMul claims a pair, its bits must match the FPU's.
void ExpectMatchesHardware(double x, double f) {
  double soft;
  if (!internal::IpfTinyMul(x, f, &soft)) return;
  const double hard = x * f;
  ASSERT_EQ(BitsOf(soft), BitsOf(hard))
      << "x=" << x << " f=" << f << " hard bits " << BitsOf(hard)
      << " soft bits " << BitsOf(soft);
}

TEST(IpfTinyMulTest, StickyBottomNeighborhood) {
  // The cells IPF actually parks: the smallest subnormals, scaled by
  // factors near 1 and near 1/2 — including the exact x*1.0 == x and the
  // half-ulp round-to-even cases.
  for (uint64_t k = 1; k <= 512; ++k) {
    for (int i = -600; i <= 600; ++i) {
      ExpectMatchesHardware(FromBits(k), 1.0 + i * 0x1p-52);
      ExpectMatchesHardware(FromBits(k), 0.5 + i * 0x1p-53);
    }
  }
}

TEST(IpfTinyMulTest, SubnormalNormalBoundary) {
  // Products straddling DBL_MIN and the top of the uniform 2^-1074 grid
  // (the 2^-1021 binade boundary, where IpfTinyMul must hand back to the
  // FPU rather than round at the wrong granularity).
  std::mt19937_64 rng(2026);
  const uint64_t kMant = (uint64_t{1} << 52) - 1;
  for (int rep = 0; rep < 200000; ++rep) {
    const uint64_t ke = rng() % 55;  // x in the subnormal region and just above
    const uint64_t bx = (ke << 52) | (rng() & kMant);
    const uint64_t fe = 1023 - 60 + (rng() % 121);  // f in 2^-60 .. 2^60
    const uint64_t bf = (fe << 52) | (rng() & kMant);
    ExpectMatchesHardware(FromBits(bx), FromBits(bf));
  }
}

TEST(IpfTinyMulTest, RandomNonNegativeFinite) {
  std::mt19937_64 rng(862);
  for (int rep = 0; rep < 200000; ++rep) {
    const uint64_t bx = rng() & 0x7FFFFFFFFFFFFFFFull;
    const uint64_t bf = rng() & 0x7FFFFFFFFFFFFFFFull;
    if (((bx >> 52) & 0x7FF) == 0x7FF || ((bf >> 52) & 0x7FF) == 0x7FF) {
      continue;
    }
    ExpectMatchesHardware(FromBits(bx), FromBits(bf));
  }
}

TEST(IpfTinyMulTest, TiesRoundToEven) {
  // Odd-mantissa factors generate products landing exactly halfway
  // between grid points; RNE must break the tie toward the even bits.
  for (uint64_t k = 1; k <= 400; ++k) {
    for (uint64_t m = 1; m <= 400; ++m) {
      ExpectMatchesHardware(FromBits(k), (2.0 * m + 1.0) * 0x1p-1);
      ExpectMatchesHardware(FromBits(k), (2.0 * m + 1.0) * 0x1p-12);
    }
  }
}

TEST(IpfTinyMulTest, RefusesWhatItCannotRepresent) {
  double out;
  // Negative operands, inf, NaN: always the FPU's job.
  EXPECT_FALSE(internal::IpfTinyMul(-1.0, 0.5, &out));
  EXPECT_FALSE(internal::IpfTinyMul(0x1p-1074, -0.5, &out));
  EXPECT_FALSE(internal::IpfTinyMul(
      std::numeric_limits<double>::infinity(), 0x1p-1074, &out));
  EXPECT_FALSE(internal::IpfTinyMul(
      std::numeric_limits<double>::quiet_NaN(), 0.5, &out));
  // Results above the uniform grid.
  EXPECT_FALSE(internal::IpfTinyMul(1.0, 1.0, &out));
  EXPECT_FALSE(internal::IpfTinyMul(0x1p-1074, 0x1p60, &out));
  // Zero is on the grid.
  EXPECT_TRUE(internal::IpfTinyMul(0.0, 1.0e300, &out));
  EXPECT_EQ(BitsOf(out), BitsOf(0.0));
  // Total underflow rounds to zero, exactly like the FPU.
  EXPECT_TRUE(internal::IpfTinyMul(0x1p-1074, 0x1p-200, &out));
  EXPECT_EQ(BitsOf(out), BitsOf(0.0));
}

// End-to-end: an IPF instance whose constraints force most of the mass
// into a few cells drives the remaining cells down the subnormal range to
// the sticky bottom (x * f rounds back to x), which is exactly the regime
// the AVX2 tiny-cell path rewrites through IpfTinyMul. Scalar and AVX2
// levels must still agree bit for bit on every cell.
TEST(IpfTinyMulTest, SubnormalStressScalarVsAvx2BitIdentical) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";

  const AttrSet attrs = AttrSet::FromIndices({0, 1, 2, 3, 4, 5, 6, 7});
  const double total = 50000.0;

  // Two 3-attribute scopes with nearly all mass in one target cell each:
  // cells outside those targets shrink multiplicatively every sweep and
  // pile up at 2^-1074 long before the iteration cap.
  auto make = [](std::initializer_list<int> scope_attrs,
                 std::vector<double> cells) {
    const AttrSet scope = AttrSet::FromIndices(scope_attrs);
    MarginalTable t(scope);
    for (size_t i = 0; i < cells.size(); ++i) t.At(i) = cells[i];
    return MarginalConstraint{scope, std::move(t)};
  };
  std::vector<MarginalConstraint> constraints;
  constraints.push_back(
      make({0, 1, 2}, {49999.0, 1e-290, 1e-300, 1e-310, 0.25, 1e-320,
                       4.9406564584124654e-324, 0.75}));
  constraints.push_back(
      make({3, 4, 5}, {1e-280, 49998.0, 1e-305, 1.0, 1e-315, 0.5,
                       4.9406564584124654e-324, 1e-322}));

  IpfOptions options;
  options.max_iterations = 400;

  auto solve = [&](simd::Level level) {
    simd::SetLevelForTest(level);
    Arena arena;
    IpfResult r = MaxEntropyIpf(attrs, total, constraints, arena, options);
    simd::ResetLevelForTest();
    return r;
  };
  const IpfResult scalar = solve(simd::Level::kScalar);
  const IpfResult avx2 = solve(simd::Level::kAvx2);

  ASSERT_EQ(scalar.table.size(), avx2.table.size());
  ASSERT_EQ(scalar.iterations, avx2.iterations);
  int subnormal_cells = 0;
  for (size_t i = 0; i < scalar.table.size(); ++i) {
    const uint64_t bits = BitsOf(scalar.table.At(i));
    if (bits != 0 && bits < (uint64_t{1} << 52)) ++subnormal_cells;
    EXPECT_EQ(bits, BitsOf(avx2.table.At(i))) << "cell " << i;
  }
  // The instance only exercises the tiny-cell path if cells actually went
  // subnormal; guard the fixture against rotting into a trivial check.
  EXPECT_GT(subnormal_cells, 0);
}

}  // namespace
}  // namespace priview
