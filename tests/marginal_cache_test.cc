// MarginalCache unit tests plus the QueryEngine integration: cache-through
// serving, roll-up answers from cached supersets, LRU eviction, batch
// answering, and a concurrent thrash for the tsan preset.
#include "core/marginal_cache.h"

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "core/synopsis.h"
#include "design/covering_design.h"
#include "table/attr_set.h"
#include "table/dataset.h"

namespace priview {
namespace {

MarginalTable TableOver(AttrSet attrs, double base) {
  std::vector<double> cells(size_t{1} << attrs.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    cells[i] = base + static_cast<double>(i);
  }
  return MarginalTable(attrs, std::move(cells));
}

TEST(MarginalCacheTest, ExactHitReturnsStoredTable) {
  MarginalCache cache(4);
  const AttrSet scope = AttrSet::FromIndices({1, 3});
  cache.Insert(scope, TableOver(scope, 10.0));
  const auto hit = cache.Lookup(scope);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->attrs().mask(), scope.mask());
  EXPECT_EQ(hit->cells(), TableOver(scope, 10.0).cells());
  EXPECT_EQ(cache.stats().exact_hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(MarginalCacheTest, MissOnEmptyAndUnrelatedScopes) {
  MarginalCache cache(4);
  EXPECT_FALSE(cache.Lookup(AttrSet::FromIndices({0})).has_value());
  cache.Insert(AttrSet::FromIndices({1, 2}), TableOver(AttrSet::FromIndices({1, 2}), 0.0));
  EXPECT_FALSE(cache.Lookup(AttrSet::FromIndices({3})).has_value());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(MarginalCacheTest, RollupHitMatchesExplicitRollUp) {
  MarginalCache cache(4);
  const AttrSet super = AttrSet::FromIndices({0, 2, 5});
  const MarginalTable table = TableOver(super, 3.0);
  cache.Insert(super, table);
  const AttrSet sub = AttrSet::FromIndices({0, 5});
  const auto hit = cache.Lookup(sub);
  ASSERT_TRUE(hit.has_value());
  const MarginalTable expected = cube::RollUp(table, sub);
  EXPECT_EQ(hit->attrs().mask(), sub.mask());
  EXPECT_EQ(hit->cells(), expected.cells());
  EXPECT_EQ(cache.stats().rollup_hits, 1u);
}

TEST(MarginalCacheTest, SmallestSupersetIsPreferred) {
  MarginalCache cache(4);
  const AttrSet big = AttrSet::FromIndices({0, 1, 2, 3});
  const AttrSet small = AttrSet::FromIndices({0, 1});
  cache.Insert(big, TableOver(big, 100.0));
  cache.Insert(small, TableOver(small, 7.0));
  const auto hit = cache.Lookup(AttrSet::FromIndices({0}));
  ASSERT_TRUE(hit.has_value());
  // Rolled up from the 2-way table, not the 4-way one.
  EXPECT_EQ(hit->cells(),
            cube::RollUp(TableOver(small, 7.0), AttrSet::FromIndices({0})).cells());
}

TEST(MarginalCacheTest, EvictsLeastRecentlyUsed) {
  MarginalCache cache(2);
  const AttrSet a = AttrSet::FromIndices({0});
  const AttrSet b = AttrSet::FromIndices({1});
  const AttrSet c = AttrSet::FromIndices({2});
  cache.Insert(a, TableOver(a, 1.0));
  cache.Insert(b, TableOver(b, 2.0));
  ASSERT_TRUE(cache.Lookup(a).has_value());  // refresh a; b is now LRU
  cache.Insert(c, TableOver(c, 3.0));        // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Lookup(a).has_value());
  EXPECT_TRUE(cache.Lookup(c).has_value());
  EXPECT_FALSE(cache.Lookup(b).has_value());
}

TEST(MarginalCacheTest, ZeroCapacityDisablesInsertion) {
  MarginalCache cache(0);
  const AttrSet a = AttrSet::FromIndices({0});
  cache.Insert(a, TableOver(a, 1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(a).has_value());
}

TEST(MarginalCacheTest, HitRate) {
  MarginalCache cache(4);
  EXPECT_EQ(cache.stats().HitRate(), 0.0);
  const AttrSet a = AttrSet::FromIndices({0, 1});
  cache.Insert(a, TableOver(a, 1.0));
  (void)cache.Lookup(a);                          // exact hit
  (void)cache.Lookup(AttrSet::FromIndices({1}));  // rollup hit
  (void)cache.Lookup(AttrSet::FromIndices({5}));  // miss
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 2.0 / 3.0);
  EXPECT_EQ(cache.stats().lookups(), 3u);
}

// ---------------------------------------------------------------------------
// QueryEngine integration.

PriViewSynopsis MakeTestSynopsis() {
  Rng data_rng(77);
  Dataset data(10);
  for (int i = 0; i < 4000; ++i) data.Add(data_rng.NextUint64() & 0x3FFu);
  Rng design_rng(78);
  const CoveringDesign design = MakeCoveringDesign(10, 5, 2, &design_rng);
  PriViewOptions options;
  options.add_noise = false;  // deterministic answers for exact compares
  Rng build_rng(79);
  return PriViewSynopsis::Build(data, design.blocks, options, &build_rng);
}

class QueryCacheTest : public ::testing::Test {
 protected:
  ~QueryCacheTest() override { parallel::SetThreadCount(0); }

  const PriViewSynopsis synopsis_ = MakeTestSynopsis();
};

TEST_F(QueryCacheTest, RepeatedQueryHitsCache) {
  const QueryEngine engine(&synopsis_);
  const AttrSet target = AttrSet::FromIndices({0, 3, 7});
  const auto first = engine.TryMarginal(target);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine.cache_stats().misses, 1u);
  const auto second = engine.TryMarginal(target);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.cache_stats().exact_hits, 1u);
  EXPECT_EQ(first.value().cells(), second.value().cells());
}

TEST_F(QueryCacheTest, SubMarginalServedByRollup) {
  const QueryEngine engine(&synopsis_);
  const AttrSet super = AttrSet::FromIndices({1, 4, 6, 8});
  ASSERT_TRUE(engine.TryMarginal(super).ok());
  const AttrSet sub = AttrSet::FromIndices({1, 6});
  const auto answer = engine.TryMarginal(sub);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(engine.cache_stats().rollup_hits, 1u);
  // The roll-up of the cached superset, not a fresh solve.
  const auto direct = synopsis_.TryQuery(super);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(answer.value().cells(), cube::RollUp(direct.value(), sub).cells());
}

TEST_F(QueryCacheTest, DisabledCacheStillAnswers) {
  QueryEngineOptions options;
  options.cache_capacity = 0;
  const QueryEngine cached(&synopsis_);
  const QueryEngine uncached(&synopsis_, options);
  const AttrSet target = AttrSet::FromIndices({2, 5});
  const auto a = cached.TryMarginal(target);
  const auto b = uncached.TryMarginal(target);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().cells(), b.value().cells());
  EXPECT_EQ(uncached.cache_stats().lookups(), 0u);
}

TEST_F(QueryCacheTest, InvalidTargetIsStatusNotAbort) {
  const QueryEngine engine(&synopsis_);
  const auto bad = engine.TryMarginal(AttrSet::FromIndices({63}));
  EXPECT_FALSE(bad.ok());
}

TEST_F(QueryCacheTest, AnswerBatchMatchesIndividualQueries) {
  const QueryEngine batch_engine(&synopsis_);
  const QueryEngine single_engine(&synopsis_);
  const std::vector<AttrSet> targets = {
      AttrSet::FromIndices({0, 1}),     AttrSet::FromIndices({2, 3, 4}),
      AttrSet::FromIndices({0, 1}),     // duplicate
      AttrSet::FromIndices({63}),       // invalid slot
      AttrSet::FromIndices({5, 8, 9}),
  };
  parallel::SetThreadCount(4);
  const auto answers = batch_engine.AnswerBatch(targets);
  ASSERT_EQ(answers.size(), targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    const auto individual = single_engine.TryMarginal(targets[i]);
    ASSERT_EQ(answers[i].ok(), individual.ok()) << "slot " << i;
    if (answers[i].ok()) {
      EXPECT_EQ(answers[i].value().cells(), individual.value().cells())
          << "slot " << i;
    }
  }
  // The duplicate must not have been solved twice.
  EXPECT_EQ(batch_engine.cache_stats().insertions, 3u);
}

TEST_F(QueryCacheTest, BatchThenSingleHitsCache) {
  const QueryEngine engine(&synopsis_);
  const AttrSet target = AttrSet::FromIndices({3, 6, 9});
  (void)engine.AnswerBatch({target});
  const auto again = engine.TryMarginal(target);
  ASSERT_TRUE(again.ok());
  EXPECT_GE(engine.cache_stats().exact_hits, 1u);
}

TEST_F(QueryCacheTest, ConcurrentMixedQueriesAreSafe) {
  // Exercises the cache mutex and the read-only engine paths under real
  // concurrency; run under -DPRIVIEW_SANITIZE=thread to verify.
  const QueryEngine engine(&synopsis_);
  const std::vector<AttrSet> targets = {
      AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({3, 4}),
      AttrSet::FromIndices({5, 6, 7}), AttrSet::FromIndices({1, 2}),
      AttrSet::FromIndices({8, 9}),
  };
  std::vector<std::vector<double>> reference;
  for (const AttrSet& target : targets) {
    const auto answer = engine.TryMarginal(target);
    ASSERT_TRUE(answer.ok());
    reference.push_back(answer.value().cells());
  }
  std::vector<std::thread> threads;
  std::atomic<bool> mismatch{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 8; ++round) {
        if ((round + t) % 2 == 0) {
          const auto answers = engine.AnswerBatch(targets);
          for (size_t i = 0; i < targets.size(); ++i) {
            if (!answers[i].ok() ||
                answers[i].value().cells() != reference[i]) {
              mismatch = true;
            }
          }
        } else {
          const size_t i = static_cast<size_t>((round + t) % targets.size());
          const auto answer = engine.TryMarginal(targets[i]);
          if (!answer.ok() || answer.value().cells() != reference[i]) {
            mismatch = true;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_GT(engine.cache_stats().HitRate(), 0.5);
}

}  // namespace
}  // namespace priview
