#include "table/marginal_table.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace priview {
namespace {

TEST(MarginalTableTest, SizeAndFill) {
  const MarginalTable t(AttrSet::FromIndices({0, 3, 7}), 2.5);
  EXPECT_EQ(t.arity(), 3);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_DOUBLE_EQ(t.Total(), 20.0);
}

TEST(MarginalTableTest, CellIndexMaskFor) {
  // attrs {1,4,6}: cell-index bits 0,1,2 map to attrs 1,4,6.
  const MarginalTable t(AttrSet::FromIndices({1, 4, 6}));
  EXPECT_EQ(t.CellIndexMaskFor(AttrSet::FromIndices({1})), 0b001u);
  EXPECT_EQ(t.CellIndexMaskFor(AttrSet::FromIndices({4})), 0b010u);
  EXPECT_EQ(t.CellIndexMaskFor(AttrSet::FromIndices({6})), 0b100u);
  EXPECT_EQ(t.CellIndexMaskFor(AttrSet::FromIndices({1, 6})), 0b101u);
  EXPECT_EQ(t.CellIndexMaskFor(AttrSet()), 0u);
}

TEST(MarginalTableTest, ProjectionSumsCorrectCells) {
  // Table over {0,1}: cells [c00, c10, c01, c11] (bit0 = attr0).
  MarginalTable t(AttrSet::FromIndices({0, 1}),
                  std::vector<double>{1.0, 2.0, 3.0, 4.0});
  const MarginalTable p0 = t.Project(AttrSet::FromIndices({0}));
  EXPECT_DOUBLE_EQ(p0.At(0), 4.0);  // attr0 = 0: cells 0 and 2
  EXPECT_DOUBLE_EQ(p0.At(1), 6.0);  // attr0 = 1: cells 1 and 3
  const MarginalTable p1 = t.Project(AttrSet::FromIndices({1}));
  EXPECT_DOUBLE_EQ(p1.At(0), 3.0);
  EXPECT_DOUBLE_EQ(p1.At(1), 7.0);
  const MarginalTable pe = t.Project(AttrSet());
  EXPECT_DOUBLE_EQ(pe.At(0), 10.0);
}

TEST(MarginalTableTest, ProjectionIsConsistentWithComposition) {
  // Projecting A->B->C must equal projecting A->C directly.
  Rng rng(5);
  MarginalTable t(AttrSet::FromIndices({2, 3, 5, 9}));
  for (double& c : t.cells()) c = rng.UniformDouble() * 10;
  const AttrSet b = AttrSet::FromIndices({2, 5, 9});
  const AttrSet c = AttrSet::FromIndices({5, 9});
  const MarginalTable direct = t.Project(c);
  const MarginalTable via = t.Project(b).Project(c);
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.At(i), via.At(i), 1e-12);
  }
}

TEST(MarginalTableTest, ProjectionPreservesTotal) {
  Rng rng(6);
  MarginalTable t(AttrSet::FromIndices({0, 1, 4, 6, 7}));
  for (double& c : t.cells()) c = rng.Normal();
  EXPECT_NEAR(t.Project(AttrSet::FromIndices({1, 6})).Total(), t.Total(),
              1e-10);
}

TEST(MarginalTableTest, NormalizedSumsToOne) {
  MarginalTable t(AttrSet::FromIndices({0, 1}),
                  std::vector<double>{1.0, 1.0, 2.0, 0.0});
  const std::vector<double> p = t.Normalized();
  EXPECT_DOUBLE_EQ(p[0] + p[1] + p[2] + p[3], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
}

TEST(MarginalTableTest, NormalizedOfZeroTableIsUniform) {
  const MarginalTable t(AttrSet::FromIndices({0, 1}));
  const std::vector<double> p = t.Normalized();
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(MarginalTableTest, Distances) {
  MarginalTable a(AttrSet::FromIndices({0}), std::vector<double>{1.0, 2.0});
  MarginalTable b(AttrSet::FromIndices({0}), std::vector<double>{4.0, 6.0});
  EXPECT_DOUBLE_EQ(a.L2DistanceTo(b), 5.0);
  EXPECT_DOUBLE_EQ(a.LinfDistanceTo(b), 4.0);
  EXPECT_DOUBLE_EQ(a.MinCell(), 1.0);
}

TEST(MarginalTableTest, ScaleAndAddConstant) {
  MarginalTable t(AttrSet::FromIndices({0}), std::vector<double>{1.0, 3.0});
  t.Scale(2.0);
  t.AddConstant(1.0);
  EXPECT_DOUBLE_EQ(t.At(0), 3.0);
  EXPECT_DOUBLE_EQ(t.At(1), 7.0);
}

}  // namespace
}  // namespace priview
