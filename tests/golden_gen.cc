// Emits solver_golden.inc: the bit-exact solver outputs that
// solver_golden_test pins. The checked-in fixtures were captured from the
// pre-arena, pre-SIMD heap-backed scalar solvers — they define the
// determinism contract, so regenerating them from a ported solver would
// quietly bless whatever that solver produces and the pin would pin
// nothing. Only rerun this tool when a change is *supposed* to alter
// solver output (a semantic change to the algorithms, not a port), and
// say so loudly in the commit that lands the new fixtures.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/reconstruct.h"
#include "opt/ipf.h"
#include "opt/least_norm.h"
#include "opt/max_ent_dual.h"
#include "opt/simplex.h"
#include "solver_golden_instances.h"

namespace priview {
namespace {

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void EmitArray(const char* name, const std::vector<double>& values) {
  std::printf("inline constexpr uint64_t %s[] = {\n", name);
  for (size_t i = 0; i < values.size(); ++i) {
    std::printf("    0x%016" PRIx64 "ull,%s", BitsOf(values[i]),
                (i % 3 == 2 || i + 1 == values.size()) ? "\n" : "");
  }
  std::printf("};\n");
}

void Run() {
  {
    const auto views = golden::IpfViews();
    const auto cs = golden::MakeConstraints(views, golden::IpfTarget());
    const IpfResult r = MaxEntropyIpf(golden::IpfTarget(), golden::kIpfTotal, cs);
    EmitArray("kIpfCellBits", r.table.cells());
    std::printf("inline constexpr int kIpfIterations = %d;\n", r.iterations);
    std::printf("inline constexpr bool kIpfConverged = %s;\n",
                r.converged ? "true" : "false");
    std::printf("inline constexpr uint64_t kIpfResidualBits = 0x%016" PRIx64
                "ull;\n",
                BitsOf(r.final_residual));
  }
  {
    const auto views = golden::DualViews();
    const auto cs = golden::MakeConstraints(views, golden::DualTarget());
    const MaxEntDualResult r =
        MaxEntropyDual(golden::DualTarget(), golden::kDualTotal, cs);
    EmitArray("kDualCellBits", r.table.cells());
    std::printf("inline constexpr int kDualIterations = %d;\n", r.iterations);
    std::printf("inline constexpr bool kDualConverged = %s;\n",
                r.converged ? "true" : "false");
    std::printf("inline constexpr uint64_t kDualResidualBits = 0x%016" PRIx64
                "ull;\n",
                BitsOf(r.final_residual));
  }
  {
    const auto views = golden::LeastNormViews();
    const auto cs = golden::MakeConstraints(views, golden::LeastNormTarget());
    const LeastNormResult r =
        LeastNormSolve(golden::LeastNormTarget(), golden::kLeastNormTotal, cs);
    EmitArray("kLeastNormCellBits", r.table.cells());
    std::printf("inline constexpr int kLeastNormIterations = %d;\n",
                r.iterations);
    std::printf("inline constexpr bool kLeastNormConverged = %s;\n",
                r.converged ? "true" : "false");
  }
  {
    const LpProblem lp = golden::SimplexProblem();
    const LpResult r = SolveLp(lp);
    std::printf("inline constexpr int kSimplexStatus = %d;\n",
                static_cast<int>(r.status));
    std::printf("inline constexpr uint64_t kSimplexObjectiveBits = 0x%016" PRIx64
                "ull;\n",
                BitsOf(r.objective_value));
    EmitArray("kSimplexXBits", r.x);
  }
  {
    const auto views = golden::ReconstructViews();
    const MarginalTable cme =
        ReconstructMarginal(views, golden::ReconstructTarget(),
                            golden::kReconstructTotal,
                            ReconstructionMethod::kMaxEntropy);
    EmitArray("kReconstructCmeBits", cme.cells());
    const MarginalTable cln =
        ReconstructMarginal(views, golden::ReconstructTarget(),
                            golden::kReconstructTotal,
                            ReconstructionMethod::kLeastNorm);
    EmitArray("kReconstructClnBits", cln.cells());
    const MarginalTable lp =
        ReconstructMarginal(views, golden::ReconstructTarget(),
                            golden::kReconstructTotal,
                            ReconstructionMethod::kLinearProgram);
    EmitArray("kReconstructLpBits", lp.cells());
  }
}

}  // namespace
}  // namespace priview

int main() {
  priview::Run();
  return 0;
}
