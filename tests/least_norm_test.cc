#include "opt/least_norm.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace priview {
namespace {

MarginalConstraint Make(std::vector<int> attrs, std::vector<double> cells) {
  const AttrSet scope = AttrSet::FromIndices(attrs);
  return {scope, MarginalTable(scope, std::move(cells))};
}

TEST(LeastNormTest, NoConstraintsIsUniform) {
  // With only the total fixed, the min-norm nonneg table is uniform.
  const LeastNormResult r =
      LeastNormSolve(AttrSet::FromIndices({0, 1}), 100.0,
                     std::span<const MarginalConstraint>{});
  EXPECT_TRUE(r.converged);
  for (size_t i = 0; i < r.table.size(); ++i) {
    EXPECT_NEAR(r.table.At(i), 25.0, 1e-5);
  }
}

TEST(LeastNormTest, SatisfiesMarginalConstraints) {
  std::vector<MarginalConstraint> cs;
  cs.push_back(Make({0}, {30.0, 70.0}));
  const LeastNormResult r =
      LeastNormSolve(AttrSet::FromIndices({0, 1}), 100.0, cs);
  EXPECT_TRUE(r.converged);
  const MarginalTable p = r.table.Project(AttrSet::FromIndices({0}));
  EXPECT_NEAR(p.At(0), 30.0, 1e-4);
  EXPECT_NEAR(p.At(1), 70.0, 1e-4);
  // Min-norm completion spreads each slice uniformly (bit 0 = attr 0, so
  // the a0=0 slice is cells 0b00 and 0b10).
  EXPECT_NEAR(r.table.At(0b00), 15.0, 1e-4);
  EXPECT_NEAR(r.table.At(0b10), 15.0, 1e-4);
  EXPECT_NEAR(r.table.At(0b01), 35.0, 1e-4);
  EXPECT_NEAR(r.table.At(0b11), 35.0, 1e-4);
}

TEST(LeastNormTest, AllCellsNonNegative) {
  Rng rng(3);
  // Random (consistent) constraints from a joint with some near-zero cells.
  MarginalTable joint(AttrSet::Full(5));
  for (double& c : joint.cells()) c = rng.UniformDouble() < 0.3
                                          ? 0.0
                                          : rng.UniformDouble() * 10;
  std::vector<MarginalConstraint> cs;
  for (const auto& scope :
       {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4})}) {
    cs.push_back({scope, joint.Project(scope)});
  }
  const LeastNormResult r =
      LeastNormSolve(joint.attrs(), joint.Total(), cs);
  EXPECT_GE(r.table.MinCell(), -1e-9);
}

TEST(LeastNormTest, MatchesClosedFormMinNorm) {
  // Unconstrained-by-nonnegativity case: the min-norm solution of
  // {sum = 100} over 4 cells is (25, 25, 25, 25); with a one-way marginal
  // (60, 40) it is (30, 30, 20, 20) in the (a0-fast) layout.
  std::vector<MarginalConstraint> cs;
  cs.push_back(Make({1}, {60.0, 40.0}));
  const LeastNormResult r =
      LeastNormSolve(AttrSet::FromIndices({0, 1}), 100.0, cs);
  EXPECT_NEAR(r.table.At(0b00), 30.0, 1e-4);
  EXPECT_NEAR(r.table.At(0b01), 30.0, 1e-4);
  EXPECT_NEAR(r.table.At(0b10), 20.0, 1e-4);
  EXPECT_NEAR(r.table.At(0b11), 20.0, 1e-4);
}

TEST(LeastNormTest, ActiveNonnegativityProjection) {
  // Target pushes one slice negative in the unconstrained solution; with
  // the orthant active, mass must be redistributed, staying feasible.
  std::vector<MarginalConstraint> cs;
  cs.push_back(Make({0}, {0.0, 100.0}));
  cs.push_back(Make({1}, {100.0, 0.0}));
  const LeastNormResult r =
      LeastNormSolve(AttrSet::FromIndices({0, 1}), 100.0, cs);
  EXPECT_GE(r.table.MinCell(), -1e-9);
  // Both constraints are simultaneously satisfiable only by putting all
  // mass at (a0=1, a1=0) = cell 0b01.
  EXPECT_NEAR(r.table.At(0b01), 100.0, 1e-3);
}

}  // namespace
}  // namespace priview
