#include "design/gf2_cover.h"

#include <set>

#include <gtest/gtest.h>

#include "common/bits.h"

namespace priview {
namespace {

TEST(Gf2SubspaceTest, CountsMatchGaussianBinomials) {
  // Number of s-dim subspaces of GF(2)^m = Gaussian binomial [m s]_2.
  EXPECT_EQ(AllGf2Subspaces(4, 2).size(), 35u);
  EXPECT_EQ(AllGf2Subspaces(4, 3).size(), 15u);
  EXPECT_EQ(AllGf2Subspaces(5, 3).size(), 155u);
  EXPECT_EQ(AllGf2Subspaces(6, 3).size(), 1395u);
}

TEST(Gf2SubspaceTest, EachSubspaceIsClosedUnderXor) {
  for (const auto& subspace : AllGf2Subspaces(4, 2)) {
    ASSERT_EQ(subspace.size(), 4u);
    const std::set<uint32_t> elements(subspace.begin(), subspace.end());
    EXPECT_TRUE(elements.count(0));
    for (uint32_t a : elements) {
      for (uint32_t b : elements) {
        EXPECT_TRUE(elements.count(a ^ b));
      }
    }
  }
}

TEST(Gf2SubspaceTest, SpreadOfGf2Dim6Found) {
  // GF(2)^6 admits a perfect 3-spread: 9 subspaces partitioning the 63
  // nonzero vectors. The greedy cover must find exactly 9.
  Rng rng(1);
  const std::vector<int> cover = SubspaceCover(6, 3, &rng);
  EXPECT_EQ(cover.size(), 9u);
}

TEST(Gf2SubspaceTest, CoverOfGf2Dim5IsSmall) {
  // 31 nonzero vectors, 7 per subspace: lower bound 5. The La Jolla value
  // C(32,8,2) = 20 = 5 subspaces x 4 cosets implies a 5-cover exists.
  Rng rng(2);
  const std::vector<int> cover = SubspaceCover(5, 3, &rng);
  EXPECT_LE(cover.size(), 6u);
  EXPECT_GE(cover.size(), 5u);
}

TEST(Gf2CoverDesignTest, D64MatchesPaper) {
  Rng rng(3);
  const auto design = SubspaceCoverDesign(64, 8, &rng);
  ASSERT_TRUE(design.has_value());
  EXPECT_EQ(design->w(), 72);  // the paper's C2(8,72)
  EXPECT_TRUE(VerifyCovering(*design));
}

TEST(Gf2CoverDesignTest, D32NearPaper) {
  Rng rng(4);
  const auto design = SubspaceCoverDesign(32, 8, &rng);
  ASSERT_TRUE(design.has_value());
  EXPECT_LE(design->w(), 24);  // paper: 20; 6-subspace fallback gives 24
  EXPECT_TRUE(VerifyCovering(*design));
}

TEST(Gf2CoverDesignTest, D16GivesSixViews) {
  // The §4.1 motivating example: six 8-way views covering all pairs of 16.
  Rng rng(5);
  const auto design = SubspaceCoverDesign(16, 8, &rng);
  ASSERT_TRUE(design.has_value());
  EXPECT_EQ(design->w(), 6);
  EXPECT_TRUE(VerifyCovering(*design));
}

TEST(Gf2CoverDesignTest, RejectsNonPowersOfTwo) {
  Rng rng(6);
  EXPECT_FALSE(SubspaceCoverDesign(45, 8, &rng).has_value());
  EXPECT_FALSE(SubspaceCoverDesign(32, 6, &rng).has_value());
  EXPECT_FALSE(SubspaceCoverDesign(8, 8, &rng).has_value());
}

TEST(Gf2CoverDesignTest, MakeCoveringDesignUsesAlgebraicPath) {
  Rng rng(7);
  const CoveringDesign design = MakeCoveringDesign(64, 8, 2, &rng);
  EXPECT_EQ(design.w(), 72);
}

}  // namespace
}  // namespace priview
