#include "opt/ipf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace priview {
namespace {

MarginalConstraint Make(std::vector<int> attrs, std::vector<double> cells) {
  const AttrSet scope = AttrSet::FromIndices(attrs);
  return {scope, MarginalTable(scope, std::move(cells))};
}

TEST(IpfTest, NoConstraintsYieldsUniform) {
  const IpfResult r =
      MaxEntropyIpf(AttrSet::FromIndices({0, 1}), 100.0,
                    std::span<const MarginalConstraint>{});
  EXPECT_TRUE(r.converged);
  for (size_t i = 0; i < r.table.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.table.At(i), 25.0);
  }
}

TEST(IpfTest, SingleMarginalConstraintGivesProductWithUniform) {
  // Constrain attr 0's marginal to (30, 70); attr 1 stays uniform.
  std::vector<MarginalConstraint> cs;
  cs.push_back(Make({0}, {30.0, 70.0}));
  const IpfResult r =
      MaxEntropyIpf(AttrSet::FromIndices({0, 1}), 100.0, std::move(cs));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.table.At(0b00), 15.0, 1e-6);
  EXPECT_NEAR(r.table.At(0b01), 35.0, 1e-6);
  EXPECT_NEAR(r.table.At(0b10), 15.0, 1e-6);
  EXPECT_NEAR(r.table.At(0b11), 35.0, 1e-6);
}

TEST(IpfTest, TwoSingletonConstraintsGiveIndependentProduct) {
  // Max entropy with both 1-way marginals fixed = independence.
  std::vector<MarginalConstraint> cs;
  cs.push_back(Make({0}, {20.0, 80.0}));
  cs.push_back(Make({1}, {50.0, 50.0}));
  const IpfResult r =
      MaxEntropyIpf(AttrSet::FromIndices({0, 1}), 100.0, std::move(cs));
  EXPECT_TRUE(r.converged);
  // Cell-index bit 0 is attribute 0: At(0b01) is (a0=1, a1=0).
  EXPECT_NEAR(r.table.At(0b00), 10.0, 1e-6);  // 0.2 * 0.5 * 100
  EXPECT_NEAR(r.table.At(0b01), 40.0, 1e-6);  // 0.8 * 0.5 * 100
  EXPECT_NEAR(r.table.At(0b10), 10.0, 1e-6);
  EXPECT_NEAR(r.table.At(0b11), 40.0, 1e-6);
}

TEST(IpfTest, SatisfiesOverlappingConstraints) {
  // Scopes {0,1} and {1,2} over a 3-attribute table (classic IPF clique
  // setting). Build consistent targets from a known joint.
  Rng rng(11);
  MarginalTable joint(AttrSet::FromIndices({0, 1, 2}));
  for (double& c : joint.cells()) c = 1.0 + rng.UniformDouble() * 9.0;
  const double total = joint.Total();
  std::vector<MarginalConstraint> cs;
  cs.push_back({AttrSet::FromIndices({0, 1}),
                joint.Project(AttrSet::FromIndices({0, 1}))});
  cs.push_back({AttrSet::FromIndices({1, 2}),
                joint.Project(AttrSet::FromIndices({1, 2}))});
  const IpfResult r = MaxEntropyIpf(joint.attrs(), total, cs);
  EXPECT_TRUE(r.converged);
  // The solution must reproduce both marginals exactly.
  for (const auto& c : cs) {
    const MarginalTable proj = r.table.Project(c.scope);
    for (size_t a = 0; a < proj.size(); ++a) {
      EXPECT_NEAR(proj.At(a), c.target.At(a), 1e-5);
    }
  }
  // And it should match the conditional-independence closed form
  // p(x0,x1,x2) = p(x0,x1) p(x2|x1).
  const MarginalTable m01 = joint.Project(AttrSet::FromIndices({0, 1}));
  const MarginalTable m12 = joint.Project(AttrSet::FromIndices({1, 2}));
  const MarginalTable m1 = joint.Project(AttrSet::FromIndices({1}));
  for (uint64_t x = 0; x < 8; ++x) {
    const uint64_t x01 = x & 0b11;
    const uint64_t x12 = (x >> 1) & 0b11;
    const uint64_t x1 = (x >> 1) & 0b1;
    const double expected = m01.At(x01) * m12.At(x12) / m1.At(x1);
    EXPECT_NEAR(r.table.At(x), expected, 1e-5);
  }
}

TEST(IpfTest, NegativeTargetsClampedToZero) {
  std::vector<MarginalConstraint> cs;
  cs.push_back(Make({0}, {-10.0, 110.0}));
  const IpfResult r =
      MaxEntropyIpf(AttrSet::FromIndices({0, 1}), 100.0, std::move(cs));
  EXPECT_TRUE(r.converged);
  // attr0 = 0 slice forced to 0 (clamped target), everything on attr0 = 1.
  EXPECT_NEAR(r.table.At(0b00) + r.table.At(0b10), 0.0, 1e-9);
  EXPECT_NEAR(r.table.Total(), 100.0, 1e-6);
}

TEST(IpfTest, TargetsRescaledToCommonTotal) {
  // Target sums to 50 but declared total is 100: rescaled up.
  std::vector<MarginalConstraint> cs;
  cs.push_back(Make({0}, {10.0, 40.0}));
  const IpfResult r =
      MaxEntropyIpf(AttrSet::FromIndices({0, 1}), 100.0, std::move(cs));
  const MarginalTable p = r.table.Project(AttrSet::FromIndices({0}));
  EXPECT_NEAR(p.At(0), 20.0, 1e-6);
  EXPECT_NEAR(p.At(1), 80.0, 1e-6);
}

TEST(IpfTest, HandlesZeroMassSliceRefill) {
  // First constraint empties attr0=0; the second forces mass back into a
  // sub-slice of it. IPF's uniform refill must cope without NaNs.
  std::vector<MarginalConstraint> cs;
  cs.push_back(Make({0}, {0.0, 100.0}));
  cs.push_back(Make({1}, {50.0, 50.0}));
  const IpfResult r =
      MaxEntropyIpf(AttrSet::FromIndices({0, 1}), 100.0, std::move(cs));
  for (size_t i = 0; i < r.table.size(); ++i) {
    EXPECT_FALSE(std::isnan(r.table.At(i)));
  }
  EXPECT_NEAR(r.table.Total(), 100.0, 1e-6);
}

TEST(IpfTest, BoundedIterationsOnInconsistentConstraints) {
  // Deliberately inconsistent singleton targets (after rescaling they still
  // conflict on the joint): IPF must stop at max_iterations, not loop.
  std::vector<MarginalConstraint> cs;
  cs.push_back(Make({0}, {100.0, 0.0}));
  cs.push_back(Make({0, 1}, {0.0, 50.0, 0.0, 50.0}));
  IpfOptions options;
  options.max_iterations = 50;
  const IpfResult r = MaxEntropyIpf(AttrSet::FromIndices({0, 1}), 100.0,
                                    std::move(cs), options);
  EXPECT_LE(r.iterations, 50);
  for (size_t i = 0; i < r.table.size(); ++i) {
    EXPECT_FALSE(std::isnan(r.table.At(i)));
  }
}

TEST(IpfTest, LargeScopeConverges) {
  // 8-attribute table with three overlapping 4-way constraints from a
  // random joint: converges and satisfies all of them.
  Rng rng(13);
  MarginalTable joint(AttrSet::Full(8));
  for (double& c : joint.cells()) c = rng.UniformDouble() * 4.0;
  std::vector<MarginalConstraint> cs;
  for (const auto& scope :
       {AttrSet::FromIndices({0, 1, 2, 3}), AttrSet::FromIndices({2, 3, 4, 5}),
        AttrSet::FromIndices({4, 5, 6, 7})}) {
    cs.push_back({scope, joint.Project(scope)});
  }
  const IpfResult r = MaxEntropyIpf(joint.attrs(), joint.Total(), cs);
  EXPECT_TRUE(r.converged);
  for (const auto& c : cs) {
    const MarginalTable proj = r.table.Project(c.scope);
    for (size_t a = 0; a < proj.size(); ++a) {
      EXPECT_NEAR(proj.At(a), c.target.At(a), 1e-4);
    }
  }
}

}  // namespace
}  // namespace priview
