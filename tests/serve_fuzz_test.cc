// Frame-header fuzzer for the wire protocol: torn, oversized, zero-length
// and mid-frame-mutated byte streams against both frame readers — the
// blocking ReadFrame and the event-loop FrameAssembler. The contract under
// fuzz is total: every input terminates promptly with OK / DataLoss /
// DeadlineExceeded (or a decode-layer Status), never a hang, an abort, or
// a junk frame treated as intact. Seeded Rng throughout — a failure
// reproduces bit-for-bit from the test log's seed.
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "serve/wire_protocol.h"

namespace priview {
namespace {

using serve::FrameAssembler;

std::vector<uint8_t> FrameBytes(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  EXPECT_TRUE(serve::AppendFrame(&out, payload).ok());
  return out;
}

std::vector<uint8_t> RandomPayload(Rng* rng, size_t max_len) {
  std::vector<uint8_t> payload(rng->UniformInt(max_len + 1));
  for (uint8_t& b : payload) b = uint8_t(rng->UniformInt(256));
  return payload;
}

// Feeds `stream` to an assembler in random-sized chunks (the kernel never
// promises frame-aligned reads) and returns every completed frame, or the
// first non-OK status.
Status IngestInChunks(Rng* rng, const std::vector<uint8_t>& stream,
                      FrameAssembler* assembler,
                      std::vector<std::vector<uint8_t>>* frames) {
  size_t pos = 0;
  while (pos < stream.size()) {
    const size_t chunk =
        1 + rng->UniformInt(std::min<size_t>(stream.size() - pos, 4096));
    const Status st = assembler->Ingest(stream.data() + pos, chunk);
    if (!st.ok()) return st;
    pos += chunk;
    while (assembler->HasFrame()) frames->push_back(assembler->PopFrame());
  }
  return Status::OK();
}

TEST(FrameFuzzTest, AssemblerReassemblesValidStreamsAtEveryChunking) {
  Rng rng(20260809);
  for (int round = 0; round < 64; ++round) {
    std::vector<std::vector<uint8_t>> sent;
    std::vector<uint8_t> stream;
    const int n = 1 + int(rng.UniformInt(8));
    for (int i = 0; i < n; ++i) {
      // Zero-length payloads are legal frames and the classic off-by-one
      // trap (a header that completes exactly at a chunk boundary).
      sent.push_back(RandomPayload(&rng, round % 4 == 0 ? 0 : 512));
      const std::vector<uint8_t> framed = FrameBytes(sent.back());
      stream.insert(stream.end(), framed.begin(), framed.end());
    }
    FrameAssembler assembler;
    std::vector<std::vector<uint8_t>> got;
    ASSERT_TRUE(IngestInChunks(&rng, stream, &assembler, &got).ok());
    ASSERT_EQ(got.size(), sent.size()) << "round " << round;
    for (size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got[i], sent[i]) << "round " << round << " frame " << i;
    }
    EXPECT_FALSE(assembler.mid_frame());
    EXPECT_FALSE(assembler.poisoned());
  }
}

TEST(FrameFuzzTest, TruncatedStreamIsMidFrameNeverAFrame) {
  Rng rng(7);
  for (int round = 0; round < 128; ++round) {
    const std::vector<uint8_t> payload = RandomPayload(&rng, 256);
    std::vector<uint8_t> stream = FrameBytes(payload);
    // Cut anywhere strictly inside the frame (header or payload).
    const size_t cut = 1 + rng.UniformInt(stream.size() - 1);
    stream.resize(cut);
    FrameAssembler assembler;
    std::vector<std::vector<uint8_t>> got;
    ASSERT_TRUE(IngestInChunks(&rng, stream, &assembler, &got).ok());
    EXPECT_TRUE(got.empty()) << "torn frame surfaced as complete";
    EXPECT_TRUE(assembler.mid_frame())
        << "cut at " << cut << "/" << stream.size()
        << " not flagged mid-frame (EOF here must read as a torn frame)";
  }
}

TEST(FrameFuzzTest, OversizedHeaderPoisonsPermanently) {
  Rng rng(13);
  for (int round = 0; round < 64; ++round) {
    // A liar header: declared length past the cap, drawn across the whole
    // u32 range above it.
    const uint32_t declared =
        uint32_t(serve::kMaxFramePayload + 1 +
                 rng.UniformInt(0xFFFFFFFFu - serve::kMaxFramePayload - 1));
    std::vector<uint8_t> stream(4);
    for (int i = 0; i < 4; ++i) stream[i] = uint8_t(declared >> (8 * i));
    // Garbage after the header must not resurrect the stream.
    const std::vector<uint8_t> junk = RandomPayload(&rng, 128);
    stream.insert(stream.end(), junk.begin(), junk.end());

    FrameAssembler assembler;
    std::vector<std::vector<uint8_t>> got;
    const Status st = IngestInChunks(&rng, stream, &assembler, &got);
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
    EXPECT_TRUE(assembler.poisoned());
    EXPECT_TRUE(got.empty());
    // Poisoned is forever: even a perfectly valid frame afterwards fails.
    const std::vector<uint8_t> valid = FrameBytes({1, 2, 3});
    EXPECT_EQ(assembler.Ingest(valid.data(), valid.size()).code(),
              StatusCode::kDataLoss);
    EXPECT_FALSE(assembler.HasFrame());
  }
}

TEST(FrameFuzzTest, MutatedFramesNeverCrashOrHangTheAssembler) {
  Rng rng(101);
  for (int round = 0; round < 256; ++round) {
    // A few valid frames, then random byte flips anywhere — header bytes
    // included, so declared lengths lie in both directions.
    std::vector<uint8_t> stream;
    const int n = 1 + int(rng.UniformInt(4));
    for (int i = 0; i < n; ++i) {
      const std::vector<uint8_t> framed = FrameBytes(RandomPayload(&rng, 64));
      stream.insert(stream.end(), framed.begin(), framed.end());
    }
    const int flips = 1 + int(rng.UniformInt(8));
    for (int i = 0; i < flips; ++i) {
      stream[rng.UniformInt(stream.size())] ^= uint8_t(1 + rng.UniformInt(255));
    }
    FrameAssembler assembler;
    std::vector<std::vector<uint8_t>> got;
    const Status st = IngestInChunks(&rng, stream, &assembler, &got);
    // Every outcome is legal except a crash or a frame over the cap.
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kDataLoss);
    }
    for (const std::vector<uint8_t>& frame : got) {
      EXPECT_LE(frame.size(), serve::kMaxFramePayload);
    }
  }
}

TEST(FrameFuzzTest, RandomPayloadsNeverCrashTheDecoders) {
  Rng rng(4242);
  for (int round = 0; round < 512; ++round) {
    const std::vector<uint8_t> payload = RandomPayload(&rng, 96);
    // Either decodes to a value or fails with a descriptive Status; both
    // decoders must be total functions of arbitrary bytes.
    StatusOr<serve::WireRequest> request = serve::DecodeRequest(payload);
    if (!request.ok()) {
      EXPECT_FALSE(request.status().message().empty());
    }
    StatusOr<serve::WireResponse> response = serve::DecodeResponse(payload);
    if (!response.ok()) {
      EXPECT_FALSE(response.status().message().empty());
    }
  }
}

TEST(FrameFuzzTest, ReadFrameOnMutatedSocketStreamTerminatesWithStatus) {
  Rng rng(999);
  for (int round = 0; round < 32; ++round) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::vector<uint8_t> stream = FrameBytes(RandomPayload(&rng, 128));
    // Mutate a header byte in half the rounds, truncate in the other half.
    if (round % 2 == 0) {
      stream[rng.UniformInt(4)] ^= uint8_t(0x80 | rng.UniformInt(127));
    } else {
      stream.resize(1 + rng.UniformInt(stream.size() - 1));
    }
    ASSERT_EQ(::write(fds[0], stream.data(), stream.size()),
              ssize_t(stream.size()));
    ::close(fds[0]);  // EOF after the damage: a peer that died mid-frame

    std::vector<uint8_t> payload;
    bool clean_eof = false;
    // A short io deadline bounds the test: a hang here is a deadlock bug,
    // not slowness.
    const Status st = serve::ReadFrame(fds[1], &payload, &clean_eof,
                                       /*timeout_ms=*/2000);
    ::close(fds[1]);
    if (st.ok()) {
      // Only possible when the mutation produced a smaller-but-complete
      // valid frame; it must then be within the cap.
      EXPECT_LE(payload.size(), serve::kMaxFramePayload);
    } else {
      EXPECT_TRUE(st.code() == StatusCode::kDataLoss ||
                  st.code() == StatusCode::kDeadlineExceeded)
          << st.ToString();
      EXPECT_FALSE(st.message().empty());
    }
  }
}

TEST(FrameFuzzTest, ZeroLengthFrameAtChunkBoundarySurfacesImmediately) {
  // Regression shape: a zero-length frame whose header ends exactly at the
  // chunk boundary must complete without waiting for the next byte (there
  // is no next byte for a zero-length payload).
  FrameAssembler assembler;
  const uint8_t header[4] = {0, 0, 0, 0};
  ASSERT_TRUE(assembler.Ingest(header, sizeof(header)).ok());
  ASSERT_TRUE(assembler.HasFrame());
  EXPECT_TRUE(assembler.PopFrame().empty());
  EXPECT_FALSE(assembler.mid_frame());
}

}  // namespace
}  // namespace priview
