// Property tests for the Walsh–Hadamard layer: the identities that make
// the Barak et al. baseline correct.
#include <cmath>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "fourier/wht.h"
#include "table/dataset.h"

namespace priview {
namespace {

class FourierProperties : public ::testing::TestWithParam<int> {};

TEST_P(FourierProperties, ParsevalIdentity) {
  Rng rng(100 + GetParam());
  const int k = 2 + GetParam() % 5;
  std::vector<double> data(size_t{1} << k);
  for (double& v : data) v = rng.Normal();
  double time_energy = 0.0;
  for (double v : data) time_energy += v * v;
  std::vector<double> freq = data;
  Wht(&freq);
  double freq_energy = 0.0;
  for (double v : freq) freq_energy += v * v;
  // Unnormalized WHT: ||f||^2 = 2^k ||x||^2.
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(data.size()),
              1e-6 * freq_energy);
}

TEST_P(FourierProperties, TransformIsLinear) {
  Rng rng(200 + GetParam());
  const size_t n = 32;
  std::vector<double> a(n), b(n), combo(n);
  const double alpha = rng.Normal(), beta = rng.Normal();
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
    combo[i] = alpha * a[i] + beta * b[i];
  }
  Wht(&a);
  Wht(&b);
  Wht(&combo);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(combo[i], alpha * a[i] + beta * b[i], 1e-8);
  }
}

TEST_P(FourierProperties, ProjectionKeepsSubScopeCoefficients) {
  // The identity behind shared-coefficient consistency: for B ⊆ A and
  // S ⊆ B, the coefficient f_S of T_A[B] equals f_S of T_A. (Projection =
  // discarding coefficients outside B.)
  Rng rng(300 + GetParam());
  const AttrSet attrs =
      AttrSet::FromIndices(rng.SampleWithoutReplacement(12, 5));
  MarginalTable table(attrs);
  for (double& c : table.cells()) c = rng.UniformDouble() * 50;

  AttrSet sub = attrs;
  for (int a : attrs.ToIndices()) {
    if (rng.Bernoulli(0.4)) sub = sub.Minus(AttrSet::FromIndices({a}));
  }
  const MarginalTable projected = table.Project(sub);

  const std::vector<double> full_coeffs = FourierCoefficients(table);
  const std::vector<double> sub_coeffs = FourierCoefficients(projected);
  const uint64_t sub_within = table.CellIndexMaskFor(sub);
  for (uint64_t s = 0; s < sub_coeffs.size(); ++s) {
    // Local subset s of `sub` -> cell-index subset of `attrs`.
    const uint64_t in_full = DepositBits(s, sub_within);
    EXPECT_NEAR(sub_coeffs[s], full_coeffs[in_full], 1e-8)
        << "s=" << s;
  }
}

TEST_P(FourierProperties, CoefficientSensitivityIsOne) {
  // Adding one record changes every coefficient by exactly ±1 — the basis
  // of the Barak mechanism's sensitivity analysis.
  Rng rng(400 + GetParam());
  Dataset data(6);
  for (int i = 0; i < 100; ++i) data.Add(rng.NextUint64() & 0x3F);
  const AttrSet attrs = AttrSet::FromIndices({0, 2, 5});
  const std::vector<double> before =
      FourierCoefficients(data.CountMarginal(attrs));
  data.Add(rng.NextUint64() & 0x3F);
  const std::vector<double> after =
      FourierCoefficients(data.CountMarginal(attrs));
  for (size_t s = 0; s < before.size(); ++s) {
    EXPECT_NEAR(std::fabs(after[s] - before[s]), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FourierProperties, ::testing::Range(0, 10));

}  // namespace
}  // namespace priview
