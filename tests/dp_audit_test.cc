// Statistical differential-privacy audits. These cannot prove epsilon-DP,
// but they catch the classic implementation bugs (wrong sensitivity, wrong
// scale, budget double-spend) by empirically comparing output
// distributions on neighboring datasets against the e^epsilon bound.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/synopsis.h"
#include "dp/mechanisms.h"
#include "table/dataset.h"

namespace priview {
namespace {

// Empirical histogram audit for a scalar mechanism: run on D and D', bin
// the outputs, and check the ratio bound with a statistical tolerance.
void AuditScalarMechanism(double true_d, double true_d_prime,
                          double sensitivity, double epsilon, int samples,
                          uint64_t seed) {
  Rng rng(seed);
  const double bin_width = sensitivity / epsilon / 2.0;
  const int num_bins = 80;
  const double origin =
      std::min(true_d, true_d_prime) - bin_width * num_bins / 2.0;
  std::vector<double> count_d(num_bins, 0.0), count_dp(num_bins, 0.0);
  for (int i = 0; i < samples; ++i) {
    const double yd = NoisyCount(true_d, sensitivity, epsilon, &rng);
    const double ydp = NoisyCount(true_d_prime, sensitivity, epsilon, &rng);
    const int bd = static_cast<int>((yd - origin) / bin_width);
    const int bdp = static_cast<int>((ydp - origin) / bin_width);
    if (bd >= 0 && bd < num_bins) count_d[bd] += 1.0;
    if (bdp >= 0 && bdp < num_bins) count_dp[bdp] += 1.0;
  }
  // Only test well-populated bins (statistical noise dominates sparse
  // ones); allow slack for sampling error.
  const double bound = std::exp(epsilon);
  for (int b = 0; b < num_bins; ++b) {
    if (count_d[b] < 200 || count_dp[b] < 200) continue;
    const double ratio = count_d[b] / count_dp[b];
    EXPECT_LT(ratio, bound * 1.35) << "bin " << b;
    EXPECT_GT(ratio, 1.0 / (bound * 1.35)) << "bin " << b;
  }
}

TEST(DpAuditTest, LaplaceCountRespectsEpsilonBound) {
  // Neighboring counts differ by the sensitivity.
  AuditScalarMechanism(100.0, 101.0, 1.0, 1.0, 200000, 1);
}

TEST(DpAuditTest, LaplaceCountTightAtSmallEpsilon) {
  AuditScalarMechanism(100.0, 101.0, 1.0, 0.2, 200000, 2);
}

TEST(DpAuditTest, ScaledSensitivityIsAccountedFor) {
  // If the implementation forgot to scale noise by the sensitivity, this
  // audit (neighbors differing by 5 with sensitivity 5) would blow the
  // bound.
  AuditScalarMechanism(100.0, 105.0, 5.0, 1.0, 200000, 3);
}

TEST(DpAuditTest, ViewCellAuditThroughSynopsisBuild) {
  // End-to-end: one cell of one noisy view, datasets differing in one
  // record. Sensitivity of the w-view release is w, so the per-view noise
  // must be Lap(w/eps); the audit fails if Build under-noises.
  Dataset d(4);
  Dataset d_prime(4);
  for (int i = 0; i < 50; ++i) {
    d.Add(0b0011);
    d_prime.Add(0b0011);
  }
  d_prime.Add(0b0011);  // the extra record

  const std::vector<AttrSet> views = {AttrSet::FromIndices({0, 1}),
                                      AttrSet::FromIndices({2, 3})};
  const double epsilon = 1.0;
  PriViewOptions options;
  options.epsilon = epsilon;
  options.run_consistency = false;  // isolate the mechanism itself
  options.nonneg = NonNegMethod::kNone;

  const int samples = 60000;
  const double bin_width = 2.0 / epsilon;
  const int num_bins = 40;
  const double origin = 50.0 - bin_width * num_bins / 2.0;
  std::vector<double> count_d(num_bins, 0.0), count_dp(num_bins, 0.0);
  Rng rng(4);
  for (int i = 0; i < samples; ++i) {
    const PriViewSynopsis sd =
        PriViewSynopsis::Build(d, views, options, &rng);
    const PriViewSynopsis sdp =
        PriViewSynopsis::Build(d_prime, views, options, &rng);
    // Cell (1,1) of the first view holds the whole dataset.
    const int bd = static_cast<int>(
        (sd.views()[0].At(0b11) - origin) / bin_width);
    const int bdp = static_cast<int>(
        (sdp.views()[0].At(0b11) - origin) / bin_width);
    if (bd >= 0 && bd < num_bins) count_d[bd] += 1.0;
    if (bdp >= 0 && bdp < num_bins) count_dp[bdp] += 1.0;
  }
  // The per-view budget is epsilon/w = 0.5 (noise Lap(2/eps)); a single
  // view cell must therefore respect the *half* epsilon bound here, and
  // certainly the full one.
  const double bound = std::exp(epsilon);
  for (int b = 0; b < num_bins; ++b) {
    if (count_d[b] < 200 || count_dp[b] < 200) continue;
    const double ratio = count_d[b] / count_dp[b];
    EXPECT_LT(ratio, bound * 1.35) << "bin " << b;
  }
}

TEST(DpAuditTest, ExponentialMechanismBoundedInfluence) {
  // Changing one score by the sensitivity must shift selection
  // probabilities by at most e^epsilon per outcome.
  const double epsilon = 1.0;
  const std::vector<double> scores_d = {3.0, 5.0, 4.0, 1.0};
  std::vector<double> scores_dp = scores_d;
  scores_dp[1] -= 1.0;  // sensitivity-1 change
  const int samples = 200000;
  std::vector<double> count_d(4, 0.0), count_dp(4, 0.0);
  Rng rng(5);
  for (int i = 0; i < samples; ++i) {
    count_d[ExponentialMechanism(scores_d, epsilon, 1.0, &rng)] += 1.0;
    count_dp[ExponentialMechanism(scores_dp, epsilon, 1.0, &rng)] += 1.0;
  }
  for (int j = 0; j < 4; ++j) {
    if (count_d[j] < 200 || count_dp[j] < 200) continue;
    EXPECT_LT(count_d[j] / count_dp[j], std::exp(epsilon) * 1.25);
  }
}

}  // namespace
}  // namespace priview
