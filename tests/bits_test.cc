#include "common/bits.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace priview {
namespace {

// Reference PEXT for cross-checking the (possibly BMI2) fast path.
uint64_t NaiveExtract(uint64_t value, uint64_t mask) {
  uint64_t result = 0;
  int out = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if ((mask >> bit) & 1) {
      if ((value >> bit) & 1) result |= (1ULL << out);
      ++out;
    }
  }
  return result;
}

uint64_t NaiveDeposit(uint64_t value, uint64_t mask) {
  uint64_t result = 0;
  int in = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if ((mask >> bit) & 1) {
      if ((value >> in) & 1) result |= (1ULL << bit);
      ++in;
    }
  }
  return result;
}

TEST(BitsTest, PopCount) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(1), 1);
  EXPECT_EQ(PopCount(0xFF), 8);
  EXPECT_EQ(PopCount(~0ULL), 64);
}

TEST(BitsTest, ExtractKnownValues) {
  EXPECT_EQ(ExtractBits(0b101101, 0b001101), 0b111u);
  EXPECT_EQ(ExtractBits(0b101101, 0b110010), 0b100u);
  EXPECT_EQ(ExtractBits(0xFFFF, 0), 0u);
  EXPECT_EQ(ExtractBits(0, 0xFFFF), 0u);
}

TEST(BitsTest, ExtractMatchesNaiveRandom) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t value = rng.NextUint64();
    const uint64_t mask = rng.NextUint64() & rng.NextUint64();
    EXPECT_EQ(ExtractBits(value, mask), NaiveExtract(value, mask));
  }
}

TEST(BitsTest, DepositMatchesNaiveRandom) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t value = rng.NextUint64();
    const uint64_t mask = rng.NextUint64() & rng.NextUint64();
    EXPECT_EQ(DepositBits(value, mask), NaiveDeposit(value, mask));
  }
}

TEST(BitsTest, ExtractDepositRoundTrip) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t mask = rng.NextUint64();
    const uint64_t compact = rng.NextUint64() &
                             ((PopCount(mask) >= 64)
                                  ? ~0ULL
                                  : ((1ULL << PopCount(mask)) - 1));
    EXPECT_EQ(ExtractBits(DepositBits(compact, mask), mask), compact);
  }
}

TEST(BitsTest, DepositStaysInMask) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t mask = rng.NextUint64();
    const uint64_t out = DepositBits(rng.NextUint64(), mask);
    EXPECT_EQ(out & ~mask, 0u);
  }
}

TEST(BitsTest, LowestBitIndex) {
  EXPECT_EQ(LowestBitIndex(1), 0);
  EXPECT_EQ(LowestBitIndex(0b1000), 3);
  EXPECT_EQ(LowestBitIndex(1ULL << 63), 63);
}

TEST(BitsTest, NextSubsetEnumeratesAll) {
  const uint64_t mask = 0b101100;
  std::vector<uint64_t> subsets;
  uint64_t sub = 0;
  do {
    subsets.push_back(sub);
    sub = NextSubset(sub, mask);
  } while (sub != 0);
  EXPECT_EQ(subsets.size(), 8u);  // 2^popcount(mask)
  for (uint64_t s : subsets) EXPECT_EQ(s & ~mask, 0u);
}

}  // namespace
}  // namespace priview
