#include "opt/simplex.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace priview {
namespace {

TEST(SimplexTest, SimpleMaximizationViaNegation) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6  =>  (8/5, 6/5), value 14/5.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -1.0};  // minimize the negation
  lp.AddLe({1.0, 2.0}, 4.0);
  lp.AddLe({3.0, 1.0}, 6.0);
  const LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.6, 1e-9);
  EXPECT_NEAR(r.x[1], 1.2, 1e-9);
  EXPECT_NEAR(r.objective_value, -2.8, 1e-9);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x + y s.t. x + y = 10, x - y = 2  =>  (6, 4).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.AddEq({1.0, 1.0}, 10.0);
  lp.AddEq({1.0, -1.0}, 2.0);
  const LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 6.0, 1e-9);
  EXPECT_NEAR(r.x[1], 4.0, 1e-9);
}

TEST(SimplexTest, GeConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  =>  (4, 0), value 8.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {2.0, 3.0};
  lp.AddGe({1.0, 1.0}, 4.0);
  lp.AddGe({1.0, 0.0}, 1.0);
  const LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective_value, 8.0, 1e-9);
  EXPECT_NEAR(r.x[0], 4.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.AddGe({1.0}, 5.0);
  lp.AddLe({1.0}, 3.0);
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // min -x s.t. x >= 1: x can grow forever.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  lp.AddGe({1.0}, 1.0);
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // min x s.t. -x <= -3 (i.e. x >= 3).
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.AddLe({-1.0}, -3.0);
  const LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-9);
}

TEST(SimplexTest, DegenerateRedundantRows) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 2.0};
  lp.AddEq({1.0, 1.0}, 5.0);
  lp.AddEq({2.0, 2.0}, 10.0);  // duplicate of the first
  lp.AddGe({0.0, 1.0}, 1.0);
  const LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0] + r.x[1], 5.0, 1e-9);
  EXPECT_NEAR(r.objective_value, 4.0 + 2.0, 1e-9);  // x=(4,1)
}

TEST(SimplexTest, MinMaxViolationPattern) {
  // The LP-reconstruction shape: minimize tau with |x_i - t_i| <= tau and a
  // coupling constraint. t = (1, 5), coupling x0 + x1 = 8 => x = (2, 6),
  // tau = 1.
  LpProblem lp;
  lp.num_vars = 3;  // x0, x1, tau
  lp.objective = {0.0, 0.0, 1.0};
  lp.AddLe({1.0, 0.0, -1.0}, 1.0);
  lp.AddLe({-1.0, 0.0, -1.0}, -1.0);
  lp.AddLe({0.0, 1.0, -1.0}, 5.0);
  lp.AddLe({0.0, -1.0, -1.0}, -5.0);
  lp.AddEq({1.0, 1.0, 0.0}, 8.0);
  const LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective_value, 1.0, 1e-9);
  EXPECT_NEAR(r.x[0] + r.x[1], 8.0, 1e-9);
}

TEST(SimplexTest, RandomFeasibleProblemsSolveToFeasiblePoints) {
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    // Construct a guaranteed-feasible problem: pick x*, derive slack rhs.
    const int n = 5, m = 8;
    std::vector<double> x_star(n);
    for (double& v : x_star) v = rng.UniformDouble() * 5.0;
    LpProblem lp;
    lp.num_vars = n;
    lp.objective.assign(n, 0.0);
    for (int j = 0; j < n; ++j) lp.objective[j] = rng.Normal();
    for (int i = 0; i < m; ++i) {
      std::vector<double> row(n);
      double dot = 0.0;
      for (int j = 0; j < n; ++j) {
        row[j] = rng.Normal();
        dot += row[j] * x_star[j];
      }
      lp.AddLe(std::move(row), dot + rng.UniformDouble());
    }
    const LpResult r = SolveLp(lp);
    // Feasible by construction; objective may be unbounded below.
    ASSERT_NE(r.status, LpStatus::kInfeasible);
    if (r.status == LpStatus::kOptimal) {
      for (int i = 0; i < m; ++i) {
        double dot = 0.0;
        for (int j = 0; j < n; ++j) dot += lp.rows[i].coeffs[j] * r.x[j];
        EXPECT_LE(dot, lp.rows[i].rhs + 1e-6);
      }
      for (double v : r.x) EXPECT_GE(v, -1e-9);
    }
  }
}

}  // namespace
}  // namespace priview
