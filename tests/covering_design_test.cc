#include "design/covering_design.h"

#include <gtest/gtest.h>

#include "common/combinatorics.h"

namespace priview {
namespace {

TEST(CoveringDesignTest, CatalogC263OnNinePoints) {
  const auto design = CatalogCoveringDesign(9, 6, 2);
  ASSERT_TRUE(design.has_value());
  EXPECT_EQ(design->w(), 3);
  EXPECT_TRUE(VerifyCovering(*design));
  EXPECT_EQ(design->Name(), "C2(6,3)");
}

TEST(CoveringDesignTest, CatalogTrivialFullBlock) {
  const auto design = CatalogCoveringDesign(8, 8, 3);
  ASSERT_TRUE(design.has_value());
  EXPECT_EQ(design->w(), 1);
  EXPECT_TRUE(VerifyCovering(*design));
}

TEST(CoveringDesignTest, VerifyRejectsNonCover) {
  CoveringDesign bad{4, 2, 2, {AttrSet::FromIndices({0, 1})}};
  EXPECT_FALSE(VerifyCovering(bad));
}

TEST(CoveringDesignTest, VerifyRejectsWrongBlockSize) {
  CoveringDesign bad{4, 3, 1, {AttrSet::FromIndices({0, 1})}};
  EXPECT_FALSE(VerifyCovering(bad));
}

struct GreedyCase {
  int d, ell, t;
  int max_blocks;  // sanity ceiling: greedy should do at least this well
};

class GreedyCoveringTest : public ::testing::TestWithParam<GreedyCase> {};

TEST_P(GreedyCoveringTest, ProducesVerifiedCoverOfReasonableSize) {
  const GreedyCase& c = GetParam();
  Rng rng(12345);
  const CoveringDesign design = GreedyCoveringDesign(c.d, c.ell, c.t, &rng);
  EXPECT_TRUE(VerifyCovering(design));
  EXPECT_LE(design.w(), c.max_blocks)
      << "greedy cover too large for d=" << c.d << " ell=" << c.ell
      << " t=" << c.t;
  // Lower bound: C(d,t)/C(ell,t) blocks are necessary.
  const double lower = BinomialDouble(c.d, c.t) / BinomialDouble(c.ell, c.t);
  EXPECT_GE(design.w(), static_cast<int>(lower));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyCoveringTest,
    ::testing::Values(GreedyCase{9, 6, 2, 6}, GreedyCase{16, 8, 2, 8},
                      GreedyCase{32, 8, 2, 35}, GreedyCase{45, 8, 2, 70},
                      GreedyCase{64, 8, 2, 140}, GreedyCase{16, 8, 3, 35},
                      GreedyCase{32, 8, 3, 180}, GreedyCase{12, 6, 4, 80},
                      GreedyCase{10, 5, 1, 3}));

TEST(CoveringDesignTest, GreedyDeterministicForSeed) {
  Rng a(7), b(7);
  const CoveringDesign da = GreedyCoveringDesign(20, 8, 2, &a);
  const CoveringDesign db = GreedyCoveringDesign(20, 8, 2, &b);
  ASSERT_EQ(da.w(), db.w());
  for (int i = 0; i < da.w(); ++i) EXPECT_EQ(da.blocks[i], db.blocks[i]);
}

TEST(CoveringDesignTest, AverageCoverageMultiplicityAtLeastOne) {
  Rng rng(3);
  const CoveringDesign design = GreedyCoveringDesign(20, 8, 2, &rng);
  EXPECT_GE(AverageCoverageMultiplicity(design), 1.0);
}

TEST(CoveringDesignTest, MakeCoveringDesignPrefersCatalog) {
  Rng rng(4);
  const CoveringDesign design = MakeCoveringDesign(9, 6, 2, &rng);
  EXPECT_EQ(design.w(), 3);
}

}  // namespace
}  // namespace priview
