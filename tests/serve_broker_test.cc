// RequestBroker suite: admission control (bounded queue, reject-not-block
// backpressure), deterministic batch coalescing (duplicate and sub-marginal
// requests share one reconstruction), deadline shedding, and the
// deadline-pressure degradation tiers — each answer bit-compared against
// the engine or solver it claims to have come from.
//
// Determinism trick used throughout: Start() is explicit, so asks staged
// from helper threads *before* Start() land in one queue and the dispatcher
// drains them as a single batch — coalescing behaviour is then exact, not
// timing-dependent.
#include "serve/request_broker.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "serve/server_metrics.h"
#include "serve/synopsis_registry.h"

namespace priview::serve {
namespace {

using Clock = std::chrono::steady_clock;

PriViewSynopsis MakeSynopsis(uint64_t seed = 17) {
  Rng rng(seed);
  Dataset data = MakeMsnbcLike(&rng, 5000);
  PriViewOptions options;
  options.add_noise = false;
  return PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4}),
       AttrSet::FromIndices({4, 5, 6})},
      options, &rng);
}

// Stages `targets` as concurrent Asks against a not-yet-started broker,
// waits until all are queued, starts the broker, and returns the answers
// in target order. One deterministic batch.
std::vector<StatusOr<ServedAnswer>> AskAsOneBatch(
    RequestBroker* broker, const std::string& name,
    const std::vector<AttrSet>& targets) {
  std::vector<StatusOr<ServedAnswer>> answers(
      targets.size(), StatusOr<ServedAnswer>(Status::Internal("unset")));
  std::vector<std::thread> askers;
  for (size_t i = 0; i < targets.size(); ++i) {
    askers.emplace_back(
        [&, i] { answers[i] = broker->Ask(name, targets[i]); });
  }
  // Admission is synchronous inside Ask, so queue depth reaches the batch
  // size before any asker can block on its future.
  while (broker->QueueDepth() < targets.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  broker->Start();
  for (std::thread& asker : askers) asker.join();
  return answers;
}

class RequestBrokerTest : public ::testing::Test {
 protected:
  RequestBrokerTest() {
    EXPECT_TRUE(registry_.Install("main", MakeSynopsis()).ok());
  }
  ~RequestBrokerTest() override { failpoint::DisarmAll(); }

  SynopsisRegistry registry_;
  ServerMetrics metrics_;
};

TEST_F(RequestBrokerTest, AnswersMatchTheEngineBitForBit) {
  RequestBroker broker(&registry_, &metrics_);
  broker.Start();
  const AttrSet scope = AttrSet::FromIndices({0, 4});  // needs a solver
  StatusOr<ServedAnswer> answer = broker.Ask("main", scope);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer.value().tier, ServeTier::kFull);
  EXPECT_EQ(answer.value().epoch, 1u);

  const StatusOr<MarginalTable> reference =
      registry_.Acquire("main").value()->engine().TryMarginal(scope);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(answer.value().table.cells(), reference.value().cells());
}

TEST_F(RequestBrokerTest, UnknownSynopsisAndBadScopeFailCleanly) {
  RequestBroker broker(&registry_, &metrics_);
  broker.Start();
  EXPECT_EQ(broker.Ask("ghost", AttrSet::FromIndices({0})).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(broker.Ask("main", AttrSet::FromIndices({40})).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RequestBrokerTest, DuplicatesAndSubMarginalsCoalesceDeterministically) {
  RequestBroker broker(&registry_, &metrics_);
  const AttrSet big = AttrSet::FromIndices({0, 1, 2});
  const AttrSet dup = AttrSet::FromIndices({0, 1, 2});
  const AttrSet sub = AttrSet::FromIndices({0, 2});
  const AttrSet other = AttrSet::FromIndices({4, 5});

  std::vector<StatusOr<ServedAnswer>> answers =
      AskAsOneBatch(&broker, "main", {big, dup, sub, other});
  for (const StatusOr<ServedAnswer>& answer : answers) {
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  }
  // Exactly one request per distinct executed scope is the representative;
  // the duplicate and the sub-marginal both shared big's reconstruction.
  const int coalesced_count = int(answers[0].value().coalesced) +
                              int(answers[1].value().coalesced) +
                              int(answers[2].value().coalesced) +
                              int(answers[3].value().coalesced);
  EXPECT_EQ(coalesced_count, 2);
  EXPECT_FALSE(answers[3].value().coalesced);  // distinct scope, own solve
  EXPECT_TRUE(answers[2].value().coalesced);   // sub-marginal always shares

  // The shared answers are consistent: dup == big, sub == big projected.
  EXPECT_EQ(answers[1].value().table.cells(), answers[0].value().table.cells());
  EXPECT_EQ(answers[2].value().table.cells(),
            answers[0].value().table.Project(sub).cells());

  const ServerMetrics::Snapshot snapshot = metrics_.TakeSnapshot();
  EXPECT_EQ(snapshot.admitted, 4u);
  EXPECT_EQ(snapshot.coalesced, 2u);
  EXPECT_GT(snapshot.CoalescingHitRate(), 0.0);
  EXPECT_EQ(snapshot.served_by_tier[int(ServeTier::kFull)], 4u);
}

TEST_F(RequestBrokerTest, CoalescingOffEveryRequestStandsAlone) {
  BrokerOptions options;
  options.coalesce = false;
  RequestBroker broker(&registry_, &metrics_, options);
  const AttrSet scope = AttrSet::FromIndices({0, 1});
  std::vector<StatusOr<ServedAnswer>> answers =
      AskAsOneBatch(&broker, "main", {scope, scope, scope});
  for (const StatusOr<ServedAnswer>& answer : answers) {
    ASSERT_TRUE(answer.ok());
    EXPECT_FALSE(answer.value().coalesced);
  }
  EXPECT_EQ(metrics_.TakeSnapshot().coalesced, 0u);
}

TEST_F(RequestBrokerTest, FullQueueRejectsImmediatelyWithBackpressure) {
  BrokerOptions options;
  options.queue_capacity = 2;
  RequestBroker broker(&registry_, &metrics_, options);
  // Not started: the queue only fills. Stage to capacity from threads.
  std::vector<std::thread> askers;
  for (int i = 0; i < 2; ++i) {
    askers.emplace_back(
        [&] { (void)broker.Ask("main", AttrSet::FromIndices({0, 1})); });
  }
  while (broker.QueueDepth() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The third ask must be rejected *now* — no blocking, no queueing.
  const Clock::time_point before = Clock::now();
  StatusOr<ServedAnswer> rejected =
      broker.Ask("main", AttrSet::FromIndices({2, 3}));
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_LT(Clock::now() - before, std::chrono::seconds(1));
  EXPECT_EQ(metrics_.TakeSnapshot().rejected, 1u);

  broker.Start();  // drain the staged two
  for (std::thread& asker : askers) asker.join();
  EXPECT_EQ(metrics_.TakeSnapshot().admitted, 2u);
}

TEST_F(RequestBrokerTest, QueueFullFailpointForcesTheRejectPath) {
#if !PRIVIEW_FAILPOINTS_ENABLED
  GTEST_SKIP() << "failpoints compiled out";
#endif
  RequestBroker broker(&registry_, &metrics_);
  broker.Start();
  failpoint::ScopedFailpoint scoped("serve/queue-full", "always");
  ASSERT_TRUE(scoped.status().ok());
  StatusOr<ServedAnswer> rejected =
      broker.Ask("main", AttrSet::FromIndices({0}));
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(metrics_.TakeSnapshot().rejected, 1u);
}

TEST_F(RequestBrokerTest, ExpiredDeadlineIsRejectedAtAdmission) {
  RequestBroker broker(&registry_, &metrics_);
  // Already past its deadline when Ask is called: rejected immediately,
  // without occupying a queue slot or waking the dispatcher. The
  // pre-fix behavior enqueued it and made the caller wait out the
  // completion grace for a verdict that was knowable up front.
  StatusOr<ServedAnswer> answer =
      broker.Ask("main", AttrSet::FromIndices({0, 1}),
                 Clock::now() - std::chrono::milliseconds(10));
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(broker.QueueDepth(), 0u);
  const ServerMetrics::Snapshot snapshot = metrics_.TakeSnapshot();
  EXPECT_EQ(snapshot.expired_at_admission, 1u);
  // Counted apart from both queue-full rejections and dispatch-time
  // sheds: a client clock bug must not read as overload.
  EXPECT_EQ(snapshot.rejected, 0u);
  EXPECT_EQ(snapshot.deadline_expired, 0u);
  EXPECT_EQ(snapshot.admitted, 0u);
}

TEST_F(RequestBrokerTest, DeadlinePassingWhileQueuedIsShedAtDispatch) {
  RequestBroker broker(&registry_, &metrics_);
  // Admitted with a real (tiny) budget and staged before Start; the
  // deadline passes while the request is queued, so the dispatcher must
  // shed it at dispatch time, not burn a solve on it.
  std::thread asker([&] {
    StatusOr<ServedAnswer> answer =
        broker.Ask("main", AttrSet::FromIndices({0, 1}),
                   Clock::now() + std::chrono::milliseconds(30));
    EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
  });
  while (broker.QueueDepth() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Let the queued deadline lapse before the dispatcher ever runs.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  broker.Start();
  asker.join();
  const ServerMetrics::Snapshot snapshot = metrics_.TakeSnapshot();
  EXPECT_EQ(snapshot.deadline_expired, 1u);
  EXPECT_EQ(snapshot.expired_at_admission, 0u);
}

TEST_F(RequestBrokerTest, TightDeadlineDegradesToLeastNormBitIdentically) {
  // least_norm_below set far above any realistic dispatch latency: every
  // request lands in the least-norm tier deterministically.
  BrokerOptions options;
  options.default_deadline = std::chrono::milliseconds(60000);
  options.least_norm_below = std::chrono::milliseconds(3600000);
  options.cache_only_below = std::chrono::milliseconds(0);
  RequestBroker broker(&registry_, &metrics_, options);
  broker.Start();

  const AttrSet scope = AttrSet::FromIndices({0, 4});  // uncovered
  StatusOr<ServedAnswer> answer = broker.Ask("main", scope);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer.value().tier, ServeTier::kLeastNorm);

  const StatusOr<MarginalTable> reference =
      registry_.Acquire("main").value()->synopsis().TryQuery(
          scope, ReconstructionMethod::kLeastNorm);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(answer.value().table.cells(), reference.value().cells());
  EXPECT_EQ(
      metrics_.TakeSnapshot().served_by_tier[int(ServeTier::kLeastNorm)], 1u);
}

TEST_F(RequestBrokerTest, CacheOnlyTierServesHitsAndShedsMisses) {
  // Warm the hosted engine's cache through a normal full-tier broker.
  {
    RequestBroker warm(&registry_, &metrics_);
    warm.Start();
    ASSERT_TRUE(warm.Ask("main", AttrSet::FromIndices({0, 1, 2})).ok());
  }

  // Now a broker under permanent worst-case pressure: cache or nothing.
  BrokerOptions options;
  options.default_deadline = std::chrono::milliseconds(60000);
  options.least_norm_below = std::chrono::milliseconds(3600000);
  options.cache_only_below = std::chrono::milliseconds(3600000);
  RequestBroker broker(&registry_, &metrics_, options);
  broker.Start();

  // Exact cached scope: served.
  StatusOr<ServedAnswer> hit =
      broker.Ask("main", AttrSet::FromIndices({0, 1, 2}));
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(hit.value().tier, ServeTier::kCacheRollUp);

  // Sub-marginal of the cached scope: served by roll-up.
  StatusOr<ServedAnswer> rollup =
      broker.Ask("main", AttrSet::FromIndices({0, 2}));
  ASSERT_TRUE(rollup.ok()) << rollup.status().ToString();
  EXPECT_EQ(rollup.value().tier, ServeTier::kCacheRollUp);
  EXPECT_EQ(rollup.value().table.cells(),
            hit.value().table.Project(AttrSet::FromIndices({0, 2})).cells());

  // Never-seen scope: there is no time to solve — honest DeadlineExceeded.
  StatusOr<ServedAnswer> miss =
      broker.Ask("main", AttrSet::FromIndices({5, 6}));
  EXPECT_EQ(miss.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(metrics_.TakeSnapshot().deadline_expired, 1u);
}

TEST_F(RequestBrokerTest, StopFailsStagedWorkAndRefusesNewWork) {
  RequestBroker broker(&registry_, &metrics_);
  std::thread asker([&] {
    // Admitted before the stop: the failure is the service's, so the code
    // must be the retryable one — a client may redial a restarted server.
    StatusOr<ServedAnswer> answer =
        broker.Ask("main", AttrSet::FromIndices({0}));
    EXPECT_EQ(answer.status().code(), StatusCode::kUnavailable);
  });
  while (broker.QueueDepth() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  broker.Stop();  // never started: staged work must still fail promptly
  asker.join();
  EXPECT_EQ(broker.Ask("main", AttrSet::FromIndices({0})).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RequestBrokerTest, ConcurrentAsksAllAnswerCorrectly) {
  RequestBroker broker(&registry_, &metrics_);
  broker.Start();
  const std::vector<AttrSet> scopes = {
      AttrSet::FromIndices({0, 1}), AttrSet::FromIndices({2, 3}),
      AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({4, 5, 6})};
  std::vector<std::vector<double>> expected;
  const auto hosted = registry_.Acquire("main").value();
  for (const AttrSet& scope : scopes) {
    expected.push_back(hosted->engine().TryMarginal(scope).value().cells());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        const size_t which = (t + i) % scopes.size();
        StatusOr<ServedAnswer> answer = broker.Ask("main", scopes[which]);
        if (!answer.ok() ||
            answer.value().table.cells() != expected[which]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(metrics_.TakeSnapshot().admitted, 160u);
}

// --- time-series queries ----------------------------------------------------

// Installs two more epochs of "main" (the fixture installed epoch 1) so
// three distinct releases are retained for series queries.
class RequestBrokerSeriesTest : public RequestBrokerTest {
 protected:
  RequestBrokerSeriesTest() {
    registry_.set_history_depth(3);
    EXPECT_TRUE(registry_.Install("main", MakeSynopsis(18)).ok());
    EXPECT_TRUE(registry_.Install("main", MakeSynopsis(19)).ok());
  }
};

TEST_F(RequestBrokerSeriesTest, LevelsMatchEachRetainedEpochBitForBit) {
  RequestBroker broker(&registry_, &metrics_);
  broker.Start();
  const AttrSet scope = AttrSet::FromIndices({0, 1, 2});
  StatusOr<ServedSeries> series =
      broker.AskSeries("main", scope, 3, SeriesMode::kLevels);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_EQ(series.value().points.size(), 3u);
  EXPECT_EQ(series.value().tier, ServeTier::kFull);
  EXPECT_FALSE(series.value().coalesced);

  const auto hosts = registry_.AcquireSeries("main", 3).value();
  ASSERT_EQ(hosts.size(), 3u);
  for (size_t i = 0; i < hosts.size(); ++i) {
    EXPECT_EQ(series.value().points[i].epoch, hosts[i]->epoch());
    EXPECT_EQ(series.value().points[i].table.cells(),
              hosts[i]->engine().TryMarginal(scope).value().cells())
        << "point " << i << " not that epoch's own answer";
  }
  // Newest first.
  EXPECT_GT(series.value().points[0].epoch, series.value().points[1].epoch);
  EXPECT_GT(series.value().points[1].epoch, series.value().points[2].epoch);
  // last_n above the retained depth clamps instead of failing.
  EXPECT_EQ(broker.AskSeries("main", scope, 100, SeriesMode::kLevels)
                .value()
                .points.size(),
            3u);
}

TEST_F(RequestBrokerSeriesTest, TrendDeltasAreCurrentMinusOlderCellwise) {
  RequestBroker broker(&registry_, &metrics_);
  broker.Start();
  const AttrSet scope = AttrSet::FromIndices({2, 3});
  StatusOr<ServedSeries> levels =
      broker.AskSeries("main", scope, 3, SeriesMode::kLevels);
  StatusOr<ServedSeries> deltas =
      broker.AskSeries("main", scope, 3, SeriesMode::kDeltas);
  ASSERT_TRUE(levels.ok());
  ASSERT_TRUE(deltas.ok());
  ASSERT_EQ(deltas.value().points.size(), 3u);
  // Point 0 is the current level verbatim.
  EXPECT_EQ(deltas.value().points[0].table.cells(),
            levels.value().points[0].table.cells());
  // Later points: (current - that epoch), tagged with the older epoch.
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(deltas.value().points[i].epoch, levels.value().points[i].epoch);
    const std::vector<double>& current = levels.value().points[0].table.cells();
    const std::vector<double>& older = levels.value().points[i].table.cells();
    const std::vector<double>& got = deltas.value().points[i].table.cells();
    ASSERT_EQ(got.size(), current.size());
    for (size_t c = 0; c < got.size(); ++c) {
      EXPECT_DOUBLE_EQ(got[c], current[c] - older[c]);
    }
  }
}

TEST_F(RequestBrokerSeriesTest, IdenticalSeriesRequestsCoalesce) {
  RequestBroker broker(&registry_, &metrics_);
  const AttrSet scope = AttrSet::FromIndices({0, 1});
  std::vector<StatusOr<ServedSeries>> answers(
      3, StatusOr<ServedSeries>(Status::Internal("unset")));
  std::vector<std::thread> askers;
  for (int i = 0; i < 2; ++i) {
    askers.emplace_back([&, i] {
      answers[i] = broker.AskSeries("main", scope, 2, SeriesMode::kLevels);
    });
  }
  // A different depth is a different series key: its own computation.
  askers.emplace_back([&] {
    answers[2] = broker.AskSeries("main", scope, 1, SeriesMode::kLevels);
  });
  while (broker.QueueDepth() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  broker.Start();
  for (std::thread& asker : askers) asker.join();

  for (const StatusOr<ServedSeries>& answer : answers) {
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  }
  // Exactly one of the two identical asks is the representative.
  EXPECT_EQ(int(answers[0].value().coalesced) +
                int(answers[1].value().coalesced),
            1);
  EXPECT_FALSE(answers[2].value().coalesced);
  EXPECT_EQ(answers[0].value().points.size(), 2u);
  EXPECT_EQ(answers[2].value().points.size(), 1u);
  EXPECT_EQ(answers[0].value().points[0].table.cells(),
            answers[1].value().points[0].table.cells());
  EXPECT_EQ(metrics_.TakeSnapshot().coalesced, 1u);
}

TEST_F(RequestBrokerSeriesTest, SeriesValidationFailsCleanly) {
  RequestBroker broker(&registry_, &metrics_);
  broker.Start();
  const AttrSet scope = AttrSet::FromIndices({0});
  EXPECT_EQ(broker.AskSeries("main", scope, 0, SeriesMode::kLevels)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(broker.AskSeries("ghost", scope, 2, SeriesMode::kLevels)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(broker
                .AskSeries("main", AttrSet::FromIndices({40}), 2,
                           SeriesMode::kLevels)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace priview::serve
