#include "baselines/mwem.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

namespace priview {
namespace {

TEST(MwemTest, DefaultRoundsMatchPaperFormula) {
  Rng rng(1);
  Dataset data = MakeMsnbcLike(&rng, 2000);
  MwemOptions options;
  options.update_sweeps = 5;  // keep the test quick
  MwemMechanism mwem(options);
  mwem.Fit(data, 1.0, 2, &rng);
  // ceil(4 log2 9) + 2 = 13 + 2 = 15, the value quoted in §5.1.
  EXPECT_EQ(mwem.rounds_used(), 15);
}

TEST(MwemTest, EstimatePreservesTotal) {
  Rng rng(2);
  Dataset data = MakeMsnbcLike(&rng, 5000);
  MwemOptions options;
  options.rounds = 4;
  options.update_sweeps = 10;
  MwemMechanism mwem(options);
  mwem.Fit(data, 1.0, 2, &rng);
  const MarginalTable t = mwem.Query(AttrSet::FromIndices({0, 1}));
  EXPECT_NEAR(t.Total(), 5000.0, 1.0);
}

TEST(MwemTest, EstimateIsNonNegative) {
  Rng rng(3);
  Dataset data = MakeMsnbcLike(&rng, 5000);
  MwemOptions options;
  options.rounds = 4;
  options.update_sweeps = 10;
  MwemMechanism mwem(options);
  mwem.Fit(data, 0.5, 2, &rng);
  const MarginalTable t = mwem.Query(AttrSet::FromIndices({2, 6}));
  EXPECT_GE(t.MinCell(), 0.0);
}

TEST(MwemTest, ImprovesOverUniformOnSkewedData) {
  Rng rng(4);
  Dataset data = MakeMsnbcLike(&rng, 200000);
  MwemOptions options;
  options.rounds = 8;
  options.update_sweeps = 20;
  MwemMechanism mwem(options);
  mwem.Fit(data, 1.0, 2, &rng);

  Rng qrng(5);
  const auto queries = SampleQuerySets(9, 2, 15, &qrng);
  const double n = static_cast<double>(data.size());
  double mwem_error = 0.0, uniform_error = 0.0;
  for (AttrSet q : queries) {
    const MarginalTable truth = data.CountMarginal(q);
    mwem_error += mwem.Query(q).L2DistanceTo(truth) / n;
    uniform_error += MarginalTable(q, n / 4.0).L2DistanceTo(truth) / n;
  }
  EXPECT_LT(mwem_error, uniform_error);
}

TEST(MwemTest, MeasuredMarginalIsWellApproximated) {
  // With generous budget and rounds, the worst marginals get measured and
  // fitted; check overall error is small on a strongly structured dataset.
  Rng rng(6);
  Dataset data(4);
  for (int i = 0; i < 100000; ++i) {
    // Perfectly correlated attributes: only 0000 and 1111 occur.
    data.Add(rng.Bernoulli(0.5) ? 0b1111 : 0b0000);
  }
  MwemOptions options;
  options.rounds = 6;
  options.update_sweeps = 50;
  MwemMechanism mwem(options);
  mwem.Fit(data, 2.0, 2, &rng);
  const MarginalTable truth = data.CountMarginal(AttrSet::FromIndices({0, 3}));
  const MarginalTable estimate = mwem.Query(AttrSet::FromIndices({0, 3}));
  EXPECT_LT(estimate.L2DistanceTo(truth) / 100000.0, 0.1);
}

}  // namespace
}  // namespace priview
