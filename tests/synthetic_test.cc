#include "data/synthetic.h"

#include <gtest/gtest.h>

namespace priview {
namespace {

TEST(SyntheticTest, KosarakLikeShape) {
  Rng rng(1);
  const Dataset data = MakeKosarakLike(&rng, 5000);
  EXPECT_EQ(data.d(), 32);
  EXPECT_EQ(data.size(), 5000u);
}

TEST(SyntheticTest, AolLikeShape) {
  Rng rng(2);
  const Dataset data = MakeAolLike(&rng, 3000);
  EXPECT_EQ(data.d(), 45);
  EXPECT_EQ(data.size(), 3000u);
}

TEST(SyntheticTest, MsnbcLikeShape) {
  Rng rng(3);
  const Dataset data = MakeMsnbcLike(&rng, 2000);
  EXPECT_EQ(data.d(), 9);
  EXPECT_EQ(data.size(), 2000u);
}

TEST(SyntheticTest, PopularityDecaysAcrossAttributes) {
  Rng rng(4);
  const Dataset data = MakeKosarakLike(&rng, 50000);
  // The first attribute (most popular page) should be much more frequent
  // than the last.
  EXPECT_GT(data.AttributeFrequency(0), 3.0 * data.AttributeFrequency(31));
  EXPECT_GT(data.AttributeFrequency(0), 0.2);
  EXPECT_LT(data.AttributeFrequency(31), 0.2);
}

TEST(SyntheticTest, TopicStructureInducesPositiveCorrelation) {
  // Attributes sharing a topic (round-robin: j and j + num_topics) should
  // be positively correlated: P(both) > P(a) P(b).
  Rng rng(5);
  ClickstreamModel model;
  model.d = 16;
  model.n = 80000;
  model.num_topics = 4;
  model.topic_boost = 6.0;
  model.topic_activation = 0.3;
  model.activity_scale = 0.0;  // isolate the topic effect
  const Dataset data = MakeClickstreamDataset(model, &rng);
  const double n = static_cast<double>(data.size());
  const MarginalTable pair = data.CountMarginal(AttrSet::FromIndices({1, 5}));
  const double p_both = pair.At(0b11) / n;
  const double p_a = data.AttributeFrequency(1);
  const double p_b = data.AttributeFrequency(5);
  EXPECT_GT(p_both, 1.15 * p_a * p_b);
}

TEST(SyntheticTest, DeterministicForSeed) {
  Rng a(6), b(6);
  const Dataset da = MakeMsnbcLike(&a, 500);
  const Dataset db = MakeMsnbcLike(&b, 500);
  EXPECT_EQ(da.records(), db.records());
}

}  // namespace
}  // namespace priview
